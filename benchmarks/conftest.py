"""Shared benchmark helpers: result tables written next to the suite.

Every figure/table benchmark renders its rows with :func:`emit_table`, which
both prints them (visible with ``pytest -s``) and persists them under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable artefacts.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit_table(name: str, title: str, header: list[str], rows: list[list]) -> str:
    """Format, print and persist one experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]

    def fmt(cells) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    lines = [title, fmt(header), fmt(["-" * w for w in widths])]
    lines += [fmt(r) for r in rows]
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(benchmark, fn=None) -> None:
    """Attach a timing to a table/shape test.

    pytest-benchmark skips tests that never touch the ``benchmark`` fixture
    when invoked with ``--benchmark-only``; every experiment test calls this
    so that ``pytest benchmarks/ --benchmark-only`` regenerates *all* figure
    tables, not just the micro-timings.
    """
    benchmark.pedantic(fn or (lambda: None), rounds=1, iterations=1)
