"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures, but the knobs the paper's design section argues about:
flow folding's increment elision, weighted vs unit counting accuracy, the
two memory policies, and EPC size sensitivity.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_table, record
from repro.core.policy import memory_integral
from repro.instrument import instrument_module
from repro.instrument.weights import UNIT_WEIGHTS, cycle_weight_table
from repro.perf.model import PerformanceModel, WorkloadRun
from repro.sgx.epc import EPCModel
from repro.wasm.costmodel import CostModel
from repro.wasm.interpreter import Instance
from repro.workloads.polybench import fig6_order, polybench_kernel


def test_ablation_flow_folding_elision(benchmark):
    record(benchmark)
    """How many increments each level actually emits, per kernel."""
    rows = []
    for spec in fig6_order()[:10]:
        module = spec.compile()
        naive = instrument_module(module, "naive", UNIT_WEIGHTS)
        flow = instrument_module(module, "flow-based", UNIT_WEIGHTS)
        loop = instrument_module(module, "loop-based", UNIT_WEIGHTS)
        rows.append(
            [
                spec.name,
                naive.increments_emitted,
                flow.increments_emitted,
                loop.increments_emitted,
                loop.hoisted_loops,
            ]
        )
        assert flow.increments_emitted <= naive.increments_emitted
    emit_table(
        "ablation_increments",
        "Ablation: counter increments emitted per level",
        ["kernel", "naive", "flow", "loop", "hoisted"],
        rows,
    )
    # flow folding removes a meaningful fraction overall
    total_naive = sum(r[1] for r in rows)
    total_flow = sum(r[2] for r in rows)
    assert total_flow < 0.9 * total_naive


def test_ablation_weighted_counter_tracks_cycles_better(benchmark):
    record(benchmark)
    """Weighted counting predicts modelled cycle cost better than unit counting."""
    weighted_table = cycle_weight_table()
    errors_unit = []
    errors_weighted = []
    # calibrate a single cycles-per-count factor on one kernel, test on others
    kernels = ["gemm", "cholesky", "durbin", "jacobi-1d", "nussinov"]
    samples = []
    for name in kernels:
        spec = polybench_kernel(name)
        cost = CostModel()  # instruction cycles only: the quantity weights model
        instance = Instance(spec.compile().clone(), cost_model=cost)
        for export, args in spec.setup:
            instance.invoke(export, *args)
        instance.invoke(spec.run[0], *spec.run[1])
        cycles = instance.stats.cycles
        unit_count = instance.stats.total_visits
        weighted_count = sum(
            weighted_table.weight(n) * c for n, c in instance.stats.visits.items()
        )
        samples.append((cycles, unit_count, weighted_count))
    base_cycles, base_unit, base_weighted = samples[0]
    for cycles, unit, weighted in samples[1:]:
        predicted_unit = base_cycles * unit / base_unit
        predicted_weighted = base_cycles * weighted / base_weighted
        errors_unit.append(abs(predicted_unit - cycles) / cycles)
        errors_weighted.append(abs(predicted_weighted - cycles) / cycles)
    assert sum(errors_weighted) < sum(errors_unit)


def test_ablation_memory_policies_disagree_on_transient_growth(benchmark):
    record(benchmark)
    """Peak accounting cannot distinguish early from late growth; the integral can."""
    early = memory_integral([(10, 16)], initial_pages=1, total_instructions=1000)
    late = memory_integral([(990, 16)], initial_pages=1, total_instructions=1000)
    assert early > late  # integral: paying longer for the 16 pages
    # peak policy sees both identically (16 pages)


def test_ablation_epc_size_sensitivity(benchmark):
    record(benchmark)
    """Paper §5.1: a larger future EPC removes the paging overhead."""
    spec = polybench_kernel("gemm")
    run, _ = WorkloadRun.measure(
        spec.compile().clone(),
        spec.run[0],
        spec.run[1],
        setup=list(spec.setup),
        footprint_bytes=spec.paper_footprint_bytes,
        locality=spec.locality,
    )
    rows = []
    previous = None
    for epc_mb in (93, 128, 256, 512):
        model = PerformanceModel(epc=EPCModel(usable_bytes=epc_mb * 1024 * 1024))
        cycles, breakdown = model.sgx_hw_cycles(run)
        rows.append([epc_mb, round(cycles / 1e6, 2), round(breakdown["epc_paging"] / 1e6, 2)])
        if previous is not None:
            assert cycles <= previous
        previous = cycles
    emit_table(
        "ablation_epc",
        "Ablation: gemm WASM-SGX-HW cycles vs usable EPC size [Mcycles]",
        ["EPC_MB", "total", "paging"],
        rows,
    )
    assert rows[-1][2] == 0.0  # 512 MiB EPC: no paging left


def test_ablation_benchmark_measurement(benchmark):
    module = polybench_kernel("durbin").compile()
    benchmark.pedantic(
        lambda: instrument_module(module, "flow-based", UNIT_WEIGHTS),
        rounds=1,
        iterations=1,
    )


def test_ablation_multiclass_counters_cost(benchmark):
    """Per-class counters (adjustable weights, §3.7) vs the single counter.

    Re-pricing flexibility costs extra increments; this quantifies how much
    on a representative kernel.
    """
    record(benchmark)
    from repro.instrument.multiclass import instrument_module_multiclass
    from repro.wasm.interpreter import Instance

    spec = polybench_kernel("gemm")
    module = spec.compile()

    def visits(instrumented_module) -> int:
        instance = Instance(instrumented_module)
        for export, args in spec.setup:
            instance.invoke(export, *args)
        instance.invoke(spec.run[0], *spec.run[1])
        return instance.stats.total_visits

    base = visits(module.clone())
    single = visits(instrument_module(module, "flow-based", UNIT_WEIGHTS).module)
    multi = visits(instrument_module_multiclass(module, level="flow-based").module)
    rows = [
        ["uninstrumented", base, 1.0],
        ["single counter (flow)", single, round(single / base, 3)],
        ["4-class counters (flow)", multi, round(multi / base, 3)],
    ]
    emit_table(
        "ablation_multiclass",
        "Ablation: adjustable-weight class counters vs single counter (gemm)",
        ["variant", "visits", "ratio"],
        rows,
    )
    assert base < single <= multi
    # the flexibility premium stays moderate
    assert multi / base < 2.0
