"""Benchmark trajectory: `repro loadtest --bench-append` perf history.

Unit coverage for the distill/append helpers plus an end-to-end check that
the CLI really grows a bounded, timestamped time series inside the bench
file without disturbing the authoritative latest report.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_trajectory.py -q``.
"""

from __future__ import annotations

import json

from benchmarks.conftest import record
from repro.cli import main
from repro.obs.bench import (
    TRAJECTORY_LIMIT,
    TRAJECTORY_SCHEMA,
    append_point,
    distill_point,
)


def _fake_report(throughput: float = 50.0) -> dict:
    point = {
        "workers": 2,
        "throughput_rps": throughput,
        "wall_s": 0.5,
        "latency_s": {"p50": 0.01, "p95": 0.02, "p99": 0.03},
        "epoch_ok": True,
    }
    return {
        "sweep": [point],
        "requests_per_point": 12,
        "execution_backend": "wasm",
        "engine": "predecode",
        "pool": "thread",
        "cores_available": 4,
        "speedup_4_over_1": 1.8,
        "serial_totals_match": True,
    }


# -- distill -------------------------------------------------------------------


def test_distill_point_compresses_a_report(benchmark):
    point = distill_point(_fake_report(), ts_s=123.0)
    assert point["schema"] == TRAJECTORY_SCHEMA
    assert point["ts_s"] == 123.0
    assert point["execution_backend"] == "wasm"
    assert point["by_workers"]["2"] == {
        "throughput_rps": 50.0,
        "wall_s": 0.5,
        "p50_s": 0.01,
        "p99_s": 0.03,
        "epoch_ok": True,
    }
    assert point["speedup_4_over_1"] == 1.8
    assert point["serial_totals_match"] is True
    record(benchmark)


def test_distill_point_stamps_wall_clock_by_default(benchmark):
    import time

    before = time.time()
    point = distill_point(_fake_report())
    assert before <= point["ts_s"] <= time.time()
    record(benchmark)


def test_distill_point_omits_absent_optionals(benchmark):
    report = _fake_report()
    del report["speedup_4_over_1"]
    del report["serial_totals_match"]
    point = distill_point(report, ts_s=0.0)
    assert "speedup_4_over_1" not in point
    assert "serial_totals_match" not in point
    record(benchmark)


# -- append --------------------------------------------------------------------


def test_append_point_grows_a_trajectory(tmp_path, benchmark):
    path = tmp_path / "BENCH_service.json"
    for i in range(3):
        doc = append_point(str(path), distill_point(_fake_report(40.0 + i),
                                                    ts_s=float(i)))
    assert doc["trajectory_schema"] == TRAJECTORY_SCHEMA
    trajectory = json.loads(path.read_text())["trajectory"]
    assert [p["ts_s"] for p in trajectory] == [0.0, 1.0, 2.0]
    assert trajectory[-1]["by_workers"]["2"]["throughput_rps"] == 42.0
    record(benchmark)


def test_append_point_preserves_the_rest_of_the_bench_file(tmp_path, benchmark):
    path = tmp_path / "BENCH_service.json"
    path.write_text(json.dumps({"benchmark": "metering-gateway-loadtest",
                                "sweeps": {"wasm": {}}}))
    append_point(str(path), distill_point(_fake_report(), ts_s=1.0))
    doc = json.loads(path.read_text())
    assert doc["benchmark"] == "metering-gateway-loadtest"  # untouched
    assert doc["sweeps"] == {"wasm": {}}
    assert len(doc["trajectory"]) == 1
    record(benchmark)


def test_append_point_caps_history_dropping_oldest(tmp_path, benchmark):
    path = tmp_path / "BENCH_service.json"
    for i in range(TRAJECTORY_LIMIT + 25):
        append_point(str(path), {"schema": TRAJECTORY_SCHEMA, "ts_s": float(i)},
                     limit=TRAJECTORY_LIMIT)
    trajectory = json.loads(path.read_text())["trajectory"]
    assert len(trajectory) == TRAJECTORY_LIMIT
    assert trajectory[0]["ts_s"] == 25.0  # oldest dropped first
    assert trajectory[-1]["ts_s"] == float(TRAJECTORY_LIMIT + 24)
    record(benchmark)


# -- end to end through the CLI ------------------------------------------------


def _loadtest_args(tmp_path) -> list[str]:
    return [
        "loadtest", "--workers", "1", "--requests", "4", "--pool", "thread",
        "--backend", "modeled", "--time-scale", "0", "--no-serial",
        "--out", str(tmp_path / "BENCH_service.json"),
        "--bench-append", str(tmp_path / "BENCH_service.json"),
    ]


def test_cli_bench_append_accumulates_across_runs(tmp_path, benchmark):
    args = _loadtest_args(tmp_path)
    assert main(args) == 0
    assert main(args) == 0
    doc = json.loads((tmp_path / "BENCH_service.json").read_text())
    # the latest full report and the history coexist in one file
    assert doc["benchmark"] == "metering-gateway-loadtest"
    assert doc["trajectory_schema"] == TRAJECTORY_SCHEMA
    assert len(doc["trajectory"]) == 2
    for point in doc["trajectory"]:
        assert point["execution_backend"] == "modeled"
        assert point["by_workers"]["1"]["epoch_ok"] is True
        assert point["ts_s"] > 0
    record(benchmark)
