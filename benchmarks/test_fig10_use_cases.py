"""Fig. 10 — instrumentation-optimisation overhead on the domain workloads.

Regenerates the §5.3 volunteer-computing / pay-by-computation figure: for
MSieve, the PC algorithm, SubsetSum and the Darknet-style classifier,
runtime with naive / flow-based / loop-based instrumentation normalised to
the uninstrumented run, on WASM and on WASM-SGX.

Shape targets: overheads range roughly -7%..+34%; naive is worst (Darknet's
tight loops: +34% in the paper); loop-based recovers to within a few percent
(Darknet: +3-4%).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_table, record
from repro.instrument import instrument_module
from repro.instrument.weights import UNIT_WEIGHTS
from repro.perf.model import Deployment, PerformanceModel, WorkloadRun
from repro.workloads import DARKNET, MSIEVE, PC_ALGORITHM, SUBSET_SUM
from repro.workloads.spec import WorkloadSpec
from dataclasses import replace

# smaller inputs than the specs' defaults keep the interpreted sweep tractable
WORKLOADS: list[WorkloadSpec] = [
    replace(MSIEVE, run=("factorize", (2 * 2 * 3 * 104729 * 130043,))),
    replace(PC_ALGORITHM, run=("skeleton", (991,))),
    replace(SUBSET_SUM, run=("search", (4242, 12, 150))),
    DARKNET,
]

LEVELS = ["naive", "flow-based", "loop-based"]
MODEL = PerformanceModel()


def _cycles(spec: WorkloadSpec, level: str | None, deployment: Deployment) -> float:
    module = spec.compile().clone()
    if level is not None:
        module = instrument_module(module, level, UNIT_WEIGHTS).module
    run, _ = WorkloadRun.measure(
        module,
        spec.run[0],
        spec.run[1],
        setup=list(spec.setup),
        footprint_bytes=spec.paper_footprint_bytes,
        locality=spec.locality,
    )
    return MODEL.report(run, deployment).cycles


@pytest.fixture(scope="module")
def fig10_data():
    data = {}
    for spec in WORKLOADS:
        for deployment in (Deployment.WASM, Deployment.WASM_SGX_HW):
            base = _cycles(spec, None, deployment)
            for level in LEVELS:
                ratio = _cycles(spec, level, deployment) / base
                data[(spec.name, deployment, level)] = ratio
    return data


def test_fig10_table(fig10_data, benchmark):
    record(benchmark)
    rows = []
    for spec in WORKLOADS:
        for deployment in (Deployment.WASM, Deployment.WASM_SGX_HW):
            rows.append(
                [spec.name, deployment.value]
                + [round(fig10_data[(spec.name, deployment, lv)], 3) for lv in LEVELS]
            )
    emit_table(
        "fig10_use_cases",
        "Fig. 10: instrumented runtime normalised to uninstrumented",
        ["workload", "deployment", "naive", "flow-based", "loop-based"],
        rows,
    )


def test_fig10_overheads_in_paper_band(fig10_data, benchmark):
    record(benchmark)
    """All overheads within roughly -7%..+40% (paper: -7%..+34%)."""
    for ratio in fig10_data.values():
        assert 0.90 < ratio < 1.45


def test_fig10_loop_based_beats_naive_everywhere(fig10_data, benchmark):
    record(benchmark)
    for spec in WORKLOADS:
        for deployment in (Deployment.WASM, Deployment.WASM_SGX_HW):
            naive = fig10_data[(spec.name, deployment, "naive")]
            loop = fig10_data[(spec.name, deployment, "loop-based")]
            assert loop <= naive + 1e-9


def test_fig10_dense_loops_show_a_large_naive_penalty(fig10_data, benchmark):
    record(benchmark)
    """Dense loop nests make naive instrumentation costly (paper: up to +34%).

    In the paper the worst case is Darknet; in this reproduction the densest
    small basic blocks belong to subset-sum's bit sweep — the mechanism (and
    the recovery below) is the same.
    """
    naive_overheads = {
        spec.name: fig10_data[(spec.name, Deployment.WASM, "naive")]
        for spec in WORKLOADS
    }
    assert max(naive_overheads.values()) > 1.15
    # optimisation recovers the worst case to a small overhead
    worst = max(naive_overheads, key=naive_overheads.get)
    recovered = fig10_data[(worst, Deployment.WASM, "loop-based")]
    assert recovered < naive_overheads[worst] - 0.05


def test_fig10_loop_based_final_overhead_small(fig10_data, benchmark):
    record(benchmark)
    """Paper: loop-based cuts Darknet to +3% (WASM) / +4% (WASM-SGX)."""
    for deployment in (Deployment.WASM, Deployment.WASM_SGX_HW):
        ratio = fig10_data[("darknet", deployment, "loop-based")]
        assert ratio < 1.12


def test_fig10_benchmark_measurement(benchmark):
    benchmark.pedantic(
        lambda: _cycles(WORKLOADS[2], "loop-based", Deployment.WASM),
        rounds=1,
        iterations=1,
    )
