"""Fig. 6 — PolyBench/C normalised runtimes across the deployment ladder.

Regenerates the paper's headline sandboxing-overhead figure: for each of the
29 kernels, runtime normalised to native under WASM, WASM-SGX SIM, WASM-SGX
HW and WASM-SGX HW with loop-based instrumentation.

Shape targets (paper §5.1): WASM averages ~1.1x native; SGX-LKL simulation
adds nothing; hardware mode averages ~2.1x with the large blow-ups coming
from EPC paging on kernels whose LARGE-dataset footprints exceed 93 MiB;
instrumentation adds 0-9% (avg ~4%) over WASM-SGX HW.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_table, record
from repro.instrument import instrument_module
from repro.instrument.weights import UNIT_WEIGHTS
from repro.perf.model import Deployment, PerformanceModel, WorkloadRun
from repro.workloads.polybench import fig6_order

_MODEL = PerformanceModel()


def _measure(spec, instrumented: bool) -> WorkloadRun:
    module = spec.compile().clone()
    if instrumented:
        module = instrument_module(module, "loop-based", UNIT_WEIGHTS).module
    run, _value = WorkloadRun.measure(
        module,
        spec.run[0],
        spec.run[1],
        setup=list(spec.setup),
        footprint_bytes=spec.paper_footprint_bytes,
        locality=spec.locality,
    )
    return run


@pytest.fixture(scope="module")
def fig6_rows():
    rows = []
    for spec in fig6_order():
        run = _measure(spec, instrumented=False)
        ratios = _MODEL.normalised_runtimes(run)
        instrumented = _measure(spec, instrumented=True)
        hw_instr = _MODEL.report(instrumented, Deployment.WASM_SGX_HW).cycles
        native = _MODEL.native_cycles(run)
        rows.append(
            [
                spec.name,
                round(ratios[Deployment.WASM], 2),
                round(ratios[Deployment.WASM_SGX_SIM], 2),
                round(ratios[Deployment.WASM_SGX_HW], 2),
                round(hw_instr / native, 2),
            ]
        )
    return rows


def test_fig6_table(fig6_rows, benchmark):
    record(benchmark)
    emit_table(
        "fig6_polybench",
        "Fig. 6: PolyBench normalised runtime (1.0 = native)",
        ["kernel", "WASM", "WASM-SGX SIM", "WASM-SGX HW", "HW instrumented"],
        fig6_rows,
    )
    wasm = [r[1] for r in fig6_rows]
    sim = [r[2] for r in fig6_rows]
    hw = [r[3] for r in fig6_rows]
    instr = [r[4] for r in fig6_rows]

    # WASM averages near the paper's 1.1x
    assert 1.0 < sum(wasm) / len(wasm) < 1.6
    # simulation mode tracks plain WASM closely
    for w, s in zip(wasm, sim):
        assert s == pytest.approx(w, rel=0.05)
    # hardware mode costs more, with paging blow-ups on the big kernels
    assert all(h >= s for h, s in zip(hw, sim))
    big = {"2mm", "3mm", "gemm", "deriche"}
    blowups = [r[3] / r[2] for r in fig6_rows if r[0] in big]
    small = [r[3] / r[2] for r in fig6_rows if r[0] not in big]
    assert min(blowups) > max(small) * 1.05
    # instrumentation adds little over HW (paper: 0-9%, avg 4%; our coarser
    # interpreter-granularity blocks push the worst case slightly higher)
    overheads = [(i - h) / h for h, i in zip(hw, instr)]
    assert max(overheads) < 0.18
    assert sum(overheads) / len(overheads) < 0.08
    # the paging-hit kernels land in the paper's 2-4x band, not orders more
    assert 1.8 < max(hw) < 7.0


def test_fig6_benchmark_one_kernel(benchmark):
    """pytest-benchmark hook: time one representative kernel measurement."""
    spec = fig6_order()[12]  # gemm
    benchmark.pedantic(lambda: _measure(spec, False), rounds=1, iterations=1)
