"""Fig. 7 — cycles per WebAssembly instruction (127 plain instructions).

Regenerates the microbenchmark of §5.2: for every non-control, non-memory
instruction, a straight-line body executes it N times (operands from
constants, results dropped); the per-instruction cost is the net cycle count
divided by N.

Shape targets: ~74% of instructions under 10 cycles; rounding modes
(floor/ceil/trunc/nearest) in a middle band up to ~32; divisions/remainders
and sqrt above 50.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_table, record
from repro.wasm.costmodel import CostModel
from repro.wasm.instructions import Instr, PLAIN_INSTRUCTIONS
from repro.wasm.interpreter import Instance
from repro.wasm.module import Function, Module
from repro.wasm.types import FuncType, ValType
from repro.wasm.validate import validate

N = 2_000

#: Safe constant operands per value type (avoid traps in div/trunc).
_OPERANDS = {
    ValType.I32: Instr("i32.const", (7,)),
    ValType.I64: Instr("i64.const", (9,)),
    ValType.F32: Instr("f32.const", (2.5,)),
    ValType.F64: Instr("f64.const", (3.5,)),
}


def _operand_types(name: str) -> list[ValType]:
    """Input types of a plain instruction, derived like the validator does."""
    prefix, _, suffix = name.partition(".")
    vt = ValType.from_name(prefix)
    if suffix == "const":
        return []
    if suffix.startswith("trunc_f") or suffix.startswith("convert_i") or "_" in suffix and suffix.split("_")[0] in (
        "wrap", "extend", "demote", "promote", "reinterpret", "trunc", "convert"
    ):
        # conversion: source encoded in the suffix
        source_name = suffix.split("_")[-1]
        if source_name in ("s", "u"):
            source_name = suffix.split("_")[-2]
        return [ValType.from_name(source_name)]
    unary = {"eqz", "clz", "ctz", "popcnt", "abs", "neg", "ceil", "floor",
             "trunc", "nearest", "sqrt"}
    if suffix in unary:
        return [vt]
    return [vt, vt]


def _bench_module(name: str, repetitions: int) -> Module:
    body = []
    if name.endswith(".const"):
        # const instructions carry their operand as an immediate
        measured = _OPERANDS[ValType.from_name(name.split(".")[0])]
    else:
        measured = Instr(name)
    for _ in range(repetitions):
        for operand_type in _operand_types(name):
            body.append(_OPERANDS[operand_type])
        body.append(measured)
        body.append(Instr("drop"))
    module = Module()
    type_index = module.add_type(FuncType((), ()))
    module.funcs.append(Function(type_index=type_index, body=body, name="bench"))
    from repro.wasm.module import Export

    module.exports.append(Export("bench", "func", 0))
    return module


def _measure(name: str) -> float:
    module = _bench_module(name, N)
    validate(module)
    cost = CostModel()
    instance = Instance(module, cost_model=cost)
    instance.invoke("bench")
    # subtract the scaffolding: operand consts and the drop
    overhead = sum(
        cost.instruction_cycles(_OPERANDS[t].name) for t in _operand_types(name)
    ) + cost.instruction_cycles("drop")
    return instance.stats.cycles / N - overhead


@pytest.fixture(scope="module")
def instruction_costs():
    return {name: _measure(name) for name in PLAIN_INSTRUCTIONS}


def test_fig7_distribution(instruction_costs, benchmark):
    record(benchmark)
    costs = instruction_costs
    ordered = sorted(costs.items(), key=lambda kv: kv[1])
    rows = [[name, round(c, 1)] for name, c in ordered]
    emit_table(
        "fig7_instruction_costs",
        f"Fig. 7: cycles per instruction ({len(costs)} plain instructions, n={N})",
        ["instruction", "cycles"],
        rows,
    )
    values = list(costs.values())
    under_10 = sum(1 for c in values if c < 10)
    assert len(values) == 127
    assert under_10 / len(values) >= 0.70  # paper: 74% under 10 cycles
    assert max(values) > 50  # expensive tail exists
    assert costs["i64.div_s"] > 50
    assert costs["f32.sqrt"] > 50
    assert 15 <= costs["f32.floor"] <= 32
    assert 15 <= costs["f64.ceil"] <= 34


def test_fig7_costs_are_stable(instruction_costs, benchmark):
    record(benchmark)
    again = _measure("i32.add")
    assert again == pytest.approx(instruction_costs["i32.add"])


def test_fig7_benchmark_measurement(benchmark):
    benchmark.pedantic(lambda: _measure("f64.mul"), rounds=1, iterations=1)
