"""Fig. 8 — memory access cycles vs footprint, linear vs random patterns.

Regenerates the §5.2 memory microbenchmark: 10,000 load/store operations
over footprints from 1 MB to 256 MB, with linear and random access patterns,
for 4- and 8-byte element widths (i32/f32 vs i64/f64 behave alike, as the
paper observes).

Shape targets: linear loads+stores stay flat near the L1 latency; random
loads grow steeply with footprint (orders of magnitude over linear at
256 MB); random stores are up to ~1.8x random loads at 256 MB.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import emit_table, record
from repro.wasm.costmodel import MemoryHierarchy

N = 10_000
SIZES_MB = [1, 2, 4, 8, 16, 32, 64, 128, 256]
MB = 1024 * 1024


def _measure(size_mb: int, pattern: str, is_store: bool, width: int) -> float:
    """Average cycles per access over an initialised buffer.

    The paper's harness writes the buffer before measuring, so the caches
    hold its tail in steady state; we reproduce that by sweeping the last
    LLC-worth of lines before the measured pass.  Measured addresses are
    fresh draws, so small buffers enjoy cache-resident hits while large ones
    miss at the capacity ratio — the growth curve of Fig. 8.
    """
    hierarchy = MemoryHierarchy()
    span = size_mb * MB
    line = hierarchy.levels[0].line_size
    llc_lines = hierarchy.levels[-1].size_bytes // line
    total_lines = span // line
    warm_lines = min(total_lines, llc_lines)
    for i in range(total_lines - warm_lines, total_lines):
        hierarchy.access(i * line, width, False)

    rng = random.Random(0xF16 + size_mb)
    start = hierarchy.total_cycles
    if pattern == "linear":
        address = 0
        for _ in range(N):
            hierarchy.access(address, width, is_store)
            address = (address + width) % span
    else:
        for _ in range(N):
            hierarchy.access(rng.randrange(0, span - width), width, is_store)
    return (hierarchy.total_cycles - start) / N


@pytest.fixture(scope="module")
def fig8_data():
    data = {}
    for size in SIZES_MB:
        for pattern in ("linear", "random"):
            for op, is_store in (("load", False), ("store", True)):
                for width in (4, 8):
                    data[(size, pattern, op, width)] = _measure(size, pattern, is_store, width)
    return data


def test_fig8_table(fig8_data, benchmark):
    record(benchmark)
    rows = []
    for size in SIZES_MB:
        rows.append(
            [
                size,
                round(fig8_data[(size, "linear", "load", 8)], 1),
                round(fig8_data[(size, "linear", "store", 8)], 1),
                round(fig8_data[(size, "random", "load", 8)], 1),
                round(fig8_data[(size, "random", "store", 8)], 1),
            ]
        )
    emit_table(
        "fig8_memory_costs",
        f"Fig. 8: cycles per memory access (n={N}, 8-byte elements)",
        ["size_MB", "linear load", "linear store", "random load", "random store"],
        rows,
    )


def test_linear_access_flat_and_cheap(fig8_data, benchmark):
    record(benchmark)
    small = fig8_data[(1, "linear", "load", 8)]
    large = fig8_data[(256, "linear", "load", 8)]
    assert large < 40
    assert large < small * 3  # essentially flat


def test_random_load_grows_with_footprint(fig8_data, benchmark):
    record(benchmark)
    costs = [fig8_data[(s, "random", "load", 8)] for s in SIZES_MB]
    assert costs[0] < costs[4] < costs[-1]
    # far more expensive than linear at 256 MB (paper: up to ~1700x)
    ratio = costs[-1] / fig8_data[(256, "linear", "load", 8)]
    assert ratio > 50


def test_random_store_vs_load_ratio_at_256mb(fig8_data, benchmark):
    record(benchmark)
    loads = fig8_data[(256, "random", "load", 8)]
    stores = fig8_data[(256, "random", "store", 8)]
    assert 1.2 < stores / loads < 2.5  # paper: up to 1.8x


def test_widths_behave_alike(fig8_data, benchmark):
    record(benchmark)
    """Paper: very similar results for all WebAssembly value types."""
    for size in (1, 64, 256):
        narrow = fig8_data[(size, "random", "load", 4)]
        wide = fig8_data[(size, "random", "load", 8)]
        assert narrow == pytest.approx(wide, rel=0.25)


def test_fig8_benchmark_measurement(benchmark):
    benchmark.pedantic(
        lambda: _measure(64, "random", False, 8), rounds=1, iterations=1
    )
