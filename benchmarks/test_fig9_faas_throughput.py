"""Fig. 9 — FaaS throughput: echo and resize across six deployments.

Regenerates the §5.3 experiment: h2load-style closed-loop load (10 clients)
against a server that instantiates a fresh Wasm module per request, for
image sizes 64-1024 px under WASM, WASM-SGX SIM, WASM-SGX HW, instrumented,
I/O-accounted and the pure-JS/OpenFaaS baseline.

Shape targets: echo drops 2.1-4.8x onto SGX-LKL and up to ~50% more in
hardware mode for small payloads; resize (compute-heavy) drops far less;
instrumentation and I/O accounting are negligible; AccTEE beats the JS
deployment by up to an order of magnitude.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_table, record
from repro.scenarios.faas import FaaSPlatform, FaaSSetup

SIZES = (64, 128, 512, 1024)
PLATFORM = FaaSPlatform(measure_s=2.0)


@pytest.fixture(scope="module")
def echo_grid():
    return {
        (px, setup): PLATFORM.measure("echo", px, setup).throughput_rps
        for px in SIZES
        for setup in FaaSSetup
    }


@pytest.fixture(scope="module")
def resize_grid():
    return {
        (px, setup): PLATFORM.measure("resize", px, setup).throughput_rps
        for px in SIZES
        for setup in FaaSSetup
    }


def _emit(name: str, title: str, grid) -> None:
    rows = []
    for px in SIZES:
        rows.append([px] + [round(grid[(px, s)], 1) for s in FaaSSetup])
    emit_table(name, title, ["px"] + [s.value for s in FaaSSetup], rows)


def test_fig9_echo(echo_grid, benchmark):
    record(benchmark)
    _emit("fig9_echo", "Fig. 9 (left): echo throughput [req/s], 10 clients", echo_grid)
    for px in SIZES:
        wasm = echo_grid[(px, FaaSSetup.WASM)]
        sim = echo_grid[(px, FaaSSetup.WASM_SGX_SIM)]
        hw = echo_grid[(px, FaaSSetup.WASM_SGX_HW)]
        # paper: 2.1x - 4.8x drop moving onto SGX-LKL
        assert 1.5 < wasm / sim < 6.0
        # hardware adds up to ~50% for small payloads, little for large
        assert hw <= sim
        if px >= 512:
            assert sim / hw < 1.6
    # instrumentation + I/O accounting: negligible
    for px in SIZES:
        hw = echo_grid[(px, FaaSSetup.WASM_SGX_HW)]
        assert echo_grid[(px, FaaSSetup.WASM_SGX_HW_INSTR)] == pytest.approx(hw, rel=0.06)
        assert echo_grid[(px, FaaSSetup.WASM_SGX_HW_IO)] == pytest.approx(hw, rel=0.06)


def test_fig9_resize(resize_grid, benchmark):
    record(benchmark)
    _emit("fig9_resize", "Fig. 9 (right): resize throughput [req/s], 10 clients", resize_grid)
    for px in SIZES:
        wasm = resize_grid[(px, FaaSSetup.WASM)]
        sim = resize_grid[(px, FaaSSetup.WASM_SGX_SIM)]
        hw = resize_grid[(px, FaaSSetup.WASM_SGX_HW)]
        # compute-heavy: the relative SGX cost is much smaller than echo's.
        # Our decode pass is lighter than the paper's JPEG decode, so at
        # >=512 px the per-byte LKL cost regains ground; the strict bound
        # applies where compute dominates, and the echo-vs-resize comparison
        # below covers the general claim.
        if px <= 128:
            assert 1.0 < wasm / sim < 2.6  # paper: 31-56%
        else:
            assert 1.0 < wasm / sim < 5.5
        assert hw <= sim
    # throughput decreases with image size
    series = [resize_grid[(px, FaaSSetup.WASM_SGX_HW)] for px in SIZES]
    assert series == sorted(series, reverse=True)


def test_fig9_acctee_beats_js(echo_grid, resize_grid, benchmark):
    record(benchmark)
    """Paper: up to 16x higher throughput than the JS/OpenFaaS deployment."""
    best_ratio = 0.0
    for px in SIZES:
        for grid in (echo_grid, resize_grid):
            ratio = grid[(px, FaaSSetup.WASM_SGX_HW)] / grid[(px, FaaSSetup.JS)]
            best_ratio = max(best_ratio, ratio)
    assert best_ratio > 8


def test_fig9_benchmark_measurement(benchmark):
    benchmark.pedantic(
        lambda: PLATFORM.measure("echo", 64, FaaSSetup.WASM_SGX_HW),
        rounds=1,
        iterations=1,
    )
