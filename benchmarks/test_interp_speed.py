"""Interpreter throughput — legacy loop vs. pre-decoded vs. compiled engine.

Times all three engines on a set of PolyBench kernels and reports wall-clock
instructions/second plus the speedup ratios.  The pre-decoded threaded
dispatcher (``repro.wasm.predecode``) must deliver >= 3x over the legacy
loop on at least two kernels, and the Wasm→Python compilation engine
(``repro.wasm.compile_engine``) must deliver >= 3x geomean over predecode —
those are the acceptance bars for shipping each as a selectable engine.

Artefacts:

* ``benchmarks/results/interp_speed.txt`` — the human-readable table;
* ``BENCH_interp.json`` (repo root) — machine-readable per-kernel numbers
  for CI/regression tracking, plus a capped timestamped ``trajectory`` of
  distilled points (one per run) appended via the ``repro.obs.bench``
  helpers so throughput drift is visible across runs.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_interp_speed.py -q -s``.
"""

from __future__ import annotations

import json
import math
import pathlib
import time

import pytest

from benchmarks.conftest import emit_table, record
from repro.obs.bench import TRAJECTORY_LIMIT, append_point
from repro.wasm.interpreter import Instance
from repro.workloads import POLYBENCH_KERNELS

REPO_ROOT = pathlib.Path(__file__).parent.parent

#: A spread of kernel shapes: dense linalg (gemm, 2mm), stencils (jacobi-1d,
#: jacobi-2d), triangular solve (trisolv) and a reduction-heavy one (atax).
KERNELS = ["gemm", "2mm", "jacobi-1d", "jacobi-2d", "trisolv", "atax"]

ENGINES = ["legacy", "predecode", "compile"]


def _time_engine(name: str, engine: str) -> tuple[float, int]:
    """Run one kernel under one engine; return (seconds, executed)."""
    spec = POLYBENCH_KERNELS[name]
    instance = Instance(spec.compile().clone(), engine=engine)
    for fn, args in spec.setup:
        instance.invoke(fn, *args)
    start = time.perf_counter()
    instance.invoke(spec.run[0], *spec.run[1])
    elapsed = time.perf_counter() - start
    return elapsed, instance.stats.executed


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


@pytest.fixture(scope="module")
def speed_rows():
    rows = []
    results = {}
    for name in KERNELS:
        seconds = {}
        executed = None
        for engine in ENGINES:
            elapsed, count = _time_engine(name, engine)
            seconds[engine] = elapsed
            if executed is None:
                executed = count
            else:
                assert count == executed, "engines disagree on instruction count"
        ips = {engine: executed / seconds[engine] for engine in ENGINES}
        speedup = ips["predecode"] / ips["legacy"]
        compile_speedup = ips["compile"] / ips["predecode"]
        rows.append(
            [
                name,
                executed,
                f"{ips['legacy'] / 1e6:.2f}",
                f"{ips['predecode'] / 1e6:.2f}",
                f"{ips['compile'] / 1e6:.2f}",
                f"{speedup:.2f}x",
                f"{compile_speedup:.2f}x",
            ]
        )
        results[name] = {
            "executed": executed,
            "legacy_seconds": round(seconds["legacy"], 6),
            "predecode_seconds": round(seconds["predecode"], 6),
            "compile_seconds": round(seconds["compile"], 6),
            "legacy_ips": round(ips["legacy"]),
            "predecode_ips": round(ips["predecode"]),
            "compile_ips": round(ips["compile"]),
            "speedup": round(speedup, 3),
            "compile_speedup": round(compile_speedup, 3),
        }

    path = REPO_ROOT / "BENCH_interp.json"
    doc: dict = {}
    if path.exists():
        doc = json.loads(path.read_text())
    doc["kernels"] = results
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    # one distilled, timestamped point per run; the helper caps the history
    # and preserves the full per-kernel snapshot written above
    point = {
        "ts_s": time.time(),
        "geomean_predecode_over_legacy": round(
            _geomean([r["speedup"] for r in results.values()]), 3
        ),
        "geomean_compile_over_predecode": round(
            _geomean([r["compile_speedup"] for r in results.values()]), 3
        ),
        "by_kernel": {
            name: {
                "legacy_ips": r["legacy_ips"],
                "predecode_ips": r["predecode_ips"],
                "compile_ips": r["compile_ips"],
            }
            for name, r in results.items()
        },
    }
    append_point(str(path), point)
    return rows


def test_interp_speed_table(speed_rows, benchmark):
    emit_table(
        "interp_speed",
        "Interpreter throughput: legacy loop vs. pre-decoded vs. compiled "
        "engine (Minstr/s, wall clock)",
        [
            "kernel",
            "instructions",
            "legacy Mi/s",
            "predecode Mi/s",
            "compile Mi/s",
            "pre/legacy",
            "cmp/pre",
        ],
        speed_rows,
    )
    record(benchmark)


def test_predecode_speedup_at_least_3x_on_two_kernels(speed_rows, benchmark):
    speedups = {row[0]: float(row[5].rstrip("x")) for row in speed_rows}
    fast_enough = [k for k, s in speedups.items() if s >= 3.0]
    assert len(fast_enough) >= 2, f"speedups too low: {speedups}"
    record(benchmark)


def test_compile_speedup_geomean_at_least_3x(speed_rows, benchmark):
    """The compile engine's acceptance bar: >= 3x geomean over predecode."""
    speedups = [float(row[6].rstrip("x")) for row in speed_rows]
    geomean = _geomean(speedups)
    assert geomean >= 3.0, f"compile/predecode geomean too low: {geomean:.2f}"
    record(benchmark)


def test_bench_json_written(speed_rows, benchmark):
    data = json.loads((REPO_ROOT / "BENCH_interp.json").read_text())
    assert set(data["kernels"]) == set(KERNELS)
    for entry in data["kernels"].values():
        for column in ("legacy_ips", "predecode_ips", "compile_ips"):
            assert entry[column] > 0
    record(benchmark)


def test_bench_trajectory_appended(speed_rows, benchmark):
    data = json.loads((REPO_ROOT / "BENCH_interp.json").read_text())
    trajectory = data["trajectory"]
    assert 1 <= len(trajectory) <= TRAJECTORY_LIMIT
    latest = trajectory[-1]
    assert latest["geomean_compile_over_predecode"] > 0
    assert set(latest["by_kernel"]) == set(KERNELS)
    record(benchmark)
