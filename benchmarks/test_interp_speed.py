"""Interpreter throughput — legacy per-instruction loop vs. pre-decoded engine.

Times both engines on a set of PolyBench kernels and reports wall-clock
instructions/second plus the speedup ratio.  The pre-decoded threaded
dispatcher (``repro.wasm.predecode``) must deliver >= 3x on at least two
kernels — that is the acceptance bar for shipping it as the default engine.

Artefacts:

* ``benchmarks/results/interp_speed.txt`` — the human-readable table;
* ``BENCH_interp.json`` (repo root) — machine-readable per-kernel numbers
  for CI/regression tracking.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_interp_speed.py -q -s``.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from benchmarks.conftest import emit_table, record
from repro.wasm.interpreter import Instance
from repro.workloads import POLYBENCH_KERNELS

REPO_ROOT = pathlib.Path(__file__).parent.parent

#: A spread of kernel shapes: dense linalg (gemm, 2mm), stencils (jacobi-1d,
#: jacobi-2d), triangular solve (trisolv) and a reduction-heavy one (atax).
KERNELS = ["gemm", "2mm", "jacobi-1d", "jacobi-2d", "trisolv", "atax"]


def _time_engine(name: str, engine: str) -> tuple[float, int]:
    """Run one kernel under one engine; return (seconds, executed)."""
    spec = POLYBENCH_KERNELS[name]
    instance = Instance(spec.compile().clone(), engine=engine)
    for fn, args in spec.setup:
        instance.invoke(fn, *args)
    start = time.perf_counter()
    instance.invoke(spec.run[0], *spec.run[1])
    elapsed = time.perf_counter() - start
    return elapsed, instance.stats.executed


@pytest.fixture(scope="module")
def speed_rows():
    rows = []
    results = {}
    for name in KERNELS:
        legacy_s, executed = _time_engine(name, "legacy")
        pre_s, executed_pre = _time_engine(name, "predecode")
        assert executed_pre == executed, "engines disagree on instruction count"
        legacy_ips = executed / legacy_s
        pre_ips = executed / pre_s
        speedup = pre_ips / legacy_ips
        rows.append(
            [
                name,
                executed,
                f"{legacy_ips / 1e6:.2f}",
                f"{pre_ips / 1e6:.2f}",
                f"{speedup:.2f}x",
            ]
        )
        results[name] = {
            "executed": executed,
            "legacy_seconds": round(legacy_s, 6),
            "predecode_seconds": round(pre_s, 6),
            "legacy_ips": round(legacy_ips),
            "predecode_ips": round(pre_ips),
            "speedup": round(speedup, 3),
        }
    (REPO_ROOT / "BENCH_interp.json").write_text(
        json.dumps({"kernels": results}, indent=2) + "\n"
    )
    return rows


def test_interp_speed_table(speed_rows, benchmark):
    emit_table(
        "interp_speed",
        "Interpreter throughput: legacy loop vs. pre-decoded engine "
        "(Minstr/s, wall clock)",
        ["kernel", "instructions", "legacy Mi/s", "predecode Mi/s", "speedup"],
        speed_rows,
    )
    record(benchmark)


def test_predecode_speedup_at_least_3x_on_two_kernels(speed_rows, benchmark):
    speedups = {row[0]: float(row[4].rstrip("x")) for row in speed_rows}
    fast_enough = [k for k, s in speedups.items() if s >= 3.0]
    assert len(fast_enough) >= 2, f"speedups too low: {speedups}"
    record(benchmark)


def test_bench_json_written(speed_rows, benchmark):
    data = json.loads((REPO_ROOT / "BENCH_interp.json").read_text())
    assert set(data["kernels"]) == set(KERNELS)
    for entry in data["kernels"].values():
        assert entry["predecode_ips"] > 0 and entry["legacy_ips"] > 0
    record(benchmark)
