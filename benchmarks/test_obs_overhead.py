"""Observability overhead — the off-by-default no-ops must stay (nearly) free.

Two layers of measurement:

* Micro: the per-call cost of a disabled ``span()`` and a disabled
  ``Counter.inc()`` in nanoseconds, against the enabled variants, so the
  "no-op when off" claim is a number rather than a slogan.
* Macro: PolyBench interpreter runs (both engines) with observability off
  vs. on.  Three configurations: everything off, tracing + metrics enabled
  (the production observability path — spans and counters sit at invoke /
  account granularity, never inside the dispatch loop), and additionally the
  attribution profiler (an opt-in diagnostic that hooks every call and, on
  the legacy engine, every instruction).  Gates: repeated obs-off runs must
  agree within 2% (the "no-op when off" claim), and tracing + metrics must
  cost under 5% — the CI gate, because CI runs the traced/metered workloads.
  Profiler cost is reported but not gated: per-instruction attribution on
  the legacy engine is inherently paid for only when ``--profile`` is asked
  for.

Artefacts:

* ``benchmarks/results/obs_overhead.txt`` — human-readable table;
* ``BENCH_obs.json`` (repo root) — machine-readable numbers merged with the
  ``repro loadtest --metrics-out`` snapshot for CI regression tracking.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -q -s``.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

import pytest

from benchmarks.conftest import emit_table, record
from repro.obs import (
    disable_all,
    enable_metrics,
    enable_profiling,
    enable_tracing,
    get_registry,
)
from repro.obs.events import EventLog, enable_events
from repro.obs.events import emit as emit_event
from repro.obs.metrics import Counter
from repro.obs.trace import span
from repro.wasm.interpreter import Instance
from repro.workloads import POLYBENCH_KERNELS

REPO_ROOT = pathlib.Path(__file__).parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_obs.json"

KERNEL = "gemm"  # ~160k instructions: long enough to beat scheduler jitter
RUNS = 7
MICRO_ITERS = 200_000

#: Relative overhead ceilings (fractions). The enabled bound is the CI gate.
DISABLED_CEILING = 0.02
ENABLED_CEILING = 0.05


@pytest.fixture(autouse=True)
def _obs_off():
    disable_all()
    yield
    disable_all()
    get_registry().reset()


def _merge_bench(payload: dict) -> None:
    try:
        existing = json.loads(BENCH_PATH.read_text())
        if not isinstance(existing, dict):
            existing = {}
    except (OSError, ValueError):
        existing = {}
    existing.update(payload)
    BENCH_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _time_loop(fn, iters: int) -> float:
    """Average per-call wall time of ``fn`` in nanoseconds."""
    start = time.perf_counter_ns()
    for _ in range(iters):
        fn()
    return (time.perf_counter_ns() - start) / iters


def _micro_costs() -> dict[str, float]:
    counter = Counter("obs_overhead_probe", "micro-benchmark probe")

    def span_call():
        with span("probe", tenant="t"):
            pass

    def counter_call():
        counter.inc(tenant="t")

    def emit_call():
        emit_event("probe", tenant="t")

    def baseline():
        pass

    costs = {}
    costs["call_baseline_ns"] = _time_loop(baseline, MICRO_ITERS)
    costs["span_disabled_ns"] = _time_loop(span_call, MICRO_ITERS)
    costs["counter_disabled_ns"] = _time_loop(counter_call, MICRO_ITERS)
    costs["emit_disabled_ns"] = _time_loop(emit_call, MICRO_ITERS)
    tracer = enable_tracing()
    enable_metrics()
    enable_events(EventLog(capacity=MICRO_ITERS + 1))
    costs["span_enabled_ns"] = _time_loop(span_call, MICRO_ITERS)
    costs["counter_enabled_ns"] = _time_loop(counter_call, MICRO_ITERS)
    costs["emit_enabled_ns"] = _time_loop(emit_call, MICRO_ITERS)
    tracer.clear()
    disable_all()
    return costs


def _kernel_run_seconds(engine: str) -> float:
    """One interpreter run of the kernel, wall seconds (setup untimed)."""
    spec = POLYBENCH_KERNELS[KERNEL]
    instance = Instance(spec.compile().clone(), engine=engine)
    for fn, args in spec.setup:
        instance.invoke(fn, *args)
    start = time.perf_counter()
    instance.invoke(spec.run[0], *spec.run[1])
    return time.perf_counter() - start


def _paired_rounds(engine: str, rounds: int) -> dict[str, object]:
    """Measure every obs configuration back to back, ``rounds`` times.

    Run-to-run jitter on shared/virtualised hardware dwarfs the effect being
    measured, so absolute best-of-N comparisons across separate phases are
    meaningless.  Instead each round times off, off-again, traced + metered
    and profiled within a few hundred milliseconds of each other and the
    overheads are taken as the *median of per-round ratios* — slow drift
    (CPU frequency scaling, noisy neighbours) hits both sides of each ratio
    equally and cancels.
    """
    ratios = {"off2": [], "traced": [], "profiled": []}
    best_off = float("inf")
    for _ in range(rounds):
        disable_all()
        off = _kernel_run_seconds(engine)
        off2 = _kernel_run_seconds(engine)
        tracer = enable_tracing()
        enable_metrics()
        traced = _kernel_run_seconds(engine)
        enable_profiling()
        profiled = _kernel_run_seconds(engine)
        tracer.clear()
        disable_all()
        get_registry().reset()
        best_off = min(best_off, off)
        ratios["off2"].append(off2 / off)
        ratios["traced"].append(traced / off)
        ratios["profiled"].append(profiled / off)
    return {
        "best_off_s": best_off,
        "medians": {k: statistics.median(v) for k, v in ratios.items()},
    }


@pytest.fixture(scope="module")
def overhead_numbers():
    disable_all()
    micro = _micro_costs()

    results = {"micro_ns": micro, "end_to_end": {}}
    rows = [
        ["span (disabled)", f"{micro['span_disabled_ns']:.0f} ns", "-"],
        ["span (enabled)", f"{micro['span_enabled_ns']:.0f} ns", "-"],
        ["counter.inc (disabled)", f"{micro['counter_disabled_ns']:.0f} ns", "-"],
        ["counter.inc (enabled)", f"{micro['counter_enabled_ns']:.0f} ns", "-"],
        ["event emit (disabled)", f"{micro['emit_disabled_ns']:.0f} ns", "-"],
        ["event emit (enabled)", f"{micro['emit_enabled_ns']:.0f} ns", "-"],
    ]

    for engine in ("predecode", "legacy"):
        disable_all()
        _kernel_run_seconds(engine)  # warm parse/compile caches
        paired = _paired_rounds(engine, RUNS)
        medians = paired["medians"]

        jitter = abs(medians["off2"] - 1.0)
        overhead = medians["traced"] - 1.0
        profiled_overhead = medians["profiled"] - 1.0
        results["end_to_end"][engine] = {
            "kernel": KERNEL,
            "obs_off_s": paired["best_off_s"],
            "disabled_jitter": jitter,
            "enabled_overhead": overhead,
            "profiled_overhead": profiled_overhead,
        }
        rows.append(
            [f"{KERNEL} ({engine})", f"{paired['best_off_s'] * 1e3:.1f} ms off",
             f"{overhead * 100:+.1f}% traced+metered, "
             f"{profiled_overhead * 100:+.1f}% profiled"]
        )

    emit_table(
        "obs_overhead",
        "Observability overhead (off-by-default no-ops vs. fully enabled)",
        ["probe", "cost", "overhead"],
        rows,
    )
    _merge_bench({"obs_overhead": results})
    return results


def test_disabled_noop_cost_is_negligible(overhead_numbers, benchmark):
    micro = overhead_numbers["micro_ns"]
    # a disabled span/counter/emit call is a function call, one global check
    # and a shared constant — order-of-a-microsecond, thousands of times
    # cheaper than the multi-millisecond operations they would wrap
    assert micro["span_disabled_ns"] < 2000
    assert micro["counter_disabled_ns"] < 2000
    assert micro["emit_disabled_ns"] < 2000
    assert micro["span_disabled_ns"] < micro["span_enabled_ns"]
    record(benchmark)


def test_disabled_overhead_bound_under_two_percent(overhead_numbers, benchmark):
    """Deterministic bound on the disabled-path cost of one sandbox run.

    A workload invocation passes ~8 disabled obs call sites (deploy, attest,
    submit, instrument, invoke, execute, account spans plus the sandbox
    counters).  Bounding generously at 4x that, the total disabled cost must
    stay under 2% of the fastest measured kernel run — a gate that does not
    depend on comparing two noisy wall-clock samples.
    """
    micro = overhead_numbers["micro_ns"]
    per_call_ns = max(micro["span_disabled_ns"], micro["counter_disabled_ns"])
    worst_disabled_s = 32 * per_call_ns * 1e-9
    for engine, numbers in overhead_numbers["end_to_end"].items():
        bound = worst_disabled_s / numbers["obs_off_s"]
        assert bound < DISABLED_CEILING, (
            f"{engine}: disabled obs call sites could cost {bound:.2%} of a "
            f"{numbers['obs_off_s'] * 1e3:.1f} ms run (gate {DISABLED_CEILING:.0%})"
        )
        # sanity: repeated obs-off runs should agree within the machine's
        # jitter band; wildly divergent repeats mean the numbers above are
        # not trustworthy at all
        assert numbers["disabled_jitter"] < 0.10, (
            f"{engine}: repeat obs-off runs differ by "
            f"{numbers['disabled_jitter']:.1%}; machine too noisy to measure"
        )
    record(benchmark)


def test_enabled_overhead_under_ci_gate(overhead_numbers, benchmark):
    for engine, numbers in overhead_numbers["end_to_end"].items():
        assert numbers["enabled_overhead"] < ENABLED_CEILING, (
            f"{engine}: full observability costs "
            f"{numbers['enabled_overhead']:.1%} (gate {ENABLED_CEILING:.0%})"
        )
    record(benchmark)


def test_bench_artifact_written(overhead_numbers, benchmark):
    doc = json.loads(BENCH_PATH.read_text())
    assert "obs_overhead" in doc
    assert set(doc["obs_overhead"]["end_to_end"]) == {"predecode", "legacy"}
    record(benchmark)


# -- telemetry pipeline: event log + aggregation riding a metered loadtest -----

PIPELINE_ROUNDS = 5
PIPELINE_CEILING = 0.05  # the CI gate for the full pipeline


def _loadtest_wall(pipeline: bool) -> float:
    from repro.service.gateway import run_loadtest

    result = run_loadtest(
        worker_counts=(2,), requests=12, pool="thread", backend="wasm",
        kernels=("trisolv",), verify_serial=False, quota_probe=False,
        pipeline=pipeline,
    )
    return result["sweep"][0]["wall_s"]


@pytest.fixture(scope="module")
def pipeline_numbers():
    """Paired on/off rounds of a real metered loadtest.

    Same methodology as :func:`_paired_rounds`: each round runs the identical
    workload with the pipeline off then on within seconds of each other, and
    the overhead is the median of per-round wall-clock ratios, so machine
    drift cancels instead of masquerading as pipeline cost.
    """
    disable_all()
    _loadtest_wall(False)  # warm module/compile caches
    ratios = []
    best_off = float("inf")
    for _ in range(PIPELINE_ROUNDS):
        off = _loadtest_wall(False)
        on = _loadtest_wall(True)
        best_off = min(best_off, off)
        ratios.append(on / off)
    overhead = statistics.median(ratios) - 1.0
    results = {
        "rounds": PIPELINE_ROUNDS,
        "best_off_s": best_off,
        "overhead": overhead,
        "ratios": ratios,
    }
    emit_table(
        "obs_pipeline_overhead",
        "Telemetry pipeline overhead on a metered loadtest (paired rounds)",
        ["probe", "cost", "overhead"],
        [["loadtest 12 req x 2 workers (wasm)", f"{best_off * 1e3:.1f} ms off",
          f"{overhead * 100:+.1f}% with events+aggregation+audit"]],
    )
    _merge_bench({"obs_pipeline_overhead": results})
    return results


def test_pipeline_overhead_under_gate(pipeline_numbers, benchmark):
    assert pipeline_numbers["overhead"] < PIPELINE_CEILING, (
        f"telemetry pipeline costs {pipeline_numbers['overhead']:.1%} of a "
        f"metered loadtest (gate {PIPELINE_CEILING:.0%})"
    )
    record(benchmark)


# -- distributed tracing: context propagation + worker telemetry backhaul ------

TRACE_ROUNDS = 5
TRACE_CEILING = 0.05  # the CI gate for tracing + backhaul + stitching


def _traced_loadtest(trace_out: str | None) -> dict:
    from repro.service.gateway import run_loadtest

    # preemption in both arms: every checkpoint re-dispatch is an extra hop
    # whose capture must ship home, so the traced arm pays the backhaul at
    # its worst while the untraced arm pays the same preemption cost
    return run_loadtest(
        worker_counts=(2,), requests=12, pool="thread", backend="wasm",
        kernels=("trisolv",), verify_serial=False, quota_probe=False,
        preempt_after=400, trace_out=trace_out,
    )


@pytest.fixture(scope="module")
def trace_numbers(tmp_path_factory):
    """Paired rounds of a preempting loadtest, untraced vs fully traced.

    The traced arm mints a context per request, activates the worker-side
    capture on every hop, ships spans/events/metric deltas back inside each
    ``WorkerResult``, merges them into the gateway tracer and verifies the
    per-request stitch — the complete distributed-tracing path.
    """
    disable_all()
    trace_out = str(tmp_path_factory.mktemp("trace") / "trace.json")
    _traced_loadtest(None)  # warm module/compile caches
    ratios = []
    best_off = float("inf")
    stitched = True
    for _ in range(TRACE_ROUNDS):
        off = _traced_loadtest(None)["sweep"][0]["wall_s"]
        traced_result = _traced_loadtest(trace_out)
        stitched = stitched and traced_result["trace_ok"]
        best_off = min(best_off, off)
        ratios.append(traced_result["sweep"][0]["wall_s"] / off)
    overhead = statistics.median(ratios) - 1.0
    results = {
        "rounds": TRACE_ROUNDS,
        "best_off_s": best_off,
        "overhead": overhead,
        "ratios": ratios,
        "stitched_every_round": stitched,
    }
    emit_table(
        "trace_backhaul_overhead",
        "Distributed tracing overhead on a preempting loadtest (paired rounds)",
        ["probe", "cost", "overhead"],
        [["loadtest 12 req x 2 workers, preempted", f"{best_off * 1e3:.1f} ms off",
          f"{overhead * 100:+.1f}% with propagation+backhaul+stitch"]],
    )
    _merge_bench({"trace_backhaul_overhead": results})
    return results


def test_trace_backhaul_overhead_under_gate(trace_numbers, benchmark):
    assert trace_numbers["overhead"] < TRACE_CEILING, (
        f"distributed tracing costs {trace_numbers['overhead']:.1%} of a "
        f"preempting loadtest (gate {TRACE_CEILING:.0%})"
    )
    record(benchmark)


def test_trace_backhaul_stitches_while_measured(trace_numbers, benchmark):
    assert trace_numbers["stitched_every_round"] is True
    record(benchmark)


def test_pipeline_off_keeps_signed_totals_byte_identical(benchmark):
    """Differential pin: the pipeline must be an observer, never a participant.

    With the pipeline off (the default), the gateway's aggregate signed
    totals must match a serial single-sandbox re-run byte for byte — exactly
    as before the pipeline existed.  And turning the pipeline *on* must not
    perturb them either: events narrate the billing path, they do not touch
    it.
    """
    from repro.service.gateway import run_loadtest

    for pipeline in (False, True):
        result = run_loadtest(
            worker_counts=(1,), requests=6, pool="thread", backend="wasm",
            kernels=("trisolv",), verify_serial=True, quota_probe=False,
            pipeline=pipeline,
        )
        assert result["serial_totals_match"] is True, (
            f"pipeline={pipeline}: signed totals diverged from serial baseline"
        )
        assert ("telemetry" in result) is pipeline
        if pipeline:
            assert result["telemetry"]["drift_ok"] is True
    record(benchmark)
