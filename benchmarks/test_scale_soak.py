"""Control-plane scale soak — overhead and memory vs tenant population.

The paper's provider runs *many* tenants on one attested platform; this
experiment measures what the repo's control plane (admission, governed
metrics, event rollup, live SLO evaluation) costs per request as the
tenant population sweeps decades, and gates the curve flat: per-request
overhead at the largest population within ``1.25x`` of the smallest,
every per-tenant structure bounded by its budget, the heaviest tenant
still recoverable through the shard-merged sketches.

CI runs a reduced sweep (up to 10^4 here; the workflow's scale-soak job
drives 10^5, and 10^6 is the nightly/manual leg) — the gates are
identical at every scale because the budgets sit below the smallest
population, so each point exercises the same governed steady state.

Artefacts:

* ``benchmarks/results/scale_soak.txt`` — human-readable table;
* ``BENCH_scale.json`` (repo root, written by ``repro soak``) — the full
  4-decade curve CI asserts against.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_scale_soak.py -q -s``.
"""

from __future__ import annotations

from benchmarks.conftest import emit_table, record
from repro.obs.soak import run_scale_soak

#: Reduced sweep for the in-suite run; the CLI covers the full decades.
TENANT_COUNTS = (1_000, 10_000)
REQUESTS = 20_000


def test_scale_soak_overhead_flat_and_structures_bounded(benchmark):
    result = run_scale_soak(
        tenant_counts=TENANT_COUNTS,
        requests=REQUESTS,
        isolate=False,  # in-suite: keep the run cheap; the CLI isolates
    )
    rows = [
        [
            point["tenants"],
            f"{point['per_request_us']:.1f}",
            f"{point['per_request_us_norm']:.1f}",
            f"{point['rss_mb']:.1f}",
            f"{point['overflow_ratio']:.2f}",
            point["structures"]["admission_resident"],
            point["structures"]["rollup_tenant_keys"],
            point["tenant_cardinality"],
        ]
        for point in result["points"]
    ]
    emit_table(
        "scale_soak",
        "Control-plane overhead vs tenant population "
        f"({REQUESTS} modeled requests per point)",
        ["tenants", "us/req", "us/req(norm)", "rss_mb", "overflow",
         "resident", "window_keys", "~cardinality"],
        rows,
    )
    record(benchmark)

    gates = result["gates"]
    assert gates["bounded_ok"], "per-tenant structures exceeded their budgets"
    assert gates["top_recovered_ok"], "heaviest tenant lost in the sketches"
    assert gates["overhead_ok"], (
        f"overhead ratio {gates['overhead_ratio']:.3f} exceeds "
        f"{gates['max_overhead_ratio']} — control-plane cost is not flat "
        "across tenant decades"
    )
    assert result["ok"]


def test_scale_point_memory_is_o_active_not_o_seen(benchmark):
    """RSS and structure sizes must not scale with ever-seen tenants."""
    small = run_scale_soak(
        tenant_counts=(2_000,), requests=6_000, isolate=False
    )["points"][0]
    large = run_scale_soak(
        tenant_counts=(200_000,), requests=6_000, isolate=False
    )["points"][0]
    record(benchmark)
    # 100x the tenant population: bounded structures must not move at all,
    # and RSS may grow only by the schedule/census slack, never 100x
    for field in ("admission_resident", "rollup_tenant_keys", "rollup_tracked"):
        assert large["structures"][field] <= small["structures"][field] + 1
    assert large["rss_mb"] <= small["rss_mb"] * 1.5 + 16.0
