"""§5.4 — binary size overhead of instrumentation.

Regenerates the in-text table: across every Wasm binary used in the
evaluation, the size growth of instrumented binaries without optimisation
(paper: 4-39%) and with all optimisations (paper: 4-27%).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_table, record
from repro.instrument import instrument_module
from repro.instrument.weights import UNIT_WEIGHTS
from repro.wasm.binary import encode_module
from repro.workloads import DARKNET, ECHO, MSIEVE, PC_ALGORITHM, RESIZE, SUBSET_SUM
from repro.workloads.polybench import fig6_order

ALL_SPECS = list(fig6_order()) + [MSIEVE, PC_ALGORITHM, SUBSET_SUM, DARKNET, ECHO, RESIZE]


@pytest.fixture(scope="module")
def size_rows():
    rows = []
    for spec in ALL_SPECS:
        module = spec.compile()
        base = len(encode_module(module))
        naive = len(encode_module(instrument_module(module, "naive", UNIT_WEIGHTS).module))
        flow = len(encode_module(instrument_module(module, "flow-based", UNIT_WEIGHTS).module))
        loop = len(encode_module(instrument_module(module, "loop-based", UNIT_WEIGHTS).module))
        rows.append(
            [
                spec.name,
                base,
                naive,
                flow,
                loop,
                round(100 * (naive - base) / base, 1),
                round(100 * (flow - base) / base, 1),
                round(100 * (loop - base) / base, 1),
            ]
        )
    return rows


def test_sec54_table(size_rows, benchmark):
    record(benchmark)
    emit_table(
        "sec54_binary_size",
        f"Sec 5.4: binary sizes over {len(size_rows)} evaluation binaries [bytes]",
        ["binary", "original", "naive", "flow", "loop", "naive_%", "flow_%", "loop_%"],
        size_rows,
    )


def test_sec54_growth_bands(size_rows, benchmark):
    record(benchmark)
    """Relative growth bands.

    Our modules are two orders of magnitude smaller than the paper's 0.5 KB -
    901 KB binaries, so the fixed per-increment cost weighs more: the band
    shifts up from the paper's 4-39%/4-27% but the *ordering* holds — flow
    optimisation strictly shrinks the instrumented binary, and loop-based
    trades a few bytes of reconstruction code for runtime.
    """
    naive_growth = [r[5] for r in size_rows]
    flow_growth = [r[6] for r in size_rows]
    assert min(naive_growth) > 0
    assert max(naive_growth) < 80
    assert min(flow_growth) > 0
    assert sum(flow_growth) / len(flow_growth) < sum(naive_growth) / len(naive_growth)


def test_sec54_flow_growth_never_exceeds_naive(benchmark):
    record(benchmark)
    for spec in ALL_SPECS:
        module = spec.compile()
        naive = len(encode_module(instrument_module(module, "naive", UNIT_WEIGHTS).module))
        flow = len(encode_module(instrument_module(module, "flow-based", UNIT_WEIGHTS).module))
        assert flow <= naive


def test_sec54_benchmark_measurement(benchmark):
    spec = ALL_SPECS[0]
    module = spec.compile()
    benchmark.pedantic(
        lambda: encode_module(instrument_module(module, "loop-based", UNIT_WEIGHTS).module),
        rounds=1,
        iterations=1,
    )
