"""Metering-gateway loadtest: throughput/latency scaling across worker counts.

Drives :func:`repro.service.gateway.run_loadtest` over the PolyBench tenant
mix on both execution backends and emits the scaling table referenced by
EXPERIMENTS.md.  The ``modeled`` backend paces requests with the Fig. 9
service-time model, so its worker scaling is honest even on a single-core
container; the ``wasm`` backend executes for real and scales only with
physical cores.

Shape targets: every epoch verifies offline, the over-quota probe tenant is
rejected with a typed error at every sweep point, aggregate metered totals
are byte-identical to a serial single-sandbox run, and the modeled backend
shows >=1.5x throughput at 4 workers over 1.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_table, record
from repro.service.gateway import run_loadtest

WORKER_COUNTS = (1, 2, 4)
REQUESTS = 12
KERNELS = ("atax", "trisolv", "gesummv")


@pytest.fixture(scope="module")
def modeled_sweep():
    return run_loadtest(
        worker_counts=WORKER_COUNTS,
        requests=REQUESTS,
        pool="thread",
        kernels=KERNELS,
        backend="modeled",
        time_scale=0.4,
    )


@pytest.fixture(scope="module")
def wasm_sweep():
    return run_loadtest(
        worker_counts=WORKER_COUNTS,
        requests=REQUESTS,
        pool="thread",
        kernels=KERNELS,
        backend="wasm",
    )


def _emit(name: str, title: str, result) -> None:
    rows = [
        [
            point["workers"],
            round(point["throughput_rps"], 1),
            round(point["latency_s"]["p50"] * 1000, 2),
            round(point["latency_s"]["p95"] * 1000, 2),
            round(point["latency_s"]["p99"] * 1000, 2),
            point["epoch_ok"],
            point["quota_rejection"]["code"],
        ]
        for point in result["sweep"]
    ]
    emit_table(
        name,
        title,
        ["workers", "rps", "p50 [ms]", "p95 [ms]", "p99 [ms]", "epoch ok", "probe rejection"],
        rows,
    )


def test_gateway_modeled_scaling(modeled_sweep, benchmark):
    record(benchmark)
    _emit(
        "service_gateway_modeled",
        "Metering gateway: modeled backend (Fig. 9 service times), PolyBench mix",
        modeled_sweep,
    )
    for point in modeled_sweep["sweep"]:
        assert point["epoch_ok"]
        assert point["quota_rejection"]["code"] == "instruction-budget-exhausted"
    assert modeled_sweep["serial_totals_match"]
    # paced replay makes worker scaling honest even on one core
    assert modeled_sweep["speedup_4_over_1"] >= 1.5


def test_gateway_wasm_backend(wasm_sweep, benchmark):
    record(benchmark)
    _emit(
        "service_gateway_wasm",
        "Metering gateway: wasm backend (real execution), PolyBench mix",
        wasm_sweep,
    )
    for point in wasm_sweep["sweep"]:
        assert point["epoch_ok"]
        assert point["quota_rejection"]["code"] == "instruction-budget-exhausted"
        assert point["throughput_rps"] > 0
    assert wasm_sweep["serial_totals_match"]
    # real execution only scales with physical cores: the sweep records the
    # core count and marks the gate advisory when the box has fewer cores
    # than workers, in which case we only require no collapse (adaptive
    # sizing keeps the oversubscribed pool at parity instead of thrashing)
    gate = wasm_sweep["speedup_gate"]
    assert gate["cores_available"] == wasm_sweep["cores_available"]
    if gate["advisory"]:
        assert wasm_sweep["speedup_4_over_1"] > 0.5
    else:
        assert wasm_sweep["speedup_4_over_1"] >= 1.5


def test_gateway_batched_sealing_throughput(benchmark):
    """Batched Merkle sealing vs per-receipt signing, overhead-isolated.

    ``time_scale=0`` zeroes the modeled service times so the sweep measures
    pure gateway overhead — admission, dispatch, accounting, sealing — which
    is where per-receipt RSA signing dominates.  One signature per flush
    window (over the Merkle root of 16 receipt bodies) replaces one per
    receipt; measured uplift on this path is 3-5x per run (6x+ at longer
    runs), gated conservatively at 2x to absorb CI noise.
    """
    record(benchmark)
    common = dict(
        worker_counts=(4,),
        requests=200,
        pool="thread",
        kernels=("trisolv", "atax"),
        backend="modeled",
        time_scale=0.0,
        quota_probe=False,
        verify_serial=False,
    )
    unbatched = run_loadtest(seal_window=None, **common)["sweep"][0]
    batched = run_loadtest(seal_window=16, **common)["sweep"][0]
    emit_table(
        "service_gateway_batched_sealing",
        "Batched Merkle sealing vs per-receipt signing (modeled, 4 workers, overhead only)",
        ["sealing", "rps", "p95 [ms]", "AE sigs/request", "epoch ok"],
        [
            [
                "per-receipt",
                round(unbatched["throughput_rps"], 1),
                round(unbatched["latency_s"]["p95"] * 1000, 2),
                round(unbatched["signatures"]["per_request"], 4),
                unbatched["epoch_ok"],
            ],
            [
                "batched (window 16)",
                round(batched["throughput_rps"], 1),
                round(batched["latency_s"]["p95"] * 1000, 2),
                round(batched["signatures"]["per_request"], 4),
                batched["epoch_ok"],
            ],
        ],
    )
    assert unbatched["epoch_ok"] and batched["epoch_ok"]
    assert unbatched["signatures"]["per_request"] == 1.0
    assert batched["signatures"]["per_receipt"] == 0
    assert batched["signatures"]["batch_seals"] > 0
    ratio = batched["throughput_rps"] / unbatched["throughput_rps"]
    assert ratio >= 2.0, f"batched sealing uplift collapsed: {ratio:.2f}x"


def test_gateway_loadtest_measurement(benchmark):
    benchmark.pedantic(
        lambda: run_loadtest(
            worker_counts=(1,),
            requests=4,
            pool="thread",
            kernels=("trisolv",),
            verify_serial=False,
            quota_probe=False,
        ),
        rounds=1,
        iterations=1,
    )
