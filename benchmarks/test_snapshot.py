"""Warm-start pools vs. cold instantiation, and snapshot round-trip cost.

Per-request setup for an instrumented module is instantiation-dominated:
the predecode engine translates every function body, the compile engine
builds its template at ``Instance()`` time.  A warm pool pays that once —
each subsequent request resets a pooled instance to the captured warm
image in place.  The acceptance bar: warm per-request setup must be at
least **5x** cheaper than cold setup (instantiate + bind) on the PolyBench
kernels, per engine.

Artefacts:

* ``benchmarks/results/snapshot_warm_start.txt`` — human-readable table;
* ``BENCH_snapshot.json`` (repo root) — machine-readable numbers plus a
  capped timestamped ``trajectory`` (via :mod:`repro.obs.bench`).

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_snapshot.py -q -s``.
"""

from __future__ import annotations

import json
import math
import pathlib
import time

import pytest

from benchmarks.conftest import emit_table, record
from repro.core.instrumentation_enclave import InstrumentationEnclave
from repro.obs.bench import append_point
from repro.service.warmpool import WarmPool
from repro.wasm.interpreter import ExecutionLimits, Instance
from repro.wasm.runtime import HostEnvironment, IOChannel
from repro.wasm.snapshot import (
    SnapshotCaptured,
    capture_instance,
    decode_snapshot,
    encode_snapshot,
)
from repro.workloads import POLYBENCH_KERNELS

REPO_ROOT = pathlib.Path(__file__).parent.parent

KERNELS = ["trisolv", "atax", "jacobi-1d"]
ENGINES = ["predecode", "compile"]
ROUNDS = 30
REQUIRED_SPEEDUP = 5.0


def _instrumented(name: str):
    ie = InstrumentationEnclave()
    result, _evidence = ie.instrument(POLYBENCH_KERNELS[name].compile().clone())
    return result.module


def _cold_setup_s(module, engine: str) -> float:
    start = time.perf_counter()
    for _ in range(ROUNDS):
        channel = IOChannel()
        env = HostEnvironment(channel=channel, account_io=True)
        env.instantiate(module, limits=ExecutionLimits(), engine=engine)
    return (time.perf_counter() - start) / ROUNDS


def _warm_setup_s(module, engine: str) -> float:
    pool = WarmPool(module=module, engine=engine, max_size=1)
    pool.release(pool.acquire())  # pay the single build up front
    start = time.perf_counter()
    for _ in range(ROUNDS):
        handle = pool.acquire()
        pool.release(handle)
    elapsed = (time.perf_counter() - start) / ROUNDS
    assert pool.stats()["builds"] == 1
    return elapsed


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


@pytest.fixture(scope="module")
def warm_rows():
    rows = []
    results: dict = {}
    for name in KERNELS:
        module = _instrumented(name)
        per_engine = {}
        for engine in ENGINES:
            cold_s = _cold_setup_s(module, engine)
            warm_s = _warm_setup_s(module, engine)
            speedup = cold_s / warm_s
            per_engine[engine] = {
                "cold_setup_us": round(cold_s * 1e6, 2),
                "warm_setup_us": round(warm_s * 1e6, 2),
                "speedup": round(speedup, 2),
            }
            rows.append(
                [
                    name,
                    engine,
                    f"{cold_s * 1e6:.1f}",
                    f"{warm_s * 1e6:.1f}",
                    f"{speedup:.1f}x",
                ]
            )
        results[name] = per_engine

    # snapshot round-trip cost on a mid-flight suspension, for context
    spin = _instrumented("trisolv")
    inst = Instance(spin, limits=ExecutionLimits())
    spec = POLYBENCH_KERNELS["trisolv"]
    for fn, args in spec.setup:
        inst.invoke(fn, *args)
    inst.limits = ExecutionLimits(snapshot_at=inst.stats.executed + 2000)
    snapshot_bytes = None
    try:
        inst.invoke(spec.run[0], *spec.run[1])
    except SnapshotCaptured as exc:
        start = time.perf_counter()
        for _ in range(ROUNDS):
            blob = encode_snapshot(exc.snapshot)
            decode_snapshot(blob)
        roundtrip_s = (time.perf_counter() - start) / ROUNDS
        snapshot_bytes = len(encode_snapshot(exc.snapshot))
        results["snapshot_roundtrip"] = {
            "bytes": snapshot_bytes,
            "encode_decode_us": round(roundtrip_s * 1e6, 2),
        }

    speedups = [
        results[name][engine]["speedup"] for name in KERNELS for engine in ENGINES
    ]
    summary = {
        "kernels": results,
        "geomean_speedup": round(_geomean(speedups), 2),
        "min_speedup": round(min(speedups), 2),
        "required_speedup": REQUIRED_SPEEDUP,
        "rounds": ROUNDS,
    }

    path = REPO_ROOT / "BENCH_snapshot.json"
    doc: dict = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    doc.update(summary)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    append_point(
        str(path),
        {
            "ts_s": time.time(),
            "geomean_speedup": summary["geomean_speedup"],
            "min_speedup": summary["min_speedup"],
            "snapshot_bytes": snapshot_bytes,
        },
    )
    return rows, summary


def test_warm_start_table(warm_rows, benchmark):
    rows, _summary = warm_rows
    emit_table(
        "snapshot_warm_start",
        "Warm-pool request setup vs. cold instantiation (microseconds)",
        ["kernel", "engine", "cold us", "warm us", "speedup"],
        rows,
    )
    record(benchmark)


def test_warm_start_at_least_5x(warm_rows, benchmark):
    """The warm-pool acceptance bar: >= 5x cheaper setup, every cell."""
    _rows, summary = warm_rows
    assert summary["min_speedup"] >= REQUIRED_SPEEDUP, (
        f"warm-start speedup below bar: {summary}"
    )
    record(benchmark)


def test_warm_clone_runs_match_cold_runs(warm_rows, benchmark):
    """A pooled instance must compute exactly what a cold one does."""
    module = _instrumented("trisolv")
    spec = POLYBENCH_KERNELS["trisolv"]
    pool = WarmPool(module=module, max_size=1)

    def run(instance) -> tuple:
        for fn, args in spec.setup:
            instance.invoke(fn, *args)
        value = instance.invoke(spec.run[0], *spec.run[1])
        return value, instance.stats.executed

    cold = Instance(module, limits=ExecutionLimits())
    handle = pool.acquire()
    assert run(handle.instance) == run(cold)
    record(benchmark)
