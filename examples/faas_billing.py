#!/usr/bin/env python3
"""Serverless computing: metered FaaS with comparable cross-provider billing.

Two "providers" run the same customer function in two-way sandboxes on
different pricing policies.  Because AccTEE's accounting is platform
independent (weighted Wasm instructions, not CPU seconds), the customer can
compare offers directly — the paper's §2.1 serverless argument.

Also prints a mini Fig. 9-style throughput comparison for the echo function.

Run with::

    python examples/faas_billing.py
"""

from repro.core.policy import PricingPolicy
from repro.core.sandbox import SandboxConfig, TwoWaySandbox
from repro.scenarios.faas import FaaSPlatform, FaaSSetup
from repro.sgx.enclave import SGXPlatform

FUNCTION = """
extern int io_read(int ptr, int len);
extern int io_write(int ptr, int len);
int buf[4096];

// word-count-ish: how many byte values above 127 in the request body
int dark_bytes(int n) {
    int got = io_read(&buf[0], n);
    int count = 0;
    for (int i = 0; i < got; i = i + 1) {
        count = count + ((buf[i / 4] >> ((i % 4) * 8)) & 128) / 128;
    }
    io_write(&buf[0], 4);
    return count;
}
"""


def run_provider(name: str, pricing: PricingPolicy, requests: list[bytes]) -> None:
    sandbox = TwoWaySandbox.deploy(
        SandboxConfig(pricing=pricing),
        platform=SGXPlatform(platform_id=f"provider-{name}"),
    )
    workload = sandbox.submit_minic(FUNCTION)
    for body in requests:
        workload.invoke("dark_bytes", len(body), input_data=body, label="dark_bytes")
    totals = sandbox.totals()
    print(
        f"  provider {name}: {len(requests)} requests, "
        f"{totals.weighted_instructions} instructions, "
        f"{totals.io_bytes_total} I/O bytes -> invoice {sandbox.invoice():.6f}"
    )
    assert sandbox.verify_log()


def main() -> None:
    requests = [bytes((i * 37 + j) % 256 for j in range(512)) for i in range(8)]

    print("same function, same inputs, two providers, comparable meters:")
    run_provider("A", PricingPolicy(per_mega_weighted_instructions=40.0), requests)
    run_provider("B", PricingPolicy(per_mega_weighted_instructions=55.0), requests)
    print("(identical metered quantities; only the advertised rates differ)")
    print()

    print("echo-function throughput across deployments (64px requests):")
    platform = FaaSPlatform(measure_s=1.0)
    for setup in FaaSSetup:
        point = platform.measure("echo", 64, setup)
        bar = "#" * max(1, int(point.throughput_rps / 15))
        print(f"  {setup.value:<20} {point.throughput_rps:7.1f} req/s  {bar}")


if __name__ == "__main__":
    main()
