#!/usr/bin/env python3
"""Pay-by-computation: unlock web content by donating cycles instead of ads.

A content server hands the visiting browser short classification tasks (the
Darknet-style workload); the two-way sandbox meters them, the signed log is
the payment proof, and an article unlocks once enough computation has been
contributed (§2.1).  The sandbox's instruction budget caps what any task can
burn.

Run with::

    python examples/pay_by_computation.py
"""

from dataclasses import replace

from repro.scenarios.paybycomputation import (
    Article,
    BrowsingSession,
    ContentServer,
    PaymentRejected,
    TaskAssignment,
)
from repro.workloads import DARKNET


def main() -> None:
    tasks = [
        TaskAssignment(
            replace(DARKNET, run=("classify", (7, image_seed))),
            (7, image_seed),
            budget_instructions=5_000_000,
        )
        for image_seed in (101, 202, 303)
    ]
    server = ContentServer(
        tasks=tasks,
        articles=[
            Article("news", "Today's Headlines", price_instructions=800_000),
            Article("longread", "The Long Investigation", price_instructions=2_500_000),
        ],
    )

    session = BrowsingSession.open(budget_instructions=5_000_000, seed=1)
    print("visitor arrives; no ads shown — the server assigns compute tasks")

    try:
        server.redeem(session, "news")
    except PaymentRejected as exc:
        print(f"  before any work: {exc}")

    while True:
        task = server.assign_task()
        label = session.run_task(task)
        print(
            f"  classified image -> class {label}; "
            f"balance {session.balance:,} weighted instructions"
        )
        try:
            article = server.redeem(session, "news")
            print(f"  unlocked: {article}")
            break
        except PaymentRejected:
            continue

    print(f"tasks completed: {session.completed_tasks}")
    print(f"remaining balance: {session.balance:,}")
    print(f"log verifies for the server: {session.sandbox.verify_log()}")


if __name__ == "__main__":
    main()
