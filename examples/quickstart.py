#!/usr/bin/env python3
"""Quickstart: deploy a two-way sandbox and meter a workload.

Walks the full AccTEE protocol on one machine:

1. deploy (launch IE + AE + quoting enclave, provision attestation, attest);
2. submit a MiniC workload (compiled to Wasm, instrumented, evidence-checked);
3. invoke it a few times;
4. verify the signed resource usage log and price it.

Run with::

    python examples/quickstart.py
"""

from repro import SandboxConfig, TwoWaySandbox

WORKLOAD = """
// a toy workload: leibniz series approximation of pi
double approximate_pi(int terms) {
    double total = 0.0;
    double sign = 1.0;
    for (int k = 0; k < terms; k = k + 1) {
        total = total + sign / (double)(2 * k + 1);
        sign = -sign;
    }
    return 4.0 * total;
}
"""


def main() -> None:
    print("deploying the two-way sandbox (attestation included)...")
    sandbox = TwoWaySandbox.deploy(SandboxConfig(level="loop-based"))
    print(f"  AE measurement: {sandbox.ae.mrenclave.hex()[:16]}...")
    print(f"  IE measurement: {sandbox.ie.mrenclave.hex()[:16]}...")

    print("submitting the workload (compile -> instrument -> evidence)...")
    workload = sandbox.submit_minic(WORKLOAD)
    print(f"  evidence output hash: {workload.evidence.output_hash.hex()[:16]}...")

    for terms in (10, 1_000, 100_000 // 50):
        result = workload.invoke("approximate_pi", terms)
        vector = result.vector
        print(
            f"  approximate_pi({terms:>6}) = {result.value:.6f}   "
            f"metered: {vector.weighted_instructions:>8} instructions, "
            f"{vector.peak_memory_bytes // 1024} KiB peak"
        )

    print(f"log verifies: {sandbox.verify_log()}")
    totals = sandbox.totals()
    print(f"totals: {totals.weighted_instructions} weighted instructions")
    print(f"invoice: {sandbox.invoice():.6f} currency units")


if __name__ == "__main__":
    main()
