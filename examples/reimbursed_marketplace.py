#!/usr/bin/env python3
"""Reimbursed computing: a marketplace selling spare cycles (§2.1).

A workload provider posts jobs with escrowed budgets; independent providers
execute them inside attested two-way sandboxes and submit signed receipts;
the marketplace settles from escrow after verifying each receipt — and
rejects a provider who inflates their log.

Run with::

    python examples/reimbursed_marketplace.py
"""

from dataclasses import replace

from repro.core.accounting_enclave import AccountingEnclave
from repro.core.instrumentation_enclave import InstrumentationEnclave
from repro.scenarios.reimbursed import ComputeMarketplace, SettlementError
from repro.workloads import SUBSET_SUM


def trusted_ae_measurement() -> bytes:
    """Both parties audit the AE sources and compute the expected build hash."""
    ie = InstrumentationEnclave()
    ae = AccountingEnclave(
        ie_public_key=ie.evidence_public_key,
        ie_measurement=ie.mrenclave,
        weight_table=ie.weight_table,
    )
    return ae.mrenclave


def main() -> None:
    market = ComputeMarketplace()
    market.register("garage-rig")
    market.register("old-laptop")
    expected_measurement = trusted_ae_measurement()

    print("posting 4 subset-sum jobs at 50 units per mega-instruction...")
    jobs = [
        market.post_job(SUBSET_SUM, (seed, 11, 130), price_per_mega_instruction=50.0)
        for seed in (21, 42, 63, 84)
    ]
    print(f"escrow pool: {market.escrow_pool:,.2f}")

    for i, job in enumerate(jobs[:3]):
        provider = "garage-rig" if i % 2 == 0 else "old-laptop"
        receipt = market.execute(provider, job)
        payout = market.settle(receipt, expected_measurement)
        print(f"  job {job.job_id} on {provider}: result={receipt.value}, paid {payout:.4f}")

    print("a greedy provider inflates the final job's log...")
    receipt = market.execute("old-laptop", jobs[3])
    entry = receipt.log.entries[-1]
    receipt.log.entries[-1] = replace(
        entry,
        vector=replace(entry.vector, weighted_instructions=10**9),
    )
    try:
        market.settle(receipt, expected_measurement)
    except SettlementError as exc:
        print(f"  settlement refused: {exc}")

    print("\nfinal accounts:")
    for name, account in market.accounts.items():
        print(
            f"  {name:<12} balance={account.balance:8.4f} "
            f"jobs={account.completed_jobs} rejected={account.rejected_receipts}"
        )


if __name__ == "__main__":
    main()
