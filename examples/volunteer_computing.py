#!/usr/bin/env python3
"""Volunteer computing: BOINC-style redundancy vs AccTEE's trusted accounting.

Reproduces the paper's §2.1 argument as a runnable comparison: a project
distributes subset-sum work units to a mixed population of volunteers
(honest, credit-inflating, result-forging), first under today's redundant
quorum scheme, then under AccTEE.

Run with::

    python examples/volunteer_computing.py
"""

from repro.scenarios.volunteer import Volunteer, VolunteerProject, WorkUnit
from repro.workloads import SUBSET_SUM


def show(report) -> None:
    print(f"  executions performed : {report.executions}")
    print(f"  work units completed : {report.units_completed}")
    print(f"  wasted tie-breakers  : {report.wasted_executions}")
    print(f"  cheaters detected    : {sorted(set(report.cheaters_detected)) or 'none'}")
    for name, credit in sorted(report.credits.items()):
        print(f"  credit[{name:<8}] = {credit:,.4f}")


def main() -> None:
    units = [WorkUnit(i, SUBSET_SUM, (1000 + i, 11, 140)) for i in range(5)]
    volunteers = [
        Volunteer("alice", speed=1.0),
        Volunteer("bob", speed=3.0),  # a much faster CPU
        Volunteer("mallory", speed=1.0, cheat="credit"),
        Volunteer("eve", speed=1.0, cheat="result"),
    ]
    project = VolunteerProject(volunteers, quorum=2, seed=11)

    print("=== redundant mode (today's BOINC practice) ===")
    print("credit = claimed CPU seconds; every unit runs on a quorum of 2")
    show(project.run_redundant(units))
    print()
    print("=== acctee mode (trusted accounting) ===")
    print("credit = signed weighted-instruction count; every unit runs once")
    show(project.run_acctee(units))
    print()
    print("note how: (1) acctee needs half the executions; (2) mallory's")
    print("inflated claims pass unnoticed under redundancy but her forged")
    print("log is rejected under acctee; (3) bob's faster CPU earns him")
    print("*less* CPU-seconds credit under redundancy but identical")
    print("per-work-unit credit under acctee (platform independence).")
    print()

    print("=== timed simulation: donated CPU time ===")
    from repro.scenarios.volunteer_sim import SimVolunteer, TimedVolunteerProject

    timed = TimedVolunteerProject(
        volunteers=[
            SimVolunteer("alice", speed=1.0),
            SimVolunteer("bob", speed=3.0),
            SimVolunteer("carol", speed=0.7),
        ],
        spec=SUBSET_SUM,
        unit_args=[(seed, 10, 120) for seed in range(8)],
        quorum=2,
    )
    redundant = timed.run_redundant()
    acctee = timed.run_acctee()
    for outcome in (redundant, acctee):
        print(
            f"  {outcome.mode:<10} executions={outcome.executions:2d} "
            f"makespan={outcome.makespan_s * 1000:7.2f} ms "
            f"total CPU={outcome.total_cpu_seconds * 1000:7.2f} ms"
        )
    print(f"  donated-CPU saving with acctee: {timed.savings():.0%}")


if __name__ == "__main__":
    main()
