"""Thin setup.py kept for legacy editable installs (no `wheel` available offline)."""

from setuptools import setup

setup()
