"""AccTEE reproduction: a WebAssembly-based two-way sandbox for trusted resource accounting.

This package reimplements, in pure Python, the full system described in
"AccTEE: A WebAssembly-based Two-way Sandbox for Trusted Resource
Accounting" (MIDDLEWARE 2019): a WebAssembly toolchain (parser, validator,
interpreter, binary codec), a MiniC-to-Wasm compiler, the instruction-counting
instrumentation passes, a software simulation of Intel SGX (enclaves, EPC
paging, attestation), and the AccTEE protocol itself (instrumentation enclave,
accounting enclave, signed resource usage logs), plus the evaluation
scenarios: FaaS, volunteer computing and pay-by-computation.

The top level re-exports the small public surface most users need; the
subpackages expose the substrates.
"""

__all__ = [
    "TwoWaySandbox",
    "SandboxConfig",
    "ResourceUsageLog",
    "ResourceVector",
    "MemoryPolicy",
    "PricingPolicy",
    "InstrumentationLevel",
]

__version__ = "1.0.0"

_EXPORT_HOMES = {
    "TwoWaySandbox": "repro.core.sandbox",
    "SandboxConfig": "repro.core.sandbox",
    "ResourceUsageLog": "repro.core.resource_log",
    "ResourceVector": "repro.core.resource_log",
    "MemoryPolicy": "repro.core.policy",
    "PricingPolicy": "repro.core.policy",
    "InstrumentationLevel": "repro.instrument",
}


def __getattr__(name: str):
    """Lazily resolve the public surface (PEP 562) to keep import light."""
    if name in _EXPORT_HOMES:
        import importlib

        module = importlib.import_module(_EXPORT_HOMES[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
