"""Command-line interface: instrument, run and meter WebAssembly modules.

Usage (also via ``python -m repro``)::

    repro instrument module.wat --level loop-based -o instrumented.wat
    repro run module.wat --invoke fib --args 20
    repro meter module.wat --invoke kernel --deployments
    repro sandbox module.mc --invoke work --args 5

``run`` executes any WAT module and prints the result plus execution stats;
``meter`` prices it across the deployment ladder; ``sandbox`` does the full
AccTEE protocol for a MiniC source file and prints the signed log.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.instrument import instrument_module
from repro.instrument.weights import UNIT_WEIGHTS, cycle_weight_table
from repro.perf.model import Deployment, PerformanceModel, WorkloadRun
from repro.wasm.binary import encode_module
from repro.wasm.interpreter import ENGINES, Instance
from repro.wasm.validate import validate
from repro.wasm.wat_parser import parse_wat
from repro.wasm.wat_printer import print_wat


def _load_module(path: str):
    text = pathlib.Path(path).read_text()
    if path.endswith((".mc", ".minic", ".c")):
        from repro.minic import compile_source

        return compile_source(text)
    module = parse_wat(text)
    validate(module)
    return module


def _parse_args_list(raw: list[str]) -> list:
    out = []
    for item in raw:
        try:
            out.append(int(item, 0))
        except ValueError:
            out.append(float(item))
    return out


def cmd_instrument(args: argparse.Namespace) -> int:
    module = _load_module(args.module)
    weights = cycle_weight_table() if args.weighted else UNIT_WEIGHTS
    result = instrument_module(module, args.level, weights)
    text = print_wat(result.module)
    if args.output:
        pathlib.Path(args.output).write_text(text)
    else:
        sys.stdout.write(text)
    before = len(encode_module(module))
    after = len(encode_module(result.module))
    print(
        f"; level={args.level} counter_global={result.counter_global_index} "
        f"increments={result.increments_emitted} hoisted={result.hoisted_loops} "
        f"size {before} -> {after} bytes (+{100 * (after - before) / before:.1f}%)",
        file=sys.stderr,
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    module = _load_module(args.module)
    instance = Instance(module, engine=args.engine)
    value = instance.invoke(args.invoke, *_parse_args_list(args.args))
    print(f"result: {value}")
    stats = instance.stats
    print(f"instructions executed: {stats.total_visits}")
    print(f"loads/stores: {stats.loads}/{stats.stores}")
    if instance.memory is not None:
        print(f"linear memory: {instance.memory.pages} pages")
    if args.top:
        print("hottest instructions:")
        for name, count in stats.visits.most_common(args.top):
            print(f"  {name:<20} {count}")
    return 0


def cmd_meter(args: argparse.Namespace) -> int:
    module = _load_module(args.module)
    run, value = WorkloadRun.measure(
        module, args.invoke, tuple(_parse_args_list(args.args))
    )
    print(f"result: {value}")
    model = PerformanceModel()
    ratios = model.normalised_runtimes(run)
    for deployment in Deployment:
        report = model.report(run, deployment)
        print(
            f"  {deployment.value:<14} {report.cycles / 1e6:10.3f} Mcycles "
            f"({ratios[deployment]:.2f}x native)"
        )
    return 0


def cmd_sandbox(args: argparse.Namespace) -> int:
    from repro.core.sandbox import SandboxConfig, TwoWaySandbox

    source = pathlib.Path(args.module).read_text()
    sandbox = TwoWaySandbox.deploy(SandboxConfig(level=args.level, weighted=args.weighted))
    if args.module.endswith(".wat"):
        workload = sandbox.submit_wat(source)
    else:
        workload = sandbox.submit_minic(source)
    result = workload.invoke(args.invoke, *_parse_args_list(args.args))
    print(f"result: {result.value}" + ("  (trapped!)" if result.trapped else ""))
    print(f"metered: {result.vector.weighted_instructions} weighted instructions, "
          f"{result.vector.peak_memory_bytes} B peak, "
          f"{result.vector.io_bytes_total} B I/O")
    print(f"log verifies: {sandbox.verify_log()}")
    print(f"invoice: {sandbox.invoice():.6f}")
    if args.export_log:
        from repro.core.serialization import dump_log

        dump_log(sandbox.log, sandbox.ae.log_public_key, args.export_log)
        print(f"log exported to {args.export_log}")
    return 0


def cmd_verify_log(args: argparse.Namespace) -> int:
    from repro.core.serialization import public_key_from_json, verify_log_file

    key = None
    if args.key:
        import json

        key = public_key_from_json(json.loads(pathlib.Path(args.key).read_text()))
    ok, totals = verify_log_file(args.log, public_key=key)
    print(f"log verifies: {ok}")
    print(f"totals: {totals.weighted_instructions} weighted instructions, "
          f"{totals.io_bytes_total} B I/O, peak {totals.peak_memory_bytes} B")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AccTEE reproduction: instrument, run and meter Wasm modules",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("instrument", help="inject the weighted instruction counter")
    p.add_argument("module", help="a .wat file (or .mc MiniC source)")
    p.add_argument("--level", default="loop-based",
                   choices=["naive", "flow-based", "loop-based"])
    p.add_argument("--weighted", action="store_true",
                   help="use the cycle-calibrated weight table")
    p.add_argument("-o", "--output", help="write instrumented WAT here")
    p.set_defaults(fn=cmd_instrument)

    p = sub.add_parser("run", help="execute an exported function")
    p.add_argument("module")
    p.add_argument("--invoke", required=True)
    p.add_argument("--args", nargs="*", default=[])
    p.add_argument("--top", type=int, default=0, help="show N hottest instructions")
    p.add_argument("--engine", choices=ENGINES, default=None,
                   help="execution engine (default: pre-decoded threaded dispatch)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("meter", help="price a run across the deployment ladder")
    p.add_argument("module")
    p.add_argument("--invoke", required=True)
    p.add_argument("--args", nargs="*", default=[])
    p.set_defaults(fn=cmd_meter)

    p = sub.add_parser("sandbox", help="full AccTEE protocol for one workload")
    p.add_argument("module", help="MiniC (.mc) or WAT (.wat) source")
    p.add_argument("--invoke", required=True)
    p.add_argument("--args", nargs="*", default=[])
    p.add_argument("--level", default="loop-based",
                   choices=["naive", "flow-based", "loop-based"])
    p.add_argument("--weighted", action="store_true")
    p.add_argument("--export-log", help="dump the signed resource log to this JSON file")
    p.set_defaults(fn=cmd_sandbox)

    p = sub.add_parser("verify-log", help="offline verification of an exported log")
    p.add_argument("log", help="JSON file produced by 'sandbox --export-log'")
    p.add_argument("--key", help="JSON public key to pin (else the bundled key)")
    p.set_defaults(fn=cmd_verify_log)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
