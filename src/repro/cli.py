"""Command-line interface: instrument, run, meter and serve Wasm modules.

Usage (also via ``python -m repro``)::

    repro instrument module.wat --level loop-based -o instrumented.wat
    repro run module.wat --invoke fib --args 20
    repro snapshot module.wat --invoke fib --args 30 --at 100000 --out fib.snap
    repro resume fib.snap module.wat --engine compile
    repro meter module.wat --invoke kernel --deployments
    repro sandbox module.mc --invoke work --args 5
    repro serve --workers 4 --requests 60
    repro loadtest --workers 1,2,4 --out BENCH_service.json
    repro trace atax --out trace.json
    repro metrics --requests 12
    repro run module.wat --invoke fib --args 20 --profile
    repro top --duration 10 --interval 1
    repro loadtest --events-out events.jsonl --slo examples/slo_rules.json
    repro alerts --rules examples/slo_rules.json --replay events.jsonl

``run`` executes any WAT module and prints the result plus execution stats;
``meter`` prices it across the deployment ladder; ``sandbox`` does the full
AccTEE protocol for a MiniC source file and prints the signed log;
``serve`` drives the multi-tenant metering gateway over a synthetic tenant
mix; ``loadtest`` sweeps gateway worker counts and emits throughput/latency
percentiles as JSON.

Observability: ``trace`` records one traced workload run and writes Chrome
``trace_event`` JSON (open in Perfetto / ``about:tracing``); ``metrics``
drives a short gateway mix and dumps the OpenMetrics text exposition (or
checks the metric-name contract with ``--check-contract``); ``--profile``
on ``run``/``sandbox`` prints a hot-function report and can write a
flamegraph collapsed-stack file.

Telemetry pipeline: ``top`` renders a live rolling-window dashboard over the
structured event stream while driving a gateway mix; ``loadtest
--events-out`` records the stream to JSONL, ``--slo RULES.json`` evaluates
declarative threshold/burn-rate rules plus the per-tenant billing-drift
audit (non-zero exit on a page-severity alert or billing drift); ``alerts``
re-evaluates any rule file offline against a recorded stream.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.instrument import instrument_module
from repro.instrument.weights import UNIT_WEIGHTS, cycle_weight_table
from repro.perf.model import Deployment, PerformanceModel, WorkloadRun
from repro.wasm.binary import encode_module
from repro.wasm.interpreter import ENGINES, ExecutionLimits, Instance
from repro.wasm.validate import validate
from repro.wasm.wat_parser import parse_wat
from repro.wasm.wat_printer import print_wat


def _load_module(path: str):
    text = pathlib.Path(path).read_text()
    if path.endswith((".mc", ".minic", ".c")):
        from repro.minic import compile_source

        return compile_source(text)
    module = parse_wat(text)
    validate(module)
    return module


def _parse_args_list(raw: list[str]) -> list:
    out = []
    for item in raw:
        try:
            out.append(int(item, 0))
        except ValueError:
            out.append(float(item))
    return out


def cmd_instrument(args: argparse.Namespace) -> int:
    module = _load_module(args.module)
    weights = cycle_weight_table() if args.weighted else UNIT_WEIGHTS
    result = instrument_module(module, args.level, weights)
    text = print_wat(result.module)
    if args.output:
        pathlib.Path(args.output).write_text(text)
    else:
        sys.stdout.write(text)
    before = len(encode_module(module))
    after = len(encode_module(result.module))
    print(
        f"; level={args.level} counter_global={result.counter_global_index} "
        f"increments={result.increments_emitted} hoisted={result.hoisted_loops} "
        f"size {before} -> {after} bytes (+{100 * (after - before) / before:.1f}%)",
        file=sys.stderr,
    )
    return 0


def _profiled(enabled: bool):
    """Context manager yielding an active profiler (or None)."""
    from contextlib import contextmanager

    from repro.obs.profiler import disable_profiling, enable_profiling

    @contextmanager
    def _cm():
        if not enabled:
            yield None
            return
        prof = enable_profiling()
        try:
            yield prof
        finally:
            disable_profiling()

    return _cm()


def _emit_profile(prof, args: argparse.Namespace) -> None:
    print(prof.report(args.profile_top))
    if args.profile_out:
        pathlib.Path(args.profile_out).write_text(prof.collapsed_stacks())
        print(f"collapsed stacks written to {args.profile_out} "
              "(feed to flamegraph.pl / speedscope)")


def cmd_run(args: argparse.Namespace) -> int:
    module = _load_module(args.module)
    instance = Instance(module, engine=args.engine)
    with _profiled(args.profile) as prof:
        value = instance.invoke(args.invoke, *_parse_args_list(args.args))
    print(f"result: {value}")
    stats = instance.stats
    print(f"instructions executed: {stats.total_visits}")
    print(f"loads/stores: {stats.loads}/{stats.stores}")
    if instance.memory is not None:
        print(f"linear memory: {instance.memory.pages} pages")
    if args.top:
        print("hottest instructions:")
        for name, count in stats.visits.most_common(args.top):
            print(f"  {name:<20} {count}")
    if prof is not None:
        _emit_profile(prof, args)
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Run an export, suspending into a portable snapshot file."""
    from repro.wasm.snapshot import SnapshotCaptured, encode_snapshot

    module = _load_module(args.module)
    instance = Instance(
        module,
        engine=args.engine,
        limits=ExecutionLimits(snapshot_at=args.at),
    )
    try:
        value = instance.invoke(args.invoke, *_parse_args_list(args.args))
    except SnapshotCaptured as exc:
        snap = exc.snapshot
        blob = encode_snapshot(snap)
        pathlib.Path(args.out).write_bytes(blob)
        print(
            f"captured at {snap.executed} executed instructions "
            f"({len(snap.frames)} frame(s), {len(blob)} bytes) -> {args.out}"
        )
        print(f"snapshot hash: {snap.hash().hex()}")
        print(f"resume with: repro resume {args.out} {args.module}")
        return 0
    print(f"run finished before instruction {args.at}: result {value}")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    """Resume a snapshot file under any engine; optionally re-snapshot."""
    from repro.wasm.snapshot import (
        SnapshotCaptured,
        decode_snapshot,
        encode_snapshot,
        restore_instance,
        resume_invoke,
    )

    snap = decode_snapshot(pathlib.Path(args.snapshot).read_bytes())
    module = _load_module(args.module)
    limits = ExecutionLimits(
        snapshot_at=snap.executed + args.at if args.at is not None else None
    )
    instance = restore_instance(snap, module, engine=args.engine, limits=limits)
    print(
        f"resuming at {snap.executed} executed instructions "
        f"({len(snap.frames)} frame(s), engine snapshotted under "
        f"{snap.engine or 'default'})"
    )
    try:
        value = resume_invoke(instance, snap)
    except SnapshotCaptured as exc:
        out = args.out or args.snapshot
        blob = encode_snapshot(exc.snapshot)
        pathlib.Path(out).write_bytes(blob)
        print(
            f"re-captured at {exc.snapshot.executed} executed instructions "
            f"({len(blob)} bytes) -> {out}"
        )
        return 0
    stats = instance.stats
    print(f"result: {value}")
    print(f"instructions executed: {stats.total_visits}")
    print(f"loads/stores: {stats.loads}/{stats.stores}")
    if instance.memory is not None:
        print(f"linear memory: {instance.memory.pages} pages")
    return 0


def cmd_meter(args: argparse.Namespace) -> int:
    module = _load_module(args.module)
    run, value = WorkloadRun.measure(
        module, args.invoke, tuple(_parse_args_list(args.args))
    )
    print(f"result: {value}")
    model = PerformanceModel()
    ratios = model.normalised_runtimes(run)
    for deployment in Deployment:
        report = model.report(run, deployment)
        print(
            f"  {deployment.value:<14} {report.cycles / 1e6:10.3f} Mcycles "
            f"({ratios[deployment]:.2f}x native)"
        )
    return 0


def cmd_sandbox(args: argparse.Namespace) -> int:
    from repro.core.sandbox import SandboxConfig, TwoWaySandbox

    source = pathlib.Path(args.module).read_text()
    sandbox = TwoWaySandbox.deploy(SandboxConfig(level=args.level, weighted=args.weighted))
    if args.module.endswith(".wat"):
        workload = sandbox.submit_wat(source)
    else:
        workload = sandbox.submit_minic(source)
    with _profiled(args.profile) as prof:
        result = workload.invoke(args.invoke, *_parse_args_list(args.args))
    print(f"result: {result.value}" + ("  (trapped!)" if result.trapped else ""))
    print(f"metered: {result.vector.weighted_instructions} weighted instructions, "
          f"{result.vector.peak_memory_bytes} B peak, "
          f"{result.vector.io_bytes_total} B I/O")
    cache = sandbox.cache.stats()
    print(f"instrumentation cache: {cache['hits']} hits, {cache['misses']} misses")
    print(f"log verifies: {sandbox.verify_log()}")
    print(f"invoice: {sandbox.invoice():.6f}")
    if prof is not None:
        _emit_profile(prof, args)
    if args.export_log:
        from repro.core.serialization import dump_log

        dump_log(sandbox.log, sandbox.ae.log_public_key, args.export_log)
        print(f"log exported to {args.export_log}")
    return 0


def cmd_verify_log(args: argparse.Namespace) -> int:
    import json

    from repro.core.serialization import public_key_from_json, verify_log_file

    key = None
    if args.key:
        key = public_key_from_json(json.loads(pathlib.Path(args.key).read_text()))
    ok, totals = verify_log_file(args.log, public_key=key)
    if args.json:
        with open(args.log) as handle:
            entries = len(json.load(handle)["entries"])
        print(json.dumps(
            {"ok": ok, "entries": entries, "totals": totals.to_json()}, indent=2
        ))
        return 0 if ok else 1
    print(f"log verifies: {ok}")
    print(f"totals: {totals.weighted_instructions} weighted instructions, "
          f"{totals.io_bytes_total} B I/O, peak {totals.peak_memory_bytes} B")
    return 0 if ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Drive the metering gateway over a synthetic multi-tenant mix."""
    from repro.core.sandbox import SandboxConfig
    from repro.service import AdmissionError, MeteringGateway, TenantQuota
    from repro.service.backends import SimulatedFaaSBackend
    from repro.service.gateway import polybench_tenant_mix

    kernels = tuple(args.kernels.split(",")) if args.kernels else ()
    mix = polybench_tenant_mix(kernels)
    backend = None
    if args.backend == "modeled":
        backend = SimulatedFaaSBackend(workers=args.workers, time_scale=args.time_scale)
    config = SandboxConfig(engine=args.engine)
    with MeteringGateway(
        workers=args.workers, pool=args.pool, config=config, backend=backend
    ) as gw:
        quota = TenantQuota(
            max_queue_depth=args.queue_depth,
            requests_per_second=args.rate_limit,
            burst=max(1, args.queue_depth or 1),
        )
        for tenant_id, module, _run in mix:
            gw.register_tenant(tenant_id, module=module, quota=quota)
        print(f"serving {args.requests} requests across {len(mix)} tenants "
              f"on backend {gw.backend.kind}")
        futures = []
        rejected = 0
        for i in range(args.requests):
            tenant_id, _module, (export, fn_args) = mix[i % len(mix)]
            try:
                futures.append(gw.submit(tenant_id, export, *fn_args))
            except AdmissionError as exc:
                rejected += 1
                hint = f" retry after {exc.retry_after_s:.3f}s" if exc.retry_after_s else ""
                print(f"  rejected [{exc.code}] {tenant_id}:{hint}")
        responses = [f.result() for f in futures]
        seal = gw.seal_epoch()
        verdict = gw.verify_epoch(seal)
        print(f"served {len(responses)} requests, rejected {rejected}")
        for tenant_id, _module, _run in mix:
            totals = gw.totals(tenant_id)
            print(f"  {tenant_id:<20} {len(gw.ledger.receipts(tenant_id)):>4} receipts  "
                  f"{totals.weighted_instructions:>12} weighted instructions")
        print(f"epoch {seal.epoch} sealed: root {seal.merkle_root.hex()[:16]}… "
              f"over {len(seal.spans)} tenant chains")
        print(f"epoch verifies offline: {verdict.ok} "
              f"({verdict.receipts_checked} receipts checked)")
        cache = gw.cache.stats()
        print(f"instrumentation cache: {cache['hits']} hits, {cache['misses']} misses")
    return 0 if verdict.ok else 1


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Sweep gateway worker counts; write BENCH_service.json."""
    import json

    from repro.service.gateway import run_loadtest

    worker_counts = tuple(int(w) for w in args.workers.split(","))
    kernels = tuple(args.kernels.split(",")) if args.kernels else ()
    seal_window = args.seal_window if args.seal_window > 0 else None
    backends = ("wasm", "modeled") if args.backend == "both" else (args.backend,)
    if args.preempt or args.warm:
        # preemption/warm pools execute for real; the modeled backend cannot
        backends = tuple(b for b in backends if b != "modeled") or ("wasm",)
    registry = None
    if args.metrics_out:
        from repro.obs import enable_metrics, get_registry

        registry = get_registry()
        registry.reset()
        enable_metrics()
    sweeps = {}
    ok = True
    chaos = bool(args.faults)
    for backend in backends:
        events_out = args.events_out
        if events_out and len(backends) > 1:
            # one stream per backend rather than the second overwriting the first
            stem = pathlib.Path(events_out)
            events_out = str(stem.with_name(f"{stem.stem}.{backend}{stem.suffix}"))
        trace_out = args.trace_out
        if trace_out and len(backends) > 1:
            stem = pathlib.Path(trace_out)
            trace_out = str(stem.with_name(f"{stem.stem}.{backend}{stem.suffix}"))
        result = run_loadtest(
            worker_counts=worker_counts,
            requests=args.requests,
            pool=args.pool,
            engine=args.engine,
            kernels=kernels,
            tenants=args.tenants or None,
            backend=backend,
            time_scale=args.time_scale,
            verify_serial=not args.no_serial,
            faults=args.faults or None,
            fault_seed=args.fault_seed,
            deadline_s=args.deadline,
            hang_s=args.hang_s,
            events_out=events_out,
            slo_rules=args.slo,
            validate_results=not args.no_validate,
            preempt_after=args.preempt or None,
            warm_pool=args.warm,
            trace_out=trace_out,
            seal_window=seal_window,
        )
        sweeps[backend] = result
        for point in result["sweep"]:
            latency = point["latency_s"]
            print(f"[{backend}] workers={point['workers']}: "
                  f"{point['throughput_rps']:8.1f} req/s  "
                  f"p50={latency['p50'] * 1000:.1f}ms p95={latency['p95'] * 1000:.1f}ms "
                  f"p99={latency['p99'] * 1000:.1f}ms  epoch_ok={point['epoch_ok']}")
            ok = ok and point["epoch_ok"]
            if not point["epoch_ok"]:
                for error in point["epoch_errors"]:
                    print(f"[{backend}] workers={point['workers']}: "
                          f"epoch audit error: {error}", file=sys.stderr)
            if point["quota_rejection"]:
                print(f"         over-quota probe rejected: "
                      f"[{point['quota_rejection']['code']}]")
            if "preemption" in point:
                pre = point["preemption"]
                detail = f"every {pre['preempt_after']} instructions" \
                    if pre["preempt_after"] else "off"
                if pre["warm_pool"]:
                    detail += ", warm pool"
                print(f"         preemption: {pre['preemptions']} slices "
                      f"({detail})")
            if chaos:
                faults = point["faults"]
                billing = point["billing"]
                injected = ",".join(
                    f"{kind}:{n}" for kind, n in sorted(faults["faults_injected"].items())
                ) or "none"
                print(f"         chaos: injected {injected}  "
                      f"retries={faults['retries']} "
                      f"deadline_exceeded={faults['deadline_exceeded']} "
                      f"rejected_results={faults['results_rejected']} "
                      f"pool_rebuilds={faults['pool_rebuilds']}")
                print(f"         billing exactly-once: {billing['exactly_once']} "
                      f"(receipts={billing['receipts']} "
                      f"distinct_billed={billing['distinct_requests_billed']} "
                      f"ok_responses={billing['ok_responses']})")
                ok = ok and billing["exactly_once"]
        if "speedup_4_over_1" in result:
            gate = result.get("speedup_gate", {})
            advisory = " (advisory: fewer cores than workers)" if gate.get("advisory") else ""
            print(f"[{backend}] speedup 4 workers over 1: "
                  f"{result['speedup_4_over_1']:.2f}x{advisory}")
        sigs = result["sweep"][-1].get("signatures") if result["sweep"] else None
        if sigs is not None:
            mode = (f"batched (window {seal_window})" if seal_window
                    else "per-receipt")
            print(f"[{backend}] AE signatures: {mode} — "
                  f"{sigs['per_receipt']} per-receipt + {sigs['batch_seals']} "
                  f"batch seals over {sigs['receipts']} receipts "
                  f"({sigs['per_request']:.2f} sigs/receipt)")
        if not args.no_serial and not chaos:
            print(f"[{backend}] totals byte-identical to serial sandbox: "
                  f"{result['serial_totals_match']}")
            ok = ok and result["serial_totals_match"]
        telemetry = result.get("telemetry")
        if telemetry is not None:
            drift_ok = telemetry["drift_ok"]
            print(f"[{backend}] billing drift audit: "
                  f"{'clean' if drift_ok else 'DRIFT DETECTED'}")
            if not drift_ok:
                for point in result["sweep"]:
                    for finding in point.get("drift", {}).get("findings", []):
                        if finding["severity"] == "error":
                            print(f"[{backend}] drift [{finding['code']}] "
                                  f"{finding['tenant']}: {finding['detail']}",
                                  file=sys.stderr)
            slo = telemetry.get("slo")
            if slo is not None:
                for alert in slo["alerts"]:
                    print(f"[{backend}] alert [{alert['severity']}] "
                          f"{alert['rule']}: {alert['detail']}")
                print(f"[{backend}] SLO gate: "
                      f"{'FAIL' if slo['gating'] else 'pass'} "
                      f"(worst={slo['worst_severity']})")
            if telemetry.get("events_path"):
                dropped = telemetry["events"]["dropped"]
                print(f"[{backend}] {telemetry['events']['buffered']} events "
                      f"written to {telemetry['events_path']}"
                      + (f" ({dropped} dropped)" if dropped else ""))
            ok = ok and telemetry["ok"]
        if "trace_ok" in result:
            for point in result["sweep"]:
                stitch = point.get("trace")
                if stitch is None:
                    continue
                pids = ",".join(str(p) for p in stitch["worker_pids"]) or "-"
                print(f"[{backend}] workers={point['workers']}: stitched traces "
                      f"{stitch['stitched']}/{stitch['requests_checked']} "
                      f"(worker pids: {pids})")
            print(f"[{backend}] stitched trace written to {result['trace_out']}  "
                  f"trace_ok={result['trace_ok']}")
            ok = ok and result["trace_ok"]
    report = {
        "benchmark": "metering-gateway-loadtest",
        "cores_available": sweeps[backends[0]]["cores_available"],
        "worker_counts": list(worker_counts),
        "requests_per_point": args.requests,
        "seal_window": seal_window,
        "speedup_gate": sweeps[backends[0]].get("speedup_gate"),
        "speedup_4_over_1": {
            backend: sweeps[backend].get("speedup_4_over_1")
            for backend in backends
        },
        "sweeps": sweeps,
    }
    out_path = pathlib.Path(args.out)
    if out_path.exists():
        # the bench file may carry a perf-history trajectory (--bench-append);
        # rewriting the latest report must not wipe it
        try:
            previous = json.loads(out_path.read_text())
        except ValueError:
            previous = {}
        for key in ("trajectory", "trajectory_schema"):
            if key in previous:
                report[key] = previous[key]
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.slo_out:
        slo_report = {
            backend: sweeps[backend].get("telemetry") for backend in backends
        }
        pathlib.Path(args.slo_out).write_text(json.dumps(slo_report, indent=2) + "\n")
        print(f"SLO/drift report written to {args.slo_out}")
    if args.bench_append:
        from repro.obs.bench import append_point, distill_point

        for backend in backends:
            append_point(args.bench_append, distill_point(sweeps[backend]))
        print(f"appended {len(backends)} trajectory point(s) to {args.bench_append}")
    if registry is not None:
        from repro.obs import disable_metrics

        disable_metrics()
        metrics_path = pathlib.Path(args.metrics_out)
        merged = {}
        if metrics_path.exists():
            try:
                merged = json.loads(metrics_path.read_text())
            except ValueError:
                merged = {}
        merged["loadtest_metrics"] = registry.snapshot()
        metrics_path.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"metrics snapshot merged into {args.metrics_out}")
    return 0 if ok else 1


def cmd_soak(args: argparse.Namespace) -> int:
    """Control-plane scale soak: sweep tenant decades, gate the curve flat."""
    import json

    from repro.obs.soak import run_scale_soak

    counts = tuple(int(c) for c in args.tenants.split(","))
    result = run_scale_soak(
        tenant_counts=counts,
        requests=args.requests,
        tenant_budget=args.budget,
        top_k=args.top_k,
        max_resident=args.max_resident,
        max_overhead_ratio=args.max_overhead_ratio,
        rss_ceiling_mb=args.rss_ceiling_mb,
        isolate=not args.no_isolate,
    )
    for point in result["points"]:
        print(
            f"tenants={point['tenants']:>9}: "
            f"{point['per_request_us']:6.1f}us/req "
            f"(norm {point['per_request_us_norm']:6.1f}us)  "
            f"rss={point['rss_mb']:6.1f}MB  "
            f"overflow={point['overflow_ratio']:.2f}  "
            f"resident={point['structures']['admission_resident']}  "
            f"tracked={point['structures']['rollup_tracked']}"
        )
    gates = result["gates"]
    print(
        f"overhead ratio (largest/smallest, drift-normalised): "
        f"{gates['overhead_ratio']:.3f} (gate {gates['max_overhead_ratio']})"
    )
    print(
        f"gates: overhead={'ok' if gates['overhead_ok'] else 'FAIL'} "
        f"bounded={'ok' if gates['bounded_ok'] else 'FAIL'} "
        f"top-recovered={'ok' if gates['top_recovered_ok'] else 'FAIL'} "
        f"rss={'ok' if gates['rss_ok'] else 'FAIL'}"
    )
    pathlib.Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if result["ok"] else 1


#: ``repro top --sort`` column -> (row key, descending?) for the tenant table.
_TOP_SORT_COLUMNS = {
    "events": ("events", True),
    "tenant": ("tenant", False),
    "error": ("error", True),
}


def _tenant_table_lines(
    agg, top_k: int, sort: str, plain: bool, reserved_lines: int
) -> list[str]:
    """The per-tenant table for one ``repro top`` frame.

    At scale the aggregator governs tenant cardinality, but even the
    governed top-K can outrun a terminal; rows are sorted by the chosen
    column and truncated to the terminal height (skipped under ``--plain``,
    where frames go to pipes), and tenants beyond the visible rows are
    summarised in a ``(+N more tenants)`` footer so nothing silently
    disappears.
    """
    import shutil

    rows = agg.top_tenants(top_k)
    spill = agg.tenant_spill_info()
    key, descending = _TOP_SORT_COLUMNS[sort]
    rows.sort(key=lambda row: row[key], reverse=descending)
    lines = [
        f"  top tenants by {sort} "
        f"({spill['tracked']} exact series, ~{spill['cardinality']} seen):"
    ]
    if not rows:
        lines.append("    (no tenant traffic yet)")
        return lines
    body = []
    for row in rows:
        accuracy = "exact" if row["exact"] else f"±{row['error']}"
        body.append(f"    {row['tenant']:<28} {row['events']:>10}  {accuracy}")
    hidden = 0
    if not plain:
        height = shutil.get_terminal_size((80, 24)).lines
        room = max(3, height - reserved_lines - len(lines) - 1)
        if len(body) > room:
            hidden = len(body) - room
            body = body[:room]
    more = max(hidden, spill["cardinality"] - len(body))
    if more > 0:
        body.append(f"    (+{more} more tenants)")
    return lines + body


def _render_top_frame(
    agg,
    engine,
    log,
    window_s: float,
    plain: bool,
    failures: dict | None = None,
    top_k: int = 10,
    sort: str = "events",
) -> None:
    snapshot = agg.snapshot(window_s)
    stats = log.stats()
    lines = []
    lines.append(
        f"repro top — trailing {window_s:g}s window   "
        f"(events: {stats['emitted']} emitted, {stats['dropped']} dropped)"
    )
    latency = snapshot["latency_s"]
    lines.append(
        f"  throughput {snapshot['throughput_rps']:8.1f} req/s   "
        f"p50 {latency['p50'] * 1000:7.1f}ms  p95 {latency['p95'] * 1000:7.1f}ms  "
        f"p99 {latency['p99'] * 1000:7.1f}ms"
    )
    if failures is not None:
        total = sum(failures.values())
        if total:
            detail = "  ".join(
                f"{code}={count}" for code, count in sorted(failures.items())
            )
            lines.append(f"  failures: {total} ({detail})")
        else:
            lines.append("  failures: none")
    lines.append("  events in window:")
    for key, count in snapshot["counts"].items():
        lines.append(f"    {key:<40} {count:>8}")
    tail = []
    if engine is not None:
        firing = engine.firing
        if firing:
            tail.append("  ALERTS FIRING:")
            for alert in firing:
                tail.append(f"    [{alert.severity:>8}] {alert.rule}: {alert.detail}")
        else:
            tail.append(f"  alerts: none firing ({len(engine.rules)} rules armed)")
    lines.extend(
        _tenant_table_lines(
            agg, top_k, sort, plain, reserved_lines=len(lines) + len(tail)
        )
    )
    lines.extend(tail)
    if not plain:
        sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
    print("\n".join(lines), flush=True)


def cmd_top(args: argparse.Namespace) -> int:
    """Live rolling-window dashboard while driving a gateway mix."""
    import threading
    import time

    from repro.core.sandbox import SandboxConfig
    from repro.obs.events import EventLog, disable_events, enable_events
    from repro.obs.rollup import RollingAggregator
    from repro.service import MeteringGateway
    from repro.service.gateway import polybench_tenant_mix

    agg = RollingAggregator(slice_s=0.5, slices=240)
    log = enable_events(EventLog())
    log.subscribe(agg.observe)
    engine = None
    if args.rules:
        from repro.obs.slo import SLOEngine, load_rules

        engine = SLOEngine(load_rules(args.rules))
    kernels = tuple(args.kernels.split(",")) if args.kernels else ()
    mix = polybench_tenant_mix(kernels, tenants=args.tenants or None)
    stop = threading.Event()
    # submit failures must not vanish: the driver counts them by failure
    # code and the dashboard surfaces the tally every frame
    failures: dict[str, int] = {}
    failures_lock = threading.Lock()

    def note_failure(exc: BaseException) -> None:
        code = getattr(exc, "code", None) or type(exc).__name__
        with failures_lock:
            failures[code] = failures.get(code, 0) + 1

    def drive() -> None:
        backend = None
        if args.backend == "modeled":
            from repro.service.backends import SimulatedFaaSBackend

            backend = SimulatedFaaSBackend(
                workers=args.workers, time_scale=args.time_scale
            )
        with MeteringGateway(
            workers=args.workers, pool="thread",
            config=SandboxConfig(), backend=backend,
        ) as gw:
            for tenant_id, module, _run in mix:
                gw.register_tenant(tenant_id, module=module)
            outstanding: list = []
            i = 0
            while not stop.is_set():
                tenant_id, _module, (export, fn_args) = mix[i % len(mix)]
                try:
                    outstanding.append(gw.submit(tenant_id, export, *fn_args))
                except Exception as exc:  # over quota, unknown tenant, ...
                    note_failure(exc)
                i += 1
                while len(outstanding) >= max(2, args.workers * 4):
                    done = outstanding.pop(0)
                    try:
                        done.result()
                    except Exception as exc:
                        note_failure(exc)
            for future in outstanding:
                try:
                    future.result(timeout=30)
                except Exception as exc:
                    note_failure(exc)
            gw.seal_epoch()
            gw.verify_epoch()

    driver = threading.Thread(target=drive, daemon=True)
    driver.start()
    deadline = time.monotonic() + args.duration
    try:
        while time.monotonic() < deadline:
            time.sleep(args.interval)
            if engine is not None:
                engine.evaluate(agg)
            with failures_lock:
                frame_failures = dict(failures)
            _render_top_frame(
                agg, engine, log, args.window, args.plain,
                failures=frame_failures, top_k=args.top_k, sort=args.sort,
            )
    finally:
        stop.set()
        driver.join(timeout=60)
        disable_events()
    if engine is not None:
        engine.evaluate(agg)
    with failures_lock:
        frame_failures = dict(failures)
    _render_top_frame(
        agg, engine, log, args.window, plain=True,
        failures=frame_failures, top_k=args.top_k, sort=args.sort,
    )
    if args.events_out:
        meta = log.write_jsonl(args.events_out)
        print(f"{meta['buffered']} events written to {args.events_out}")
    return 0


def cmd_alerts(args: argparse.Namespace) -> int:
    """Evaluate an SLO rule file offline against a recorded event stream."""
    import json

    from repro.obs.events import read_jsonl
    from repro.obs.slo import load_rules, replay

    rules = load_rules(args.rules)
    meta, events = read_jsonl(args.replay)
    engine, _agg = replay(events, rules, eval_every_s=args.eval_every)
    report = engine.report()
    if args.json:
        print(json.dumps({"meta": meta, **report}, indent=2))
        return 1 if report["gating"] else 0
    dropped = meta.get("dropped", 0)
    print(f"{len(events)} events replayed "
          f"({dropped} dropped at capture); {len(rules)} rules")
    for alert in report["alerts"]:
        print(f"  [{alert['severity']:>8}] {alert['rule']}: {alert['detail']}  "
              f"(value={alert['value']:.4f} at t={alert['at_s']:.1f}s)")
    if not report["alerts"]:
        print("  no alerts fired")
    for cleared in report["cleared"]:
        print(f"  cleared: {cleared['rule']} after "
              f"{cleared['cleared_at_s'] - cleared['fired_at_s']:.1f}s")
    print(f"worst severity: {report['worst_severity']}   "
          f"gate: {'FAIL' if report['gating'] else 'pass'}")
    return 1 if report["gating"] else 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Reconstruct one request's causal story from a recorded event stream."""
    import json

    from repro.obs.context import explain_request
    from repro.obs.events import read_jsonl

    _meta, events = read_jsonl(args.events)
    report = explain_request(events, args.request_id, gateway=args.gateway)
    if args.json:
        print(json.dumps(report, indent=2, default=str))
        return 0 if report["found"] else 1
    for line in report["story"]:
        print(line)
    if report["found"]:
        trace_id = report.get("trace_id")
        if trace_id:
            print(f"trace_id: {trace_id}")
        receipts = report["receipts"]
        linked = [r for r in receipts if r.get("trace_id") == trace_id]
        print(f"receipts: {len(receipts)} "
              f"({len(linked)} carrying the trace id, "
              f"{len(report['checkpoints'])} checkpoint(s))")
    return 0 if report["found"] else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one workload through the two-way sandbox with tracing enabled."""
    from repro.core.sandbox import SandboxConfig, TwoWaySandbox
    from repro.obs.trace import disable_tracing, enable_tracing
    from repro.workloads import POLYBENCH_KERNELS

    if args.workload in POLYBENCH_KERNELS:
        spec = POLYBENCH_KERNELS[args.workload]
        module = spec.compile().clone()
        export, call_args = spec.run
    else:
        module = _load_module(args.workload)
        if not args.invoke:
            print("--invoke is required for file workloads", file=sys.stderr)
            return 2
        export, call_args = args.invoke, tuple(_parse_args_list(args.args))

    tracer = enable_tracing()
    try:
        sandbox = TwoWaySandbox.deploy(SandboxConfig(engine=args.engine))
        workload = sandbox.submit_module(module)
        result = workload.invoke(export, *call_args)
    finally:
        disable_tracing()
    tracer.write_chrome_trace(args.out)

    spans = tracer.finished()
    print(f"result: {result.value}" + ("  (trapped!)" if result.trapped else ""))
    print(f"{len(spans)} spans captured; Chrome trace written to {args.out}")
    print("open it at https://ui.perfetto.dev or chrome://tracing")
    for s in sorted(spans, key=lambda s: s.duration_ns, reverse=True)[:args.top]:
        print(f"  {s.name:<26} {s.duration_ns / 1e6:10.3f} ms  "
              f"span={s.span_id} parent={s.parent_id}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Drive a short gateway mix with metrics on; dump the exposition."""
    import json

    from repro.obs import disable_metrics, enable_metrics, get_registry
    from repro.obs.instruments import check_contract

    if args.check_contract:
        problems = check_contract()
        for problem in problems:
            print(problem, file=sys.stderr)
        if problems:
            return 1
        print("metric-name contract OK")
        return 0

    from repro.service.gateway import run_loadtest

    kernels = tuple(args.kernels.split(",")) if args.kernels else ("trisolv", "atax")
    registry = get_registry()
    registry.reset()
    enable_metrics()
    try:
        run_loadtest(
            worker_counts=(args.workers,),
            requests=args.requests,
            pool="thread",
            kernels=kernels,
            backend="wasm",
            verify_serial=False,
        )
    finally:
        disable_metrics()
    output = (
        json.dumps(registry.snapshot(), indent=2) + "\n"
        if args.json
        else registry.render_openmetrics()
    )
    if args.out:
        pathlib.Path(args.out).write_text(output)
        print(f"metrics written to {args.out}")
    else:
        sys.stdout.write(output)
    return 0


def _add_profile_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--profile", action="store_true",
                   help="attribute execution to Wasm functions and hot segments")
    p.add_argument("--profile-top", type=int, default=10,
                   help="rows in the hot-function report")
    p.add_argument("--profile-out",
                   help="write flamegraph collapsed stacks to this file")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AccTEE reproduction: instrument, run and meter Wasm modules",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("instrument", help="inject the weighted instruction counter")
    p.add_argument("module", help="a .wat file (or .mc MiniC source)")
    p.add_argument("--level", default="loop-based",
                   choices=["naive", "flow-based", "loop-based"])
    p.add_argument("--weighted", action="store_true",
                   help="use the cycle-calibrated weight table")
    p.add_argument("-o", "--output", help="write instrumented WAT here")
    p.set_defaults(fn=cmd_instrument)

    p = sub.add_parser("run", help="execute an exported function")
    p.add_argument("module")
    p.add_argument("--invoke", required=True)
    p.add_argument("--args", nargs="*", default=[])
    p.add_argument("--top", type=int, default=0, help="show N hottest instructions")
    p.add_argument("--engine", choices=ENGINES, default=None,
                   help="execution engine (default: pre-decoded threaded dispatch)")
    _add_profile_args(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("snapshot",
                       help="run an export, suspend into a snapshot file")
    p.add_argument("module", help="a .wat file (or .mc MiniC source)")
    p.add_argument("--invoke", required=True)
    p.add_argument("--args", nargs="*", default=[])
    p.add_argument("--at", type=int, required=True,
                   help="suspend at the first observation point at or after "
                        "this many executed instructions")
    p.add_argument("--out", default="repro.snap", help="snapshot output path")
    p.add_argument("--engine", choices=ENGINES, default=None)
    p.set_defaults(fn=cmd_snapshot)

    p = sub.add_parser("resume",
                       help="resume a snapshot file under any engine")
    p.add_argument("snapshot", help="file written by 'repro snapshot'")
    p.add_argument("module", help="the same module the snapshot was taken from")
    p.add_argument("--at", type=int, default=None,
                   help="re-suspend after this many further executed "
                        "instructions (chained snapshots)")
    p.add_argument("--out", default=None,
                   help="re-captured snapshot path (default: overwrite input)")
    p.add_argument("--engine", choices=ENGINES, default=None,
                   help="engine to resume under — need not match the one "
                        "the snapshot was captured under")
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser("meter", help="price a run across the deployment ladder")
    p.add_argument("module")
    p.add_argument("--invoke", required=True)
    p.add_argument("--args", nargs="*", default=[])
    p.set_defaults(fn=cmd_meter)

    p = sub.add_parser("sandbox", help="full AccTEE protocol for one workload")
    p.add_argument("module", help="MiniC (.mc) or WAT (.wat) source")
    p.add_argument("--invoke", required=True)
    p.add_argument("--args", nargs="*", default=[])
    p.add_argument("--level", default="loop-based",
                   choices=["naive", "flow-based", "loop-based"])
    p.add_argument("--weighted", action="store_true")
    p.add_argument("--export-log", help="dump the signed resource log to this JSON file")
    _add_profile_args(p)
    p.set_defaults(fn=cmd_sandbox)

    p = sub.add_parser("verify-log", help="offline verification of an exported log")
    p.add_argument("log", help="JSON file produced by 'sandbox --export-log'")
    p.add_argument("--key", help="JSON public key to pin (else the bundled key)")
    p.add_argument("--json", action="store_true",
                   help="print a machine-readable verdict instead of prose")
    p.set_defaults(fn=cmd_verify_log)

    p = sub.add_parser("serve", help="run the multi-tenant metering gateway")
    p.add_argument("--workers", type=int, default=2, help="execution pool size")
    p.add_argument("--pool", choices=["process", "thread"], default="process")
    p.add_argument("--backend", choices=["wasm", "modeled"], default="wasm",
                   help="execute for real, or pace with the Fig. 9 service-time model")
    p.add_argument("--requests", type=int, default=60, help="requests to serve")
    p.add_argument("--kernels", default="",
                   help="comma-separated PolyBench kernels (default: built-in mix)")
    p.add_argument("--queue-depth", type=int, default=None,
                   help="per-tenant max in-flight requests")
    p.add_argument("--rate-limit", type=float, default=None,
                   help="per-tenant requests/second cap")
    p.add_argument("--time-scale", type=float, default=1.0,
                   help="modeled-backend time compression (0 = no sleeping)")
    p.add_argument("--engine", choices=ENGINES, default=None)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("loadtest", help="sweep gateway worker counts, emit JSON")
    p.add_argument("--workers", default="1,2,4",
                   help="comma-separated worker counts to sweep")
    p.add_argument("--requests", type=int, default=60, help="requests per sweep point")
    p.add_argument("--pool", choices=["process", "thread"], default="process")
    p.add_argument("--backend", choices=["both", "wasm", "modeled"], default="both")
    p.add_argument("--kernels", default="",
                   help="comma-separated PolyBench kernels (default: built-in mix)")
    p.add_argument("--tenants", type=int, default=0, metavar="N",
                   help="fan the kernel mix out to N distinct tenants "
                        "(cycling kernels) to exercise admission sharding "
                        "and telemetry cardinality (default: one per kernel)")
    p.add_argument("--time-scale", type=float, default=1.0)
    p.add_argument("--no-serial", action="store_true",
                   help="skip the serial single-sandbox equivalence check")
    p.add_argument("--engine", choices=ENGINES, default=None)
    p.add_argument("--faults", default="",
                   help="chaos mode: inject faults, e.g. crash:7,hang:13 "
                        "(kinds: crash, hang, corrupt, slow; every Nth request)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for the fault schedule and backoff jitter")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-request wall-clock deadline in seconds "
                        "(default: none; 2.0 when --faults is given)")
    p.add_argument("--hang-s", type=float, default=3.0,
                   help="sleep injected by the hang fault (must exceed the deadline)")
    p.add_argument("--out", default="BENCH_service.json", help="output JSON path")
    p.add_argument("--metrics-out", default=None,
                   help="run with metrics enabled and merge the snapshot "
                        "into this JSON file")
    p.add_argument("--events-out", default=None,
                   help="record the structured telemetry event stream to "
                        "this JSONL file (replayable via 'repro alerts')")
    p.add_argument("--slo", default=None, metavar="RULES_JSON",
                   help="evaluate SLO rules over the run's event stream and "
                        "run the billing-drift audit; exit non-zero on a "
                        "page-severity alert or billing drift")
    p.add_argument("--slo-out", default=None,
                   help="write the SLO/drift telemetry report JSON here")
    p.add_argument("--no-validate", action="store_true",
                   help="disable worker meter-reading validation (drift-audit "
                        "demonstration: lets a 'corrupt' fault reach a receipt)")
    p.add_argument("--bench-append", default=None, metavar="BENCH_JSON",
                   help="append a timestamped distilled perf point to the "
                        "'trajectory' list inside this bench JSON file")
    p.add_argument("--preempt", type=int, default=0, metavar="N",
                   help="preempt every request after N executed instructions "
                        "per slice, checkpoint-bill and re-dispatch the "
                        "snapshot (implies --backend wasm)")
    p.add_argument("--warm", action="store_true",
                   help="serve requests from per-worker warm pools instead "
                        "of instantiating per request (implies --backend wasm)")
    p.add_argument("--trace-out", default=None, metavar="TRACE_JSON",
                   help="run with distributed tracing on and write the "
                        "stitched Chrome/Perfetto trace here; exit non-zero "
                        "if any completed request's trace failed to stitch "
                        "or its receipts lack the trace id")
    p.add_argument("--seal-window", type=int, default=16, metavar="N",
                   help="batch receipt sealing: one AE signature over a "
                        "Merkle root of N receipts per flush window "
                        "(0 = per-receipt signing, the paper's protocol)")
    p.set_defaults(fn=cmd_loadtest)

    p = sub.add_parser("soak",
                       help="million-tenant control-plane scale soak, emit JSON")
    p.add_argument("--tenants", default="1000,10000,100000,1000000",
                   help="comma-separated tenant counts to sweep")
    p.add_argument("--requests", type=int, default=50_000,
                   help="modeled requests per sweep point (fixed across "
                        "points so per-request overhead is comparable)")
    p.add_argument("--budget", type=int, default=64,
                   help="exact per-tenant series budget; the rest spills "
                        "to sketches plus one __other__ series")
    p.add_argument("--top-k", type=int, default=64,
                   help="Space-Saving capacity per sketch shard")
    p.add_argument("--max-resident", type=int, default=256,
                   help="resident lazy quota states before idle eviction")
    p.add_argument("--max-overhead-ratio", type=float, default=1.25,
                   help="gate: largest point's drift-normalised per-request "
                        "overhead over the smallest point's")
    p.add_argument("--rss-ceiling-mb", type=float, default=None,
                   help="gate: fail if any point's RSS exceeds this")
    p.add_argument("--no-isolate", action="store_true",
                   help="run sweep points in-process instead of one fresh "
                        "interpreter per point (faster, noisier)")
    p.add_argument("--out", default="BENCH_scale.json", help="output JSON path")
    p.set_defaults(fn=cmd_soak)

    p = sub.add_parser("top",
                       help="live rolling-window dashboard over the event stream")
    p.add_argument("--duration", type=float, default=10.0,
                   help="seconds to run the driver and dashboard")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between dashboard refreshes")
    p.add_argument("--window", type=float, default=30.0,
                   help="trailing window the dashboard aggregates over")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--backend", choices=["wasm", "modeled"], default="wasm")
    p.add_argument("--time-scale", type=float, default=0.2,
                   help="modeled-backend time compression")
    p.add_argument("--kernels", default="",
                   help="comma-separated PolyBench kernels (default: built-in mix)")
    p.add_argument("--tenants", type=int, default=0, metavar="N",
                   help="fan the kernel mix out to N distinct tenants")
    p.add_argument("--top-k", type=int, default=10,
                   help="tenant-table rows to rank in each frame")
    p.add_argument("--sort", choices=sorted(_TOP_SORT_COLUMNS),
                   default="events",
                   help="tenant-table sort column")
    p.add_argument("--rules", default=None,
                   help="SLO rules JSON to evaluate live on each refresh")
    p.add_argument("--plain", action="store_true",
                   help="append frames instead of clearing the screen (for "
                        "pipes and tests)")
    p.add_argument("--events-out", default=None,
                   help="write the captured event stream to this JSONL file")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("alerts",
                       help="evaluate SLO rules offline over a recorded stream")
    p.add_argument("--rules", required=True, help="SLO rules JSON file")
    p.add_argument("--replay", required=True,
                   help="events JSONL recorded by 'loadtest --events-out' "
                        "or 'top --events-out'")
    p.add_argument("--eval-every", type=float, default=1.0,
                   help="evaluation cadence in replayed seconds")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report instead of prose")
    p.set_defaults(fn=cmd_alerts)

    p = sub.add_parser("explain",
                       help="reconstruct one request's causal story from a "
                            "recorded event stream")
    p.add_argument("request_id", type=int,
                   help="the gateway request id to explain")
    p.add_argument("--events", required=True,
                   help="events JSONL recorded by 'loadtest --events-out'")
    p.add_argument("--gateway", default=None,
                   help="restrict to one gateway id (e.g. gw-3) when the "
                        "stream interleaves several sweep points")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report instead of prose")
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser("trace", help="traced workload run -> Chrome trace JSON")
    p.add_argument("workload",
                   help="a PolyBench kernel name (e.g. atax) or a .wat/.mc file")
    p.add_argument("--invoke", default=None, help="export to call (file workloads)")
    p.add_argument("--args", nargs="*", default=[])
    p.add_argument("--engine", choices=ENGINES, default=None)
    p.add_argument("--top", type=int, default=8, help="slowest spans to print")
    p.add_argument("--out", default="trace.json", help="Chrome trace output path")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("metrics",
                       help="drive a short gateway mix, dump OpenMetrics text")
    p.add_argument("--requests", type=int, default=12)
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--kernels", default="",
                   help="comma-separated PolyBench kernels (default: trisolv,atax)")
    p.add_argument("--json", action="store_true",
                   help="JSON snapshot instead of OpenMetrics text")
    p.add_argument("--out", default=None, help="write the exposition here")
    p.add_argument("--check-contract", action="store_true",
                   help="verify registered metric names against "
                        "obs/metric_names.txt and exit")
    p.set_defaults(fn=cmd_metrics)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
