"""AccTEE core: the two-way sandbox and trusted resource accounting protocol.

The pieces map one-to-one onto the paper's Fig. 3 workflow:

* :mod:`repro.core.instrumentation_enclave` — the IE: instruments a Wasm
  module and signs *instrumentation evidence* binding the output;
* :mod:`repro.core.accounting_enclave` — the AE: verifies evidence, executes
  the workload inside the (simulated) SGX enclave and emits signed
  :class:`~repro.core.resource_log.ResourceUsageLog` entries;
* :mod:`repro.core.sandbox` — :class:`~repro.core.sandbox.TwoWaySandbox`,
  the user-facing API tying both together with remote attestation;
* :mod:`repro.core.policy` — memory-accounting and pricing policies.
"""

from repro.core.policy import MemoryPolicy, PricingPolicy
from repro.core.resource_log import ResourceUsageLog, ResourceVector
from repro.core.instrumentation_enclave import InstrumentationEnclave, InstrumentationEvidence
from repro.core.accounting_enclave import AccountingEnclave, WorkloadResult
from repro.core.sandbox import SandboxConfig, TwoWaySandbox

__all__ = [
    "MemoryPolicy",
    "PricingPolicy",
    "ResourceUsageLog",
    "ResourceVector",
    "InstrumentationEnclave",
    "InstrumentationEvidence",
    "AccountingEnclave",
    "WorkloadResult",
    "SandboxConfig",
    "TwoWaySandbox",
]
