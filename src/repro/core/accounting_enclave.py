"""The accounting enclave (AE): executes workloads and produces trusted logs.

The AE is the runtime half of Fig. 3: it verifies instrumentation evidence,
instantiates the workload in the Wasm runtime under (simulated) SGX, reads
the injected counter plus the runtime's memory and I/O meters, and appends
signed entries to the resource usage log.  Its signing key is generated
inside the enclave per run and bound to the enclave identity by embedding
the public key's fingerprint in the remote-attestation report data, so a
workload provider who attested the AE can trust every log entry it signs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instrumentation_enclave import InstrumentationEvidence, verify_evidence
from repro.core.policy import MemoryPolicy, memory_integral
from repro.core.resource_log import ResourceUsageLog, ResourceVector
from repro.instrument.weights import WeightTable
from repro.obs.instruments import (
    CHECKPOINT_RECEIPTS,
    SANDBOX_INSTRUCTIONS,
    SANDBOX_IO_BYTES,
    SANDBOX_PEAK_MEMORY,
    SANDBOX_RUNS,
)
from repro.obs.trace import span
from repro.sgx.enclave import Enclave
from repro.sgx.lkl import SGXLKL
from repro.tcrypto.hashing import sha256
from repro.tcrypto.rsa import RSAKeyPair, RSAPublicKey, rsa_generate
from repro.wasm.binary import encode_module
from repro.wasm.interpreter import ExecutionLimits, Instance, SnapshotCaptured, Trap
from repro.wasm.module import Module
from repro.wasm.runtime import HostEnvironment, IOChannel
from repro.wasm.snapshot import IOState, Snapshot, restore_instance, resume_invoke, with_io
from repro.wasm.validate import validate


class WorkloadRejected(Exception):
    """The AE refused a workload (bad evidence, bad module, wrong IE)."""


@dataclass
class WorkloadResult:
    """Outcome of one invocation inside the AE."""

    value: object
    trapped: bool
    trap_message: str
    vector: ResourceVector
    output: bytes


@dataclass(frozen=True)
class WorkloadCheckpoint:
    """A suspended invocation: its snapshot plus the billing already done.

    Returned by :meth:`AccountingEnclave.invoke` / :meth:`~AccountingEnclave.resume`
    when the run hit an armed observation point (``snapshot_at``) instead of
    finishing.  The resources consumed *up to* the capture are already signed
    into the log as a checkpoint receipt (``vector``); ``baseline`` records
    the (counter, io_in, io_out) totals billed so far, so the eventual final
    receipt bills only the remaining delta — summed receipt vectors equal the
    uninterrupted run's single vector, component for component.
    """

    snapshot: Snapshot
    export: str
    args: tuple
    input_data: bytes
    label: str
    baseline: tuple[int, int, int]
    vector: ResourceVector
    checkpoints: int


@dataclass(frozen=True)
class RawExecution:
    """The raw, unsigned measurements of one workload invocation.

    Produced wherever the Wasm actually ran — inside this AE's
    :meth:`~AccountingEnclave.invoke`, or in a metering-gateway worker
    process — and turned into a signed log entry by
    :meth:`AccountingEnclave.account`.  It carries exactly the quantities
    accounting needs, so the execution site and the signing site can live in
    different processes while producing byte-identical resource vectors.
    """

    workload_hash: bytes
    counter_value: int
    peak_memory_bytes: int
    initial_pages: int
    grow_history: tuple[tuple[int, int], ...]
    io_bytes_in: int
    io_bytes_out: int
    value: object = None
    trapped: bool = False
    trap_message: str = ""
    output: bytes = b""


class AccountingEnclave(Enclave):
    """Executes evidence-carrying workloads and meters their resources."""

    CODE_VERSION = b"acctee-sim accounting enclave v1"

    def __init__(
        self,
        ie_public_key: RSAPublicKey,
        ie_measurement: bytes,
        weight_table: WeightTable,
        memory_policy: MemoryPolicy = MemoryPolicy.PEAK,
        key_bits: int = 512,
        key_seed: int = 23,
        limits: ExecutionLimits | None = None,
        engine: str | None = None,
        batch_window: int | None = None,
    ):
        super().__init__(
            "accounting-enclave",
            (
                self.CODE_VERSION,
                ie_measurement,
                weight_table.digest(),
                memory_policy.value.encode("utf-8"),
            ),
        )
        self.ie_public_key = ie_public_key
        self.ie_measurement = ie_measurement
        self.weight_table = weight_table
        self.memory_policy = memory_policy
        self.limits = limits or ExecutionLimits()
        #: Wasm execution engine used for workload invocations ("predecode"
        #: or "legacy"; None picks the interpreter default).  The injected
        #: counter verification is engine-independent — the differential
        #: tests pin both engines to identical ExecutionStats.
        self.engine = engine
        self.lkl = SGXLKL()
        self._signing_key: RSAKeyPair = rsa_generate(key_bits, seed=key_seed)
        #: ``batch_window=N`` puts the receipt log in batched-sealing mode:
        #: one signature over a Merkle root of N entry bodies per flush
        #: window instead of one RSA op per receipt (the gateway's hot path).
        self.log = ResourceUsageLog(self._signing_key, batch_window=batch_window)

        self._module: Module | None = None
        self._counter_global: int | None = None
        self._workload_hash: bytes = b""
        self._last_counter = 0

    @property
    def log_public_key(self) -> RSAPublicKey:
        return self._signing_key.public

    def report_data_binding(self) -> bytes:
        """The value a challenger expects in this AE's attestation user data."""
        return self.log_public_key.fingerprint()

    # -- workload intake ---------------------------------------------------------

    def load_workload(self, module: Module, evidence: InstrumentationEvidence) -> None:
        """Admit a workload: verify evidence, module validity and counter wiring."""
        if not verify_evidence(evidence, module, self.ie_public_key, self.ie_measurement):
            raise WorkloadRejected("instrumentation evidence verification failed")
        if evidence.weight_table_digest != self.weight_table.digest():
            raise WorkloadRejected("workload instrumented under a different weight table")
        try:
            validate(module)
        except Exception as exc:
            raise WorkloadRejected(f"module fails validation: {exc}") from exc
        counter = evidence.counter_global_index
        if counter >= module.num_imported_globals + len(module.globals):
            raise WorkloadRejected("evidence names a counter global that does not exist")
        self._module = module
        self._counter_global = counter
        self._workload_hash = sha256(encode_module(module))
        self._last_counter = 0

    # -- execution -----------------------------------------------------------------

    def invoke(
        self,
        export: str,
        *args,
        input_data: bytes = b"",
        label: str = "",
        progress_interval: int | None = None,
        snapshot_at: int | None = None,
    ) -> WorkloadResult | WorkloadCheckpoint:
        """Run one exported function and append a signed accounting entry.

        A fresh module instance is created per invocation (the paper's FaaS
        deployment instantiates per request to isolate tenants); the counter
        therefore starts at zero each time.

        With ``progress_interval`` set, the AE additionally appends interim
        "progress" entries to the log every that-many executed instructions —
        the paper's periodic accounting reports (§3.3), used e.g. by the
        pay-by-computation scenario to give the content provider feedback
        while a task runs.

        With ``snapshot_at`` set, execution suspends at the first observation
        point where ``executed >= snapshot_at``: the resources consumed so far
        are signed into the log as a checkpoint receipt and a
        :class:`WorkloadCheckpoint` is returned instead of a result — hand it
        to :meth:`resume` (on this AE, under any engine) to continue.
        """
        if self._module is None or self._counter_global is None:
            raise WorkloadRejected("no workload loaded")
        channel = IOChannel(input_data=input_data)
        env = HostEnvironment(channel=channel, account_io=True)
        limits = self.limits
        if snapshot_at is not None:
            from dataclasses import replace as _replace

            limits = _replace(limits, snapshot_at=snapshot_at)
        if progress_interval is not None:
            from dataclasses import replace as _replace

            def report_progress(stats) -> None:
                self.log.append(
                    ResourceVector(
                        weighted_instructions=0,  # interim marker, not billed
                        peak_memory_bytes=0,
                        memory_integral_page_instructions=0,
                        io_bytes_in=0,
                        io_bytes_out=0,
                        label=f"progress:{label or export}@{stats.executed}",
                    ),
                    self._workload_hash,
                    self.weight_table.digest(),
                )

            limits = _replace(
                limits,
                progress_interval=progress_interval,
                progress_callback=report_progress,
            )
        with span(
            "invoke",
            export=export,
            module_hash=self._workload_hash,
            engine=self.engine or "default",
        ):
            instance = env.instantiate(self._module, limits=limits, engine=self.engine)

            trapped = False
            trap_message = ""
            value: object = None
            with span("execute", export=export):
                try:
                    value = instance.invoke(export, *args)
                except SnapshotCaptured as exc:
                    return self._checkpoint(
                        with_io(exc.snapshot, env, channel),
                        export=export,
                        args=args,
                        input_data=input_data,
                        label=label or export,
                        baseline=(0, 0, 0),
                        checkpoints=0,
                    )
                except Trap as exc:
                    trapped = True
                    trap_message = str(exc)

            memory = instance.memory
            raw = RawExecution(
                workload_hash=self._workload_hash,
                counter_value=int(instance.globals[self._counter_global].value),
                peak_memory_bytes=memory.peak_bytes if memory is not None else 0,
                initial_pages=(
                    self._module.memories[0].limits.minimum
                    if self._module.memories
                    else 0
                ),
                grow_history=tuple(instance.stats.grow_history),
                io_bytes_in=env.account.bytes_in,
                io_bytes_out=env.account.bytes_out,
                value=value,
                trapped=trapped,
                trap_message=trap_message,
                output=bytes(channel.output),
            )
            result = self.account(raw, label=label or export)
            self.lkl.request_io_cycles(len(input_data), len(channel.output))
            return result

    def account(
        self, raw: RawExecution, label: str = "", trace_id: str | None = None
    ) -> WorkloadResult:
        """Turn raw measurements into a signed log entry (the receipt).

        This is the AE's accounting half, split out so a metering gateway
        can execute workloads in worker processes and still have *this*
        enclave — the one the tenant attested — sign every receipt.  The
        raw measurements must be for the workload this AE admitted.
        """
        return self.account_span(raw, label=label, trace_id=trace_id)

    def account_span(
        self,
        raw: RawExecution,
        label: str = "",
        baseline: tuple[int, int, int] = (0, 0, 0),
        final: bool = True,
        trace_id: str | None = None,
    ) -> WorkloadResult:
        """Sign a receipt for the span since ``baseline``.

        ``baseline`` is the (weighted instructions, io_in, io_out) already
        billed by earlier checkpoint receipts for this job; the vector
        carries only the deltas.  Peak memory and the memory integral are
        *whole-job* quantities (computed over the full grow history and the
        final counter), so they appear only on the ``final`` receipt — with
        that convention, the componentwise sum over a job's checkpoint +
        final receipts equals the single receipt of an uninterrupted run.

        ``trace_id`` tags the signing span with the distributed-trace
        identity of the execution that produced ``raw`` — provenance only,
        never part of the signed vector, so signed bytes stay identical
        with tracing on or off.
        """
        if self._workload_hash == b"":
            raise WorkloadRejected("no workload loaded")
        if raw.workload_hash != self._workload_hash:
            raise WorkloadRejected("raw execution is for a different workload")
        base_instr, base_in, base_out = baseline
        delta_instr = raw.counter_value - base_instr
        delta_in = raw.io_bytes_in - base_in
        delta_out = raw.io_bytes_out - base_out
        # Guard checkpoint consistency only: a non-zero baseline that
        # exceeds the measurement means a mis-sequenced resume.  Raw
        # plausibility (e.g. a negative counter) is the validation layer's
        # job, with the billing-drift auditor as the offline backstop.
        if baseline != (0, 0, 0) and (
            delta_instr < 0 or delta_in < 0 or delta_out < 0
        ):
            raise WorkloadRejected("span baseline exceeds measured totals")
        attrs = {"label": label, "module_hash": self._workload_hash}
        if trace_id is not None:
            attrs["trace_id"] = trace_id
        with span("account", **attrs):
            if final:
                integral = memory_integral(
                    list(raw.grow_history), raw.initial_pages, raw.counter_value
                )
                vector = ResourceVector(
                    weighted_instructions=delta_instr,
                    peak_memory_bytes=raw.peak_memory_bytes,
                    memory_integral_page_instructions=(
                        integral if self.memory_policy is MemoryPolicy.INTEGRAL else 0
                    ),
                    io_bytes_in=delta_in,
                    io_bytes_out=delta_out,
                    label=label,
                )
            else:
                vector = ResourceVector(
                    weighted_instructions=delta_instr,
                    peak_memory_bytes=0,
                    memory_integral_page_instructions=0,
                    io_bytes_in=delta_in,
                    io_bytes_out=delta_out,
                    label=f"checkpoint:{label}@{raw.counter_value}",
                )
            self.log.append(vector, self._workload_hash, self.weight_table.digest())
            self._last_counter = raw.counter_value
        if final:
            SANDBOX_RUNS.inc(outcome="trapped" if raw.trapped else "ok")
            SANDBOX_PEAK_MEMORY.observe(float(raw.peak_memory_bytes))
        else:
            CHECKPOINT_RECEIPTS.inc()
        SANDBOX_INSTRUCTIONS.inc(delta_instr)
        SANDBOX_IO_BYTES.inc(delta_in, direction="in")
        SANDBOX_IO_BYTES.inc(delta_out, direction="out")
        return WorkloadResult(
            value=raw.value,
            trapped=raw.trapped,
            trap_message=raw.trap_message,
            vector=vector,
            output=raw.output,
        )

    # -- snapshot / resume ---------------------------------------------------------

    def _checkpoint(
        self,
        snapshot: Snapshot,
        export: str,
        args: tuple,
        input_data: bytes,
        label: str,
        baseline: tuple[int, int, int],
        checkpoints: int,
    ) -> WorkloadCheckpoint:
        """Bill a capture's consumed-so-far delta and wrap it for resumption."""
        if self._module is None or self._counter_global is None:
            raise WorkloadRejected("no workload loaded")
        io = snapshot.io or IOState()
        raw = RawExecution(
            workload_hash=self._workload_hash,
            counter_value=int(snapshot.globals[self._counter_global]),
            peak_memory_bytes=0,  # whole-job quantity, billed on the final receipt
            initial_pages=(
                self._module.memories[0].limits.minimum if self._module.memories else 0
            ),
            grow_history=(),
            io_bytes_in=io.bytes_in,
            io_bytes_out=io.bytes_out,
        )
        result = self.account_span(raw, label=label, baseline=baseline, final=False)
        return WorkloadCheckpoint(
            snapshot=snapshot,
            export=export,
            args=tuple(args),
            input_data=input_data,
            label=label,
            baseline=(raw.counter_value, raw.io_bytes_in, raw.io_bytes_out),
            vector=result.vector,
            checkpoints=checkpoints + 1,
        )

    def resume(
        self,
        checkpoint: WorkloadCheckpoint,
        snapshot_at: int | None = None,
    ) -> WorkloadResult | WorkloadCheckpoint:
        """Continue a checkpointed invocation on this AE's configured engine.

        The snapshot restores into a fresh instance (any engine — the format
        is engine-independent), the host I/O channel is rewound to its
        captured position, and the suspended call stack re-enters exactly
        where capture left it.  On completion the final receipt bills only
        the delta past ``checkpoint.baseline``; with ``snapshot_at`` set
        (executed instructions *beyond the checkpoint* — the next slice
        budget, same semantics as a worker task) the run may instead
        suspend again, yielding the next :class:`WorkloadCheckpoint`.
        """
        if self._module is None or self._counter_global is None:
            raise WorkloadRejected("no workload loaded")
        snap = checkpoint.snapshot
        io = snap.io or IOState()
        channel = IOChannel(input_data=checkpoint.input_data)
        channel._read_pos = io.read_pos
        channel.output[:] = io.output
        env = HostEnvironment(channel=channel, account_io=True)
        env.account.bytes_in = io.bytes_in
        env.account.bytes_out = io.bytes_out
        env.account.calls = io.calls
        from dataclasses import replace as _replace

        limits = _replace(
            self.limits,
            snapshot_at=(
                snap.executed + snapshot_at if snapshot_at is not None else None
            ),
        )
        with span(
            "resume",
            export=checkpoint.export,
            module_hash=self._workload_hash,
            engine=self.engine or "default",
        ):
            instance = restore_instance(
                snap,
                self._module,
                imports=env.imports(),
                limits=limits,
                engine=self.engine,
            )
            env.bind(instance)
            trapped = False
            trap_message = ""
            value: object = None
            with span("execute", export=checkpoint.export):
                try:
                    value = resume_invoke(instance, snap)
                except SnapshotCaptured as exc:
                    return self._checkpoint(
                        with_io(exc.snapshot, env, channel),
                        export=checkpoint.export,
                        args=checkpoint.args,
                        input_data=checkpoint.input_data,
                        label=checkpoint.label,
                        baseline=checkpoint.baseline,
                        checkpoints=checkpoint.checkpoints,
                    )
                except Trap as exc:
                    trapped = True
                    trap_message = str(exc)

            memory = instance.memory
            raw = RawExecution(
                workload_hash=self._workload_hash,
                counter_value=int(instance.globals[self._counter_global].value),
                peak_memory_bytes=memory.peak_bytes if memory is not None else 0,
                initial_pages=(
                    self._module.memories[0].limits.minimum
                    if self._module.memories
                    else 0
                ),
                grow_history=tuple(instance.stats.grow_history),
                io_bytes_in=env.account.bytes_in,
                io_bytes_out=env.account.bytes_out,
                value=value,
                trapped=trapped,
                trap_message=trap_message,
                output=bytes(channel.output),
            )
            result = self.account_span(
                raw, label=checkpoint.label, baseline=checkpoint.baseline, final=True
            )
            self.lkl.request_io_cycles(len(checkpoint.input_data), len(channel.output))
            return result
