"""Instrumented-module cache (paper §3.3).

"The code only needs to be instrumented once.  A cached copy of the
instrumented code can be re-used across many invocations."  The cache is
keyed by the *input* module hash together with the IE identity (measurement
covers level + weight table), and stores the instrumented module bytes plus
the signed evidence — everything an accounting enclave needs to re-admit the
workload without re-running the IE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instrumentation_enclave import (
    InstrumentationEnclave,
    InstrumentationEvidence,
)
from repro.tcrypto.hashing import sha256
from repro.wasm.binary import decode_module, encode_module
from repro.wasm.module import Module


@dataclass
class _CacheEntry:
    module_bytes: bytes
    evidence: InstrumentationEvidence
    counter_export: str
    hits: int = 0


@dataclass
class InstrumentationCache:
    """Caches IE outputs keyed by (input hash, IE measurement)."""

    ie: InstrumentationEnclave
    _entries: dict[tuple[bytes, bytes], _CacheEntry] = field(default_factory=dict)
    misses: int = 0

    def instrument(self, module: Module) -> tuple[Module, InstrumentationEvidence, str]:
        """Return (instrumented module, evidence, counter export), cached.

        The returned module is freshly decoded from the cached bytes, so
        callers may mutate it without poisoning the cache.
        """
        key = (sha256(encode_module(module)), self.ie.mrenclave)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            result, evidence = self.ie.instrument(module)
            entry = _CacheEntry(
                module_bytes=encode_module(result.module),
                evidence=evidence,
                counter_export=result.counter_export,
            )
            self._entries[key] = entry
        else:
            entry.hits += 1
        return decode_module(entry.module_bytes), entry.evidence, entry.counter_export

    @property
    def hits(self) -> int:
        return sum(entry.hits for entry in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
