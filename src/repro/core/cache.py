"""Instrumented-module cache (paper §3.3).

"The code only needs to be instrumented once.  A cached copy of the
instrumented code can be re-used across many invocations."  The cache is
keyed by the *input* module hash together with the IE identity (measurement
covers level + weight table), and stores the instrumented module bytes plus
the signed evidence — everything an accounting enclave needs to re-admit the
workload without re-running the IE.

Under FaaS-style churn (every distinct tenant module adds an entry) the
cache is bounded: with ``max_entries`` set it evicts least-recently-used
entries, and :meth:`InstrumentationCache.stats` exposes hit/miss/eviction
counters so operators can size it.

The cache is thread-safe: the metering gateway shares one instance across
request-submitting threads and pool completion callbacks, so lookups,
inserts, evictions and the counters are all serialised behind one lock
(instrumentation of a miss runs inside the lock — concurrent submitters of
the same module would otherwise both pay the IE pass).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.instrumentation_enclave import (
    InstrumentationEnclave,
    InstrumentationEvidence,
)
from repro.obs.instruments import CACHE_EVICTIONS, CACHE_HITS, CACHE_MISSES
from repro.obs.trace import span
from repro.tcrypto.hashing import sha256
from repro.wasm.binary import decode_module, encode_module
from repro.wasm.module import Module


@dataclass
class _CacheEntry:
    module_bytes: bytes
    evidence: InstrumentationEvidence
    counter_export: str
    hits: int = 0


@dataclass
class InstrumentationCache:
    """Caches IE outputs keyed by (input hash, IE measurement).

    ``max_entries`` bounds the cache with LRU eviction: ``None`` (the
    default) keeps it unbounded, matching the original behaviour.  Entry
    order in the backing dict is recency order — a hit re-inserts the entry
    at the most-recently-used end.
    """

    ie: InstrumentationEnclave
    max_entries: int | None = None
    _entries: dict[tuple[bytes, bytes], _CacheEntry] = field(default_factory=dict)
    misses: int = 0
    _hit_count: int = field(default=0, repr=False)
    _evictions: int = field(default=0, repr=False)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries <= 0:
            raise ValueError("max_entries must be positive (or None for unbounded)")

    def instrument(self, module: Module) -> tuple[Module, InstrumentationEvidence, str]:
        """Return (instrumented module, evidence, counter export), cached.

        The returned module is freshly decoded from the cached bytes, so
        callers may mutate it without poisoning the cache.
        """
        key = (sha256(encode_module(module)), self.ie.mrenclave)
        with span("instrument", module_hash=key[0]) as sp:
            with self._lock:
                entry = self._entries.get(key)
                if entry is None:
                    self.misses += 1
                    CACHE_MISSES.inc()
                    sp.set_attribute("cache", "miss")
                    result, evidence = self.ie.instrument(module)
                    entry = _CacheEntry(
                        module_bytes=encode_module(result.module),
                        evidence=evidence,
                        counter_export=result.counter_export,
                    )
                    if (
                        self.max_entries is not None
                        and len(self._entries) >= self.max_entries
                    ):
                        oldest = next(iter(self._entries))
                        del self._entries[oldest]
                        self._evictions += 1
                        CACHE_EVICTIONS.inc()
                    self._entries[key] = entry
                else:
                    entry.hits += 1
                    self._hit_count += 1
                    CACHE_HITS.inc()
                    sp.set_attribute("cache", "hit")
                    # refresh recency: move the entry to the MRU end
                    del self._entries[key]
                    self._entries[key] = entry
                return decode_module(entry.module_bytes), entry.evidence, entry.counter_export

    @property
    def hits(self) -> int:
        """Cumulative hit count (survives eviction of the entries that hit)."""
        return self._hit_count

    @property
    def evictions(self) -> int:
        return self._evictions

    def stats(self) -> dict[str, int | float | None]:
        """Operational counters: hits, misses, evictions, occupancy."""
        with self._lock:
            # single atomic snapshot: every counter below is read under the
            # same lock acquisition, so hits + misses == lookups always holds
            # even while instrument() runs concurrently
            lookups = self._hit_count + self.misses
            return {
                "hits": self._hit_count,
                "misses": self.misses,
                "lookups": lookups,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hit_rate": (self._hit_count / lookups) if lookups else 0.0,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
