"""The instrumentation enclave (IE): instruments workloads and signs evidence.

Per the paper's Fig. 3 workflow, instrumentation is disaggregated from
execution: the IE runs once per workload, produces the instrumented
WebAssembly together with *instrumentation evidence* — a signed statement
binding the input hash, output hash, instrumentation level and weight table
— and the accounting enclave later accepts a workload only with valid
evidence.  Caching the instrumented module across invocations is therefore
safe (paper §3.3).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.instrument import InstrumentationResult, instrument_module
from repro.instrument.weights import UNIT_WEIGHTS, WeightTable
from repro.sgx.enclave import Enclave
from repro.tcrypto.hashing import sha256
from repro.tcrypto.rsa import RSAKeyPair, RSAPublicKey, rsa_generate, rsa_sign, rsa_verify
from repro.wasm.binary import encode_module
from repro.wasm.module import Module


@dataclass(frozen=True)
class InstrumentationEvidence:
    """Cryptographic evidence that the IE produced a given instrumented module."""

    input_hash: bytes
    output_hash: bytes
    level: str
    weight_table_digest: bytes
    counter_global_index: int
    ie_measurement: bytes
    signature: bytes

    def body(self) -> bytes:
        payload = {
            "input_hash": self.input_hash.hex(),
            "output_hash": self.output_hash.hex(),
            "level": self.level,
            "weight_table_digest": self.weight_table_digest.hex(),
            "counter_global_index": self.counter_global_index,
            "ie_measurement": self.ie_measurement.hex(),
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")


class InstrumentationEnclave(Enclave):
    """Runs the instrumentation pass and signs the result.

    The enclave's measurement covers the pass implementation and the weight
    table, so both parties can audit the public code, recompute the expected
    measurement, and then trust any module carrying valid evidence.
    """

    CODE_VERSION = b"acctee-sim instrumentation enclave v1"

    def __init__(
        self,
        weight_table: WeightTable | None = None,
        level: str = "loop-based",
        key_bits: int = 512,
        key_seed: int = 11,
    ):
        self.weight_table = weight_table or UNIT_WEIGHTS
        self.level = level
        super().__init__(
            "instrumentation-enclave",
            (self.CODE_VERSION, self.weight_table.digest(), level.encode("utf-8")),
        )
        self._signing_key: RSAKeyPair = rsa_generate(key_bits, seed=key_seed)

    @property
    def evidence_public_key(self) -> RSAPublicKey:
        return self._signing_key.public

    def instrument(self, module: Module) -> tuple[InstrumentationResult, InstrumentationEvidence]:
        """Instrument a module and emit signed evidence over input and output."""
        input_hash = sha256(encode_module(module))
        result = instrument_module(module, self.level, self.weight_table)
        output_hash = sha256(encode_module(result.module))
        unsigned = InstrumentationEvidence(
            input_hash=input_hash,
            output_hash=output_hash,
            level=self.level,
            weight_table_digest=self.weight_table.digest(),
            counter_global_index=result.counter_global_index,
            ie_measurement=self.mrenclave,
            signature=b"",
        )
        evidence = InstrumentationEvidence(
            input_hash=unsigned.input_hash,
            output_hash=unsigned.output_hash,
            level=unsigned.level,
            weight_table_digest=unsigned.weight_table_digest,
            counter_global_index=unsigned.counter_global_index,
            ie_measurement=unsigned.ie_measurement,
            signature=rsa_sign(self._signing_key, unsigned.body()),
        )
        return result, evidence


def verify_evidence(
    evidence: InstrumentationEvidence,
    instrumented_module: Module,
    ie_public_key: RSAPublicKey,
    expected_ie_measurement: bytes,
) -> bool:
    """Accounting-enclave-side check before accepting a workload.

    Verifies the IE identity, the signature, and that the module in hand is
    byte-identical to the one the evidence covers.
    """
    if evidence.ie_measurement != expected_ie_measurement:
        return False
    if not rsa_verify(ie_public_key, evidence.body(), evidence.signature):
        return False
    return sha256(encode_module(instrumented_module)) == evidence.output_hash
