"""Accounting and pricing policies (paper §3.5 and §3.2).

Memory can be accounted either by **peak** linear-memory size or by the
**integral** of memory size over execution progress, where progress is
approximated by the weighted instruction counter — both policies are offered
by the paper and the choice is left to the two parties' agreement.

Pricing turns a resource vector into a price, letting infrastructure
providers fold their internal cost factors (management, energy, hardware)
into public per-unit rates while customers compare offers on the platform-
independent metered quantities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MemoryPolicy(enum.Enum):
    """How memory usage enters the resource log."""

    PEAK = "peak"
    INTEGRAL = "integral"


def memory_integral(
    grow_history: list[tuple[int, int]],
    initial_pages: int,
    total_instructions: int,
) -> int:
    """Integrate linear-memory pages over the instruction counter.

    ``grow_history`` is a list of ``(instructions_at_grow, pages_after)``
    events; the result is in page-instructions.  Because linear memory never
    shrinks, the integral is an exact sum of rectangles.
    """
    integral = 0
    last_point = 0
    pages = initial_pages
    for at, new_pages in grow_history:
        integral += pages * (at - last_point)
        pages = new_pages
        last_point = at
    integral += pages * (total_instructions - last_point)
    return integral


@dataclass(frozen=True)
class PricingPolicy:
    """Per-unit prices over the metered resources.

    Prices are in abstract currency micro-units:

    * ``per_mega_weighted_instructions`` — per million weighted instructions;
    * ``per_mib_peak`` / ``per_mib_instruction`` — for whichever memory
      policy is active;
    * ``per_kib_io`` — per KiB crossing the module boundary.
    """

    per_mega_weighted_instructions: float = 40.0
    per_mib_peak: float = 2.0
    per_mib_instruction: float = 0.0000005
    per_kib_io: float = 0.08
    memory_policy: MemoryPolicy = MemoryPolicy.PEAK

    def price(
        self,
        weighted_instructions: int,
        peak_memory_bytes: int,
        memory_integral_page_instructions: int,
        io_bytes: int,
    ) -> float:
        """Price one resource vector under this policy."""
        total = self.per_mega_weighted_instructions * weighted_instructions / 1e6
        if self.memory_policy is MemoryPolicy.PEAK:
            total += self.per_mib_peak * peak_memory_bytes / (1024 * 1024)
        else:
            # page-instructions -> MiB-instructions (one page is 64 KiB)
            mib_instructions = memory_integral_page_instructions / 16.0
            total += self.per_mib_instruction * mib_instructions
        total += self.per_kib_io * io_bytes / 1024.0
        return total
