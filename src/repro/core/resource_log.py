"""Signed resource usage logs: the artefact both parties trust (Fig. 1).

A :class:`ResourceUsageLog` is an append-only sequence of
:class:`ResourceVector` entries, hash-chained and signed by the accounting
enclave's run key (whose public half is bound to the enclave identity via
remote attestation).  Either party can verify the chain offline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.tcrypto.hashing import sha256
from repro.tcrypto.rsa import RSAKeyPair, RSAPublicKey, rsa_sign, rsa_verify


@dataclass(frozen=True)
class ResourceVector:
    """One accounting sample: the three resources the paper meters (§3.5)."""

    weighted_instructions: int
    peak_memory_bytes: int
    memory_integral_page_instructions: int
    io_bytes_in: int
    io_bytes_out: int
    label: str = ""

    @property
    def io_bytes_total(self) -> int:
        return self.io_bytes_in + self.io_bytes_out

    def to_json(self) -> dict:
        return {
            "weighted_instructions": self.weighted_instructions,
            "peak_memory_bytes": self.peak_memory_bytes,
            "memory_integral_page_instructions": self.memory_integral_page_instructions,
            "io_bytes_in": self.io_bytes_in,
            "io_bytes_out": self.io_bytes_out,
            "label": self.label,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ResourceVector":
        return cls(**data)


@dataclass(frozen=True)
class LogEntry:
    """A resource vector chained to its predecessor and signed."""

    sequence: int
    vector: ResourceVector
    workload_hash: bytes
    weight_table_digest: bytes
    previous_hash: bytes
    signature: bytes

    def body(self) -> bytes:
        payload = {
            "sequence": self.sequence,
            "vector": self.vector.to_json(),
            "workload_hash": self.workload_hash.hex(),
            "weight_table_digest": self.weight_table_digest.hex(),
            "previous_hash": self.previous_hash.hex(),
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def entry_hash(self) -> bytes:
        return sha256(self.body())


class ResourceUsageLog:
    """The mutually trusted, verifiable log of a workload's resource usage."""

    GENESIS = b"\x00" * 32

    def __init__(self, signing_key: RSAKeyPair | None = None):
        self._signing_key = signing_key
        self.entries: list[LogEntry] = []

    @property
    def head_hash(self) -> bytes:
        if not self.entries:
            return self.GENESIS
        return self.entries[-1].entry_hash()

    def append(
        self,
        vector: ResourceVector,
        workload_hash: bytes,
        weight_table_digest: bytes,
    ) -> LogEntry:
        """Sign and append one accounting sample (producer side)."""
        if self._signing_key is None:
            raise RuntimeError("this log handle is verify-only")
        unsigned = LogEntry(
            sequence=len(self.entries),
            vector=vector,
            workload_hash=workload_hash,
            weight_table_digest=weight_table_digest,
            previous_hash=self.head_hash,
            signature=b"",
        )
        entry = LogEntry(
            sequence=unsigned.sequence,
            vector=unsigned.vector,
            workload_hash=unsigned.workload_hash,
            weight_table_digest=unsigned.weight_table_digest,
            previous_hash=unsigned.previous_hash,
            signature=rsa_sign(self._signing_key, unsigned.body()),
        )
        self.entries.append(entry)
        return entry

    def verify(
        self,
        public_key: RSAPublicKey,
        expected_head: bytes | None = None,
        expected_entries: int | None = None,
    ) -> bool:
        """Check the hash chain and every signature (either party).

        The chain alone cannot detect *truncation* — dropping a suffix
        leaves a shorter but internally consistent log.  Callers who learned
        the expected head hash (or entry count) out of band — e.g. from an
        epoch seal or a progress report — pass it via ``expected_head`` /
        ``expected_entries`` to close that hole.
        """
        previous = self.GENESIS
        for i, entry in enumerate(self.entries):
            if entry.sequence != i or entry.previous_hash != previous:
                return False
            if not rsa_verify(public_key, entry.body(), entry.signature):
                return False
            previous = entry.entry_hash()
        if expected_head is not None and previous != expected_head:
            return False
        if expected_entries is not None and len(self.entries) != expected_entries:
            return False
        return True

    def totals(self) -> ResourceVector:
        """Aggregate all entries into one vector (sum/max as appropriate)."""
        return ResourceVector(
            weighted_instructions=sum(e.vector.weighted_instructions for e in self.entries),
            peak_memory_bytes=max(
                (e.vector.peak_memory_bytes for e in self.entries), default=0
            ),
            memory_integral_page_instructions=sum(
                e.vector.memory_integral_page_instructions for e in self.entries
            ),
            io_bytes_in=sum(e.vector.io_bytes_in for e in self.entries),
            io_bytes_out=sum(e.vector.io_bytes_out for e in self.entries),
            label="totals",
        )
