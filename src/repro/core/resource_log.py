"""Signed resource usage logs: the artefact both parties trust (Fig. 1).

A :class:`ResourceUsageLog` is an append-only sequence of
:class:`ResourceVector` entries, hash-chained and signed by the accounting
enclave's run key (whose public half is bound to the enclave identity via
remote attestation).  Either party can verify the chain offline.

Two signing modes:

* **per-entry** (the default) — every entry carries its own RSA signature,
  as in the paper's base protocol;
* **batched** (``batch_window=N``) — entries are appended with an empty
  signature and, every ``N`` entries (or on an explicit :meth:`flush`),
  one signature is produced over the Merkle root of the pending entry
  bodies (:class:`LogBatch`).  This is the S-FaaS-style aggregation the
  metering gateway uses to take the RSA operation off the request path:
  one signature per flush window instead of one per request, with
  per-entry inclusion proofs (:meth:`batch_proof` /
  :func:`verify_batched_entry`) so a single receipt stays individually
  auditable.  The hash chain is unaffected — entry bodies (and therefore
  entry hashes) never include the signature.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.tcrypto.hashing import sha256
from repro.tcrypto.merkle import MerkleProof, MerkleTree, verify_proof
from repro.tcrypto.rsa import RSAKeyPair, RSAPublicKey, rsa_sign, rsa_verify


@dataclass(frozen=True)
class ResourceVector:
    """One accounting sample: the three resources the paper meters (§3.5)."""

    weighted_instructions: int
    peak_memory_bytes: int
    memory_integral_page_instructions: int
    io_bytes_in: int
    io_bytes_out: int
    label: str = ""

    @property
    def io_bytes_total(self) -> int:
        return self.io_bytes_in + self.io_bytes_out

    def to_json(self) -> dict:
        return {
            "weighted_instructions": self.weighted_instructions,
            "peak_memory_bytes": self.peak_memory_bytes,
            "memory_integral_page_instructions": self.memory_integral_page_instructions,
            "io_bytes_in": self.io_bytes_in,
            "io_bytes_out": self.io_bytes_out,
            "label": self.label,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ResourceVector":
        return cls(**data)


@dataclass(frozen=True)
class LogEntry:
    """A resource vector chained to its predecessor and signed."""

    sequence: int
    vector: ResourceVector
    workload_hash: bytes
    weight_table_digest: bytes
    previous_hash: bytes
    signature: bytes

    def body(self) -> bytes:
        # memoised: the chain hash, batch Merkle leaves and every verify
        # pass all re-serialize the same immutable fields
        cached = self.__dict__.get("_body")
        if cached is not None:
            return cached
        payload = {
            "sequence": self.sequence,
            "vector": self.vector.to_json(),
            "workload_hash": self.workload_hash.hex(),
            "weight_table_digest": self.weight_table_digest.hex(),
            "previous_hash": self.previous_hash.hex(),
        }
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        object.__setattr__(self, "_body", encoded)
        return encoded

    def entry_hash(self) -> bytes:
        return sha256(self.body())


@dataclass(frozen=True)
class LogBatch:
    """One AE signature over the Merkle root of a window of entry bodies.

    Covers entries ``[start_sequence, end_sequence)``.  The signed body is
    domain-tagged (``"kind": "receipt-batch"``) so a batch signature can
    never be confused with a per-entry signature over the same key.
    """

    start_sequence: int
    end_sequence: int  # exclusive
    merkle_root: bytes
    signature: bytes

    def body(self) -> bytes:
        payload = {
            "kind": "receipt-batch",
            "start_sequence": self.start_sequence,
            "end_sequence": self.end_sequence,
            "merkle_root": self.merkle_root.hex(),
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")


def verify_batched_entry(
    entry: LogEntry,
    batch: LogBatch,
    proof: MerkleProof,
    public_key: RSAPublicKey,
) -> bool:
    """Audit one receipt against its batch: proof + batch signature.

    The privacy-preserving single-receipt path: a tenant holding one entry,
    its batch and an inclusion proof needs nothing else to check the AE
    really signed (a commitment to) this receipt.
    """
    if not batch.start_sequence <= entry.sequence < batch.end_sequence:
        return False
    if proof.leaf_index != entry.sequence - batch.start_sequence:
        return False
    if not verify_proof(entry.body(), proof, batch.merkle_root):
        return False
    unsigned = LogBatch(
        start_sequence=batch.start_sequence,
        end_sequence=batch.end_sequence,
        merkle_root=batch.merkle_root,
        signature=b"",
    )
    return rsa_verify(public_key, unsigned.body(), batch.signature)


def verify_log_batches(
    entries: list[LogEntry],
    batches: list[LogBatch],
    public_key: RSAPublicKey,
) -> tuple[list[str], int]:
    """Check that every unsigned entry is covered by a verifying batch.

    ``entries`` is a contiguous chain segment (any base sequence);
    ``batches`` the batches claimed to cover it.  Returns ``(problems,
    pending)`` where ``pending`` counts *trailing* unsigned entries past
    the last batch — awaiting a flush, incomplete rather than wrong.  Any
    other uncovered unsigned entry, root mismatch or bad batch signature
    is a problem.
    """
    problems: list[str] = []
    covered: set[int] = set()
    base = entries[0].sequence if entries else 0
    last_end = base
    for batch in batches:
        lo, hi = batch.start_sequence - base, batch.end_sequence - base
        if lo < 0 or hi > len(entries) or lo >= hi:
            problems.append(
                f"batch [{batch.start_sequence}, {batch.end_sequence}) falls "
                "outside the provided entries"
            )
            continue
        segment = entries[lo:hi]
        root = MerkleTree([e.body() for e in segment]).root
        if root != batch.merkle_root:
            problems.append(
                f"batch [{batch.start_sequence}, {batch.end_sequence}): "
                "Merkle root does not match the covered entries (tampered)"
            )
            continue
        unsigned = LogBatch(
            start_sequence=batch.start_sequence,
            end_sequence=batch.end_sequence,
            merkle_root=batch.merkle_root,
            signature=b"",
        )
        if not rsa_verify(public_key, unsigned.body(), batch.signature):
            problems.append(
                f"batch [{batch.start_sequence}, {batch.end_sequence}): "
                "batch signature does not verify"
            )
            continue
        covered.update(range(batch.start_sequence, batch.end_sequence))
        last_end = max(last_end, batch.end_sequence)
    pending = 0
    for entry in entries:
        if entry.signature or entry.sequence in covered:
            continue
        if entry.sequence >= last_end:
            pending += 1
        else:
            problems.append(
                f"entry {entry.sequence} is unsigned and not covered by any batch"
            )
    return problems, pending


class ResourceUsageLog:
    """The mutually trusted, verifiable log of a workload's resource usage."""

    GENESIS = b"\x00" * 32

    def __init__(
        self,
        signing_key: RSAKeyPair | None = None,
        batch_window: int | None = None,
    ):
        if batch_window is not None and batch_window < 1:
            raise ValueError("batch_window must be >= 1")
        self._signing_key = signing_key
        self._batch_window = batch_window
        self.entries: list[LogEntry] = []
        #: Batches sealed so far (batched mode only), in coverage order.
        self.batches: list[LogBatch] = []
        self._batch_from = 0  # first sequence not yet covered by a batch
        self._undrained: list[LogBatch] = []

    @property
    def batch_window(self) -> int | None:
        return self._batch_window

    @property
    def head_hash(self) -> bytes:
        if not self.entries:
            return self.GENESIS
        return self.entries[-1].entry_hash()

    def append(
        self,
        vector: ResourceVector,
        workload_hash: bytes,
        weight_table_digest: bytes,
    ) -> LogEntry:
        """Sign and append one accounting sample (producer side).

        In batched mode the entry is appended with an empty signature and
        the pending window is sealed automatically once it reaches
        ``batch_window`` entries — one RSA signature per window, not per
        entry.
        """
        if self._signing_key is None:
            raise RuntimeError("this log handle is verify-only")
        unsigned = LogEntry(
            sequence=len(self.entries),
            vector=vector,
            workload_hash=workload_hash,
            weight_table_digest=weight_table_digest,
            previous_hash=self.head_hash,
            signature=b"",
        )
        if self._batch_window is not None:
            entry = unsigned
            self.entries.append(entry)
            if len(self.entries) - self._batch_from >= self._batch_window:
                self._seal_batch()
            return entry
        entry = LogEntry(
            sequence=unsigned.sequence,
            vector=unsigned.vector,
            workload_hash=unsigned.workload_hash,
            weight_table_digest=unsigned.weight_table_digest,
            previous_hash=unsigned.previous_hash,
            signature=rsa_sign(self._signing_key, unsigned.body()),
        )
        self.entries.append(entry)
        return entry

    # -- batched sealing ---------------------------------------------------------

    def _seal_batch(self) -> LogBatch:
        pending = self.entries[self._batch_from :]
        tree = MerkleTree([e.body() for e in pending])
        unsigned = LogBatch(
            start_sequence=self._batch_from,
            end_sequence=len(self.entries),
            merkle_root=tree.root,
            signature=b"",
        )
        batch = LogBatch(
            start_sequence=unsigned.start_sequence,
            end_sequence=unsigned.end_sequence,
            merkle_root=unsigned.merkle_root,
            signature=rsa_sign(self._signing_key, unsigned.body()),
        )
        self.batches.append(batch)
        self._undrained.append(batch)
        self._batch_from = len(self.entries)
        return batch

    def flush(self) -> list[LogBatch]:
        """Seal all pending entries into a (possibly short) batch.

        The epoch-seal path calls this so batches never straddle an epoch
        boundary.  No-op when nothing is pending or batching is off.
        """
        if self._batch_window is None or self._batch_from >= len(self.entries):
            return []
        return [self._seal_batch()]

    def drain_batches(self) -> list[LogBatch]:
        """Batches sealed since the last drain (consumer handoff)."""
        out = self._undrained
        self._undrained = []
        return out

    def batch_proof(self, sequence: int) -> tuple[LogBatch, MerkleProof]:
        """The covering batch and inclusion proof for one entry."""
        for batch in self.batches:
            if batch.start_sequence <= sequence < batch.end_sequence:
                segment = self.entries[batch.start_sequence : batch.end_sequence]
                tree = MerkleTree([e.body() for e in segment])
                return batch, tree.proof(sequence - batch.start_sequence)
        raise KeyError(f"entry {sequence} is not covered by any sealed batch")

    def verify(
        self,
        public_key: RSAPublicKey,
        expected_head: bytes | None = None,
        expected_entries: int | None = None,
    ) -> bool:
        """Check the hash chain and every signature (either party).

        The chain alone cannot detect *truncation* — dropping a suffix
        leaves a shorter but internally consistent log.  Callers who learned
        the expected head hash (or entry count) out of band — e.g. from an
        epoch seal or a progress report — pass it via ``expected_head`` /
        ``expected_entries`` to close that hole.

        Batched logs verify too: an entry with an empty signature must be
        covered by a verifying :class:`LogBatch` — entries still pending a
        flush make the log *incomplete*, so verification fails until
        :meth:`flush` runs.
        """
        previous = self.GENESIS
        for i, entry in enumerate(self.entries):
            if entry.sequence != i or entry.previous_hash != previous:
                return False
            if entry.signature and not rsa_verify(
                public_key, entry.body(), entry.signature
            ):
                return False
            previous = entry.entry_hash()
        if any(not entry.signature for entry in self.entries):
            problems, pending = verify_log_batches(
                self.entries, self.batches, public_key
            )
            if problems or pending:
                return False
        if expected_head is not None and previous != expected_head:
            return False
        if expected_entries is not None and len(self.entries) != expected_entries:
            return False
        return True

    def totals(self) -> ResourceVector:
        """Aggregate all entries into one vector (sum/max as appropriate)."""
        return ResourceVector(
            weighted_instructions=sum(e.vector.weighted_instructions for e in self.entries),
            peak_memory_bytes=max(
                (e.vector.peak_memory_bytes for e in self.entries), default=0
            ),
            memory_integral_page_instructions=sum(
                e.vector.memory_integral_page_instructions for e in self.entries
            ),
            io_bytes_in=sum(e.vector.io_bytes_in for e in self.entries),
            io_bytes_out=sum(e.vector.io_bytes_out for e in self.entries),
            label="totals",
        )
