"""The two-way sandbox: AccTEE's user-facing API (paper Figs. 1-3).

:class:`TwoWaySandbox` wires the whole protocol together for the two
parties:

1. the *workload provider* compiles (or supplies) a Wasm module;
2. the instrumentation enclave instruments it and signs evidence;
3. the *infrastructure provider* launches the accounting enclave on an SGX
   platform; both parties remotely attest it (quoting enclave + attestation
   service) and check that the AE's log-signing key is bound into the
   attestation report data;
4. workloads execute inside the sandbox; every invocation appends a signed
   entry to the resource usage log, which either party can verify offline
   and price under the agreed policy.

Example::

    from repro import TwoWaySandbox

    sandbox = TwoWaySandbox.deploy()
    workload = sandbox.submit_minic("int square(int x) { return x * x; }")
    result = workload.invoke("square", 12)
    assert sandbox.verify_log()
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.accounting_enclave import (
    AccountingEnclave,
    WorkloadCheckpoint,
    WorkloadResult,
)
from repro.core.cache import InstrumentationCache
from repro.core.instrumentation_enclave import InstrumentationEnclave, InstrumentationEvidence
from repro.core.policy import MemoryPolicy, PricingPolicy
from repro.core.resource_log import ResourceUsageLog, ResourceVector
from repro.instrument.weights import UNIT_WEIGHTS, WeightTable, cycle_weight_table
from repro.obs.trace import span
from repro.sgx.attestation import (
    AttestationError,
    AttestationService,
    QuotingEnclave,
    remote_attest,
    verify_service_report,
)
from repro.sgx.enclave import SGXPlatform
from repro.tcrypto.hashing import sha256
from repro.wasm.interpreter import ExecutionLimits
from repro.wasm.module import Module


@dataclass
class SandboxConfig:
    """Deployment knobs for a two-way sandbox."""

    level: str = "loop-based"
    weighted: bool = False  # False: unit weights; True: cycle-calibrated weights
    memory_policy: MemoryPolicy = MemoryPolicy.PEAK
    pricing: PricingPolicy = field(default_factory=PricingPolicy)
    max_instructions: int | None = None  # the sandbox's resource cap
    attestation_nonce: bytes = b"acctee-deploy-nonce"
    engine: str | None = None  # Wasm execution engine ("predecode"/"legacy")

    def weight_table(self) -> WeightTable:
        return cycle_weight_table() if self.weighted else UNIT_WEIGHTS


@dataclass
class Workload:
    """A loaded workload handle bound to one sandbox."""

    sandbox: "TwoWaySandbox"
    module: Module
    evidence: InstrumentationEvidence
    counter_export: str

    def invoke(self, export: str, *args, input_data: bytes = b"", label: str = "") -> WorkloadResult:
        return self.sandbox.ae.invoke(export, *args, input_data=input_data, label=label)

    def snapshot(
        self, export: str, *args, snapshot_at: int, input_data: bytes = b"", label: str = ""
    ) -> WorkloadResult | WorkloadCheckpoint:
        """Invoke, suspending at the first observation point >= ``snapshot_at``.

        Returns a :class:`WorkloadCheckpoint` (consumed resources already
        checkpoint-billed into the log) if the run was captured, or a plain
        :class:`WorkloadResult` if it finished first.
        """
        return self.sandbox.ae.invoke(
            export,
            *args,
            input_data=input_data,
            label=label,
            snapshot_at=snapshot_at,
        )


class TwoWaySandbox:
    """An attested deployment of IE + AE on one simulated SGX platform."""

    def __init__(
        self,
        config: SandboxConfig,
        platform: SGXPlatform,
        ie: InstrumentationEnclave,
        ae: AccountingEnclave,
        qe: QuotingEnclave,
        attestation_service: AttestationService,
    ):
        self.config = config
        self.platform = platform
        self.ie = ie
        self.ae = ae
        self.qe = qe
        self.attestation_service = attestation_service
        #: Instrumented-module cache (paper §3.3): resubmitting the same
        #: module skips the IE pass.  Shared-cache deployments (the metering
        #: gateway) swap in their own instance.
        self.cache = InstrumentationCache(ie)

    # -- deployment -------------------------------------------------------------

    @classmethod
    def deploy(
        cls,
        config: SandboxConfig | None = None,
        platform: SGXPlatform | None = None,
        attestation_service: AttestationService | None = None,
    ) -> "TwoWaySandbox":
        """Launch the enclaves, provision attestation and attest the AE.

        Raises :class:`~repro.sgx.attestation.AttestationError` if either
        party would reject the deployment.
        """
        with span("sandbox.deploy"):
            config = config or SandboxConfig()
            platform = platform or SGXPlatform()
            service = attestation_service or AttestationService()
            weight_table = config.weight_table()

            ie = InstrumentationEnclave(weight_table=weight_table, level=config.level)
            platform.launch(ie)
            ae = AccountingEnclave(
                ie_public_key=ie.evidence_public_key,
                ie_measurement=ie.mrenclave,
                weight_table=weight_table,
                memory_policy=config.memory_policy,
                limits=ExecutionLimits(max_instructions=config.max_instructions),
                engine=config.engine,
            )
            platform.launch(ae)
            qe = QuotingEnclave()
            platform.launch(qe)
            service.provision(qe)

            sandbox = cls(config, platform, ie, ae, qe, service)
            if not sandbox.attest(config.attestation_nonce):
                raise AttestationError("accounting enclave failed remote attestation")
            return sandbox

    def attest(self, nonce: bytes) -> bool:
        """Remote-attest the AE and check the log-key binding (both parties)."""
        with span("sandbox.attest", enclave=self.ae.name):
            user_data = self.ae.report_data_binding()
            verdict = remote_attest(
                self.ae, self.qe, self.attestation_service, nonce, user_data
            )
            if not verdict.ok:
                return False
            if not verify_service_report(self.attestation_service.public_key, verdict):
                return False
            if verdict.quote.mrenclave != self.ae.mrenclave:
                return False
            # freshness + key binding: report data must hash this nonce and the
            # AE's log-signing key fingerprint
            expected = sha256(sha256(nonce + user_data))
            actual = sha256(verdict.quote.report_data)
            return expected == actual

    # -- workload intake ------------------------------------------------------------

    def submit_module(self, module: Module) -> Workload:
        """Instrument (cached) and admit a raw WebAssembly module."""
        with span("sandbox.submit"):
            instrumented, evidence, counter_export = self.cache.instrument(module)
            self.ae.load_workload(instrumented, evidence)
        return Workload(
            sandbox=self,
            module=instrumented,
            evidence=evidence,
            counter_export=counter_export,
        )

    def submit_wat(self, source: str) -> Workload:
        from repro.wasm.wat_parser import parse_wat

        return self.submit_module(parse_wat(source))

    def submit_minic(self, source: str) -> Workload:
        from repro.minic import compile_source

        return self.submit_module(compile_source(source))

    # -- snapshot / resume --------------------------------------------------------------

    def snapshot(
        self,
        export: str,
        *args,
        snapshot_at: int,
        input_data: bytes = b"",
        label: str = "",
    ) -> WorkloadResult | WorkloadCheckpoint:
        """Run the loaded workload, suspending at ``snapshot_at`` (see AE docs)."""
        return self.ae.invoke(
            export, *args, input_data=input_data, label=label, snapshot_at=snapshot_at
        )

    def resume(
        self, checkpoint: WorkloadCheckpoint, snapshot_at: int | None = None
    ) -> WorkloadResult | WorkloadCheckpoint:
        """Resume a checkpointed workload (possibly under a different engine)."""
        return self.ae.resume(checkpoint, snapshot_at=snapshot_at)

    # -- accounting ---------------------------------------------------------------------

    @property
    def log(self) -> ResourceUsageLog:
        return self.ae.log

    def verify_log(self) -> bool:
        """Offline verification either party can run on the log."""
        return self.log.verify(self.ae.log_public_key)

    def totals(self) -> ResourceVector:
        return self.log.totals()

    def invoice(self) -> float:
        """Price the log's totals under the configured pricing policy."""
        totals = self.totals()
        return self.config.pricing.price(
            weighted_instructions=totals.weighted_instructions,
            peak_memory_bytes=totals.peak_memory_bytes,
            memory_integral_page_instructions=totals.memory_integral_page_instructions,
            io_bytes=totals.io_bytes_total,
        )
