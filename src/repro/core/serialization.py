"""JSON serialisation of the protocol artefacts exchanged between parties.

The two parties exchange three kinds of artefacts out of band: the
instrumentation *evidence*, attestation *verification reports* and the
signed *resource usage log*.  This module gives each a stable JSON encoding
plus an offline verifier, so either party can archive a log and re-check it
later (or hand it to an auditor) without any live enclave.
"""

from __future__ import annotations

import json

from repro.core.instrumentation_enclave import InstrumentationEvidence
from repro.core.resource_log import LogEntry, ResourceUsageLog, ResourceVector
from repro.tcrypto.rsa import RSAPublicKey


# -- public keys ---------------------------------------------------------------


def public_key_to_json(key: RSAPublicKey) -> dict:
    return {"n": hex(key.n), "e": key.e}


def public_key_from_json(data: dict) -> RSAPublicKey:
    return RSAPublicKey(n=int(data["n"], 16), e=int(data["e"]))


# -- evidence --------------------------------------------------------------------


def evidence_to_json(evidence: InstrumentationEvidence) -> dict:
    return {
        "input_hash": evidence.input_hash.hex(),
        "output_hash": evidence.output_hash.hex(),
        "level": evidence.level,
        "weight_table_digest": evidence.weight_table_digest.hex(),
        "counter_global_index": evidence.counter_global_index,
        "ie_measurement": evidence.ie_measurement.hex(),
        "signature": evidence.signature.hex(),
    }


def evidence_from_json(data: dict) -> InstrumentationEvidence:
    return InstrumentationEvidence(
        input_hash=bytes.fromhex(data["input_hash"]),
        output_hash=bytes.fromhex(data["output_hash"]),
        level=data["level"],
        weight_table_digest=bytes.fromhex(data["weight_table_digest"]),
        counter_global_index=int(data["counter_global_index"]),
        ie_measurement=bytes.fromhex(data["ie_measurement"]),
        signature=bytes.fromhex(data["signature"]),
    )


# -- resource logs ------------------------------------------------------------------


def log_to_json(log: ResourceUsageLog, public_key: RSAPublicKey | None = None) -> dict:
    """Serialise a log (optionally bundling the signer's public key)."""
    out: dict = {
        "entries": [
            {
                "sequence": entry.sequence,
                "vector": entry.vector.to_json(),
                "workload_hash": entry.workload_hash.hex(),
                "weight_table_digest": entry.weight_table_digest.hex(),
                "previous_hash": entry.previous_hash.hex(),
                "signature": entry.signature.hex(),
            }
            for entry in log.entries
        ]
    }
    if public_key is not None:
        out["public_key"] = public_key_to_json(public_key)
    return out


def log_from_json(data: dict) -> tuple[ResourceUsageLog, RSAPublicKey | None]:
    """Deserialise a log into a verify-only handle (no signing key)."""
    log = ResourceUsageLog(signing_key=None)
    for raw in data["entries"]:
        log.entries.append(
            LogEntry(
                sequence=int(raw["sequence"]),
                vector=ResourceVector.from_json(raw["vector"]),
                workload_hash=bytes.fromhex(raw["workload_hash"]),
                weight_table_digest=bytes.fromhex(raw["weight_table_digest"]),
                previous_hash=bytes.fromhex(raw["previous_hash"]),
                signature=bytes.fromhex(raw["signature"]),
            )
        )
    key = None
    if "public_key" in data:
        key = public_key_from_json(data["public_key"])
    return log, key


def dump_log(log: ResourceUsageLog, public_key: RSAPublicKey, path: str) -> None:
    """Write a log + key bundle to a JSON file."""
    with open(path, "w") as handle:
        json.dump(log_to_json(log, public_key), handle, indent=2)


def verify_log_file(path: str, public_key: RSAPublicKey | None = None) -> tuple[bool, ResourceVector]:
    """Offline verification of a dumped log; returns (ok, totals).

    If no key is passed, the bundled key is used — callers who obtained the
    expected key through attestation should pass it explicitly so that a
    bundle with a substituted key fails.
    """
    with open(path) as handle:
        data = json.load(handle)
    log, bundled = log_from_json(data)
    key = public_key or bundled
    if key is None:
        return False, log.totals()
    return log.verify(key), log.totals()
