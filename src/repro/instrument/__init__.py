"""AccTEE's instrumentation passes: the paper's core contribution.

The instrumentation enclave takes a WebAssembly module and injects a
*weighted instruction counter*: a fresh mutable ``i64`` global incremented at
the end of each basic block by the total weight of the block's instructions
(paper §3.5).  Two static optimisations elide most increments while keeping
the final count exact (§3.6):

* **flow-based** — counter updates are folded along dominating edges and the
  minimum over a join's predecessors is pushed into the join block (Fig. 4);
* **loop-based** — updates for control-flow-independent loop bodies are
  hoisted out of the loop: the pass identifies a loop variable written
  exactly once per iteration by a constant stride and reconstructs the
  iteration count after the loop.

Correctness invariant (enforced by the test suite): for any module and input,
the injected counter after execution equals the weighted number of
instructions the uninstrumented module *visits* on the same input, as counted
by :class:`repro.wasm.interpreter.ExecutionStats`.
"""

import enum

from repro.instrument.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.instrument.weights import WeightTable, UNIT_WEIGHTS, cycle_weight_table
from repro.instrument.passes import (
    InstrumentationResult,
    instrument_module,
    COUNTER_EXPORT,
)
from repro.instrument.multiclass import (
    DEFAULT_CLASSES,
    MulticlassResult,
    instrument_module_multiclass,
)


class InstrumentationLevel(enum.Enum):
    """The three instrumentation variants evaluated in the paper (Fig. 10)."""

    NONE = "none"
    NAIVE = "naive"
    FLOW = "flow-based"
    LOOP = "loop-based"


__all__ = [
    "InstrumentationLevel",
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "WeightTable",
    "UNIT_WEIGHTS",
    "cycle_weight_table",
    "InstrumentationResult",
    "instrument_module",
    "COUNTER_EXPORT",
    "DEFAULT_CLASSES",
    "MulticlassResult",
    "instrument_module_multiclass",
]
