"""Control-flow graph construction over flat WebAssembly function bodies.

The CFG mirrors *exactly* the visit semantics of
:mod:`repro.wasm.interpreter`:

* a branch to a ``block``/``if`` label lands on the matching ``end`` marker;
* a branch to a ``loop`` label lands on the ``loop`` instruction itself;
* the false arm of an ``if`` without ``else`` lands on the ``end`` marker;
* falling out of a true arm lands on the ``end`` via the ``else`` marker
  (the ``else`` itself is part of the true arm's block);
* ``return``/``unreachable`` and branches past the outermost label edge to
  the virtual exit node.

Because of this mirroring, the set of instructions attributed to a basic
block is precisely the set the interpreter visits whenever that block
executes — which is what makes the injected counters exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wasm.instructions import Instr
from repro.wasm.interpreter import build_structure_map

#: Virtual node id for the function exit.
EXIT = -1

#: Instructions that end a basic block.
_TERMINATORS = frozenset({"br", "br_if", "br_table", "return", "unreachable", "if", "else"})


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions [start, end] inclusive."""

    index: int  # block id == index of first instruction
    start: int
    end: int
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def instructions(self, body: list[Instr]) -> list[Instr]:
        return body[self.start : self.end + 1]

    @property
    def size(self) -> int:
        return self.end - self.start + 1


@dataclass
class ControlFlowGraph:
    """Basic blocks over one function body, keyed by start index."""

    body: list[Instr]
    blocks: dict[int, BasicBlock]
    entry: int

    def block_of(self, instr_index: int) -> BasicBlock:
        """The block containing the given instruction index."""
        candidates = [b for b in self.blocks.values() if b.start <= instr_index <= b.end]
        if not candidates:
            raise KeyError(f"no block contains instruction {instr_index}")
        return candidates[0]

    def reachable_blocks(self) -> set[int]:
        """Block ids reachable from the entry."""
        seen: set[int] = set()
        work = [self.entry]
        while work:
            current = work.pop()
            if current in seen or current == EXIT:
                continue
            seen.add(current)
            work.extend(self.blocks[current].successors)
        return seen


def _branch_target(
    body: list[Instr],
    structs,
    pc: int,
    depth: int,
    enclosing: list[int],
) -> int:
    """Index the interpreter jumps to for a branch of ``depth`` at ``pc``.

    ``enclosing`` is the stack of open structured-instruction indices at pc.
    Returns EXIT when the branch leaves the function.
    """
    if depth >= len(enclosing):
        return EXIT
    opener = enclosing[-1 - depth]
    if body[opener].name == "loop":
        return opener
    return structs[opener].end


def build_cfg(body: list[Instr]) -> ControlFlowGraph:
    """Build the CFG of one function body."""
    n = len(body)
    structs = build_structure_map(body)

    # Pre-compute the stack of enclosing structured instructions at each index.
    enclosing_at: list[list[int]] = []
    stack: list[int] = []
    for i, instr in enumerate(body):
        if instr.name == "end":
            if stack:
                stack.pop()
        enclosing_at.append(list(stack))
        if instr.name in ("block", "loop", "if"):
            stack.append(i)

    # -- leaders ---------------------------------------------------------------
    leaders: set[int] = {0} if n else set()
    for i, instr in enumerate(body):
        name = instr.name
        if name == "loop":
            leaders.add(i)  # back-edge target: header starts a block
        elif name == "if":
            info = structs[i]
            leaders.add(i + 1)
            leaders.add(info.else_ + 1 if info.else_ is not None else info.end)
        elif name == "else":
            leaders.add(structs_end_of_else(structs, body, i))
            leaders.add(i + 1)
        elif name in ("br", "br_if"):
            target = _branch_target(body, structs, i, instr.args[0], enclosing_at[i])
            if target != EXIT:
                leaders.add(target)
            if i + 1 < n:
                leaders.add(i + 1)
        elif name == "br_table":
            depths, default = instr.args
            for depth in tuple(depths) + (default,):
                target = _branch_target(body, structs, i, depth, enclosing_at[i])
                if target != EXIT:
                    leaders.add(target)
            if i + 1 < n:
                leaders.add(i + 1)
        elif name in ("return", "unreachable"):
            if i + 1 < n:
                leaders.add(i + 1)
    leaders = {l for l in leaders if l < n}

    # -- blocks ------------------------------------------------------------------
    ordered = sorted(leaders)
    blocks: dict[int, BasicBlock] = {}
    for idx, start in enumerate(ordered):
        hard_end = ordered[idx + 1] - 1 if idx + 1 < len(ordered) else n - 1
        end = hard_end
        for j in range(start, hard_end + 1):
            if body[j].name in _TERMINATORS:
                end = j
                break
        blocks[start] = BasicBlock(index=start, start=start, end=end)

    # A terminator mid-range splits the leader run: the tail is dead code but
    # must still live in a block (it may contain increments targets).  Create
    # blocks for uncovered gaps.
    covered: set[int] = set()
    for b in blocks.values():
        covered.update(range(b.start, b.end + 1))
    i = 0
    while i < n:
        if i not in covered:
            start = i
            while i < n and i not in covered and body[i].name not in _TERMINATORS:
                i += 1
            if i < n and i not in covered and body[i].name in _TERMINATORS:
                end = i
                i += 1
            else:
                end = i - 1
            blocks[start] = BasicBlock(index=start, start=start, end=end)
            covered.update(range(start, end + 1))
        else:
            i += 1

    # -- edges ---------------------------------------------------------------------
    def add_edge(src: BasicBlock, dst_index: int) -> None:
        src.successors.append(dst_index)
        if dst_index != EXIT:
            target_block = blocks[dst_index]
            target_block.predecessors.append(src.index)

    for block in blocks.values():
        t = block.end
        instr = body[t]
        name = instr.name
        if name == "br":
            add_edge(block, _resolve(blocks, body, structs, t, instr.args[0], enclosing_at))
        elif name == "br_if":
            add_edge(block, _resolve(blocks, body, structs, t, instr.args[0], enclosing_at))
            add_edge(block, t + 1 if t + 1 < n else EXIT)
        elif name == "br_table":
            depths, default = instr.args
            seen_targets: set[int] = set()
            for depth in tuple(depths) + (default,):
                target = _resolve(blocks, body, structs, t, depth, enclosing_at)
                if target not in seen_targets:
                    seen_targets.add(target)
                    add_edge(block, target)
        elif name in ("return", "unreachable"):
            add_edge(block, EXIT)
        elif name == "if":
            info = structs[t]
            add_edge(block, t + 1)
            add_edge(block, info.else_ + 1 if info.else_ is not None else info.end)
        elif name == "else":
            add_edge(block, structs_end_of_else(structs, body, t))
        else:  # fall-through
            add_edge(block, t + 1 if t + 1 < n else EXIT)

    entry = 0 if n else EXIT
    return ControlFlowGraph(body=body, blocks=blocks, entry=entry)


def _resolve(blocks, body, structs, pc: int, depth: int, enclosing_at) -> int:
    return _branch_target(body, structs, pc, depth, enclosing_at[pc])


def structs_end_of_else(structs, body: list[Instr], else_index: int) -> int:
    """The ``end`` index of the if/else construct owning the ``else`` at ``else_index``."""
    for opener, info in structs.items():
        if info.else_ == else_index:
            return info.end
    raise KeyError(f"no if owns else at {else_index}")
