"""Per-class instruction counters: runtime-adjustable weights (§3.7).

The paper notes that instruction weights should be adjustable "without
requiring the release of new enclaves".  With a single weighted counter the
weights are baked in at instrumentation time; this pass instead injects one
counter per instruction *class* (e.g. cheap ALU / float / division /
memory), so the parties can re-price past executions under new per-class
rates — the weights move from the instrumented code into the (signed,
versioned) pricing policy.

Supports the naive and flow-based placement strategies; loop hoisting is a
single-counter optimisation and is intentionally out of scope here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.instrument.cfg import build_cfg
from repro.instrument.passes import COUNTER_EXPORT, _flow_optimise, _increment_seq, _insertion_point
from repro.wasm.instructions import INSTRUCTIONS_BY_NAME, Instr
from repro.wasm.module import Export, Global, Module
from repro.wasm.types import GlobalType, ValType

#: A sensible default partition by cost character (see Fig. 7's bands).
DEFAULT_CLASSES: dict[str, frozenset[str]] = {
    "cheap": frozenset(
        name
        for name, op in INSTRUCTIONS_BY_NAME.items()
        if op.category.value in ("control", "parametric", "variable", "const", "comparison")
    ),
    "alu": frozenset(
        name
        for name, op in INSTRUCTIONS_BY_NAME.items()
        if op.category.value in ("numeric", "conversion")
        and "div" not in name and "rem" not in name and "sqrt" not in name
    ),
    "division": frozenset(
        name for name in INSTRUCTIONS_BY_NAME
        if "div" in name or "rem" in name or "sqrt" in name
    ),
    "memory": frozenset(
        name for name, op in INSTRUCTIONS_BY_NAME.items() if op.category.value == "memory"
    ),
}


@dataclass
class MulticlassResult:
    """Instrumented module plus the per-class counter locations."""

    module: Module
    level: str
    classes: dict[str, frozenset[str]]
    counter_globals: dict[str, int]

    def counter_export(self, class_name: str) -> str:
        return f"{COUNTER_EXPORT}_{class_name}"

    def read_counts(self, instance) -> dict[str, int]:
        """Read all class counters from a finished instance."""
        return {
            name: int(instance.globals[index].value)
            for name, index in self.counter_globals.items()
        }

    @staticmethod
    def price(counts: dict[str, int], rates: dict[str, float]) -> float:
        """Re-price a recorded count vector under (new) per-class rates."""
        return sum(rates.get(name, 0.0) * count for name, count in counts.items())


def instrument_module_multiclass(
    module: Module,
    classes: dict[str, frozenset[str]] | None = None,
    level: str = "flow-based",
) -> MulticlassResult:
    """Inject one instruction counter per class.

    Classes need not partition the instruction set, but instructions in no
    class are simply not counted, and overlapping classes count twice —
    validation of the classification is the caller's policy decision.
    """
    if level not in ("naive", "flow-based"):
        raise ValueError("multiclass instrumentation supports naive/flow-based only")
    classes = dict(classes or DEFAULT_CLASSES)
    for name, members in classes.items():
        unknown = members - set(INSTRUCTIONS_BY_NAME)
        if unknown:
            raise ValueError(f"class {name!r} references unknown instructions {sorted(unknown)[:3]}")

    out = module.clone()
    counter_globals: dict[str, int] = {}
    existing_exports = {e.name for e in out.exports}
    for class_name in classes:
        index = out.num_imported_globals + len(out.globals)
        out.globals.append(
            Global(GlobalType(ValType.I64, mutable=True), [Instr("i64.const", (0,))])
        )
        export_name = f"{COUNTER_EXPORT}_{class_name}"
        while export_name in existing_exports:
            export_name += "_"
        existing_exports.add(export_name)
        out.exports.append(Export(export_name, "global", index))
        counter_globals[class_name] = index

    for func in out.funcs:
        if not func.body:
            continue
        cfg = build_cfg(func.body)
        per_class_increments: dict[str, dict[int, int]] = {}
        for class_name, members in classes.items():
            increments = {
                block.index: sum(
                    1 for i in block.instructions(func.body) if i.name in members
                )
                for block in cfg.blocks.values()
            }
            if level == "flow-based":
                _flow_optimise(cfg, increments, frozen=set())
            per_class_increments[class_name] = increments

        insertions: list[tuple[int, list[Instr]]] = []
        for block in cfg.blocks.values():
            sequence: list[Instr] = []
            for class_name in classes:
                amount = per_class_increments[class_name].get(block.index, 0)
                if amount > 0:
                    sequence += _increment_seq(counter_globals[class_name], amount)
            if sequence:
                insertions.append((_insertion_point(block, func.body), sequence))
        for position, sequence in sorted(insertions, key=lambda p: p[0], reverse=True):
            func.body[position:position] = sequence

    return MulticlassResult(
        module=out, level=level, classes=classes, counter_globals=counter_globals
    )
