"""Counter-injection passes: naive, flow-based and loop-based (paper §3.5-3.6).

All three passes share the same skeleton: build the CFG of every function,
attribute to each basic block the total weight of its instructions, decide
*where* increments go (this is where the optimisation levels differ), then
splice stack-neutral increment sequences

    global.get $c · i64.const w · i64.add · global.set $c

into the bodies.  The counter global is appended at a fresh index — since
WebAssembly ``global.set`` operands are compile-time immediates, pre-existing
workload code cannot name it, which is the paper's isolation argument for why
the workload cannot tamper with its own accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.instrument.cfg import EXIT, BasicBlock, ControlFlowGraph, build_cfg
from repro.instrument.weights import UNIT_WEIGHTS, WeightTable
from repro.wasm.instructions import Instr
from repro.wasm.interpreter import build_structure_map
from repro.wasm.module import Export, Function, Global, Module
from repro.wasm.types import GlobalType, ValType

#: Export name under which the counter global is published.
COUNTER_EXPORT = "__acctee_counter"


@dataclass
class LoopHoist:
    """One loop whose per-iteration increment was hoisted past the loop exit."""

    func_index: int
    loop_index: int
    variable: int  # local index of the loop variable
    stride: int
    increasing: bool
    valtype: ValType  # type of the loop variable (i32 or i64)
    per_iteration_weight: int
    constant_weight: int  # weight charged once per region entry (pattern B header)
    capture_local: int  # fresh local storing the variable's pre-loop value
    capture_point: int  # instruction index before which the capture is inserted
    payoff_point: int  # instruction index before which the reconstruction goes


@dataclass
class InstrumentationResult:
    """The instrumented module plus everything the evidence needs to describe."""

    module: Module
    level: str
    weight_table: WeightTable
    counter_global_index: int
    increments_emitted: int
    increments_naive: int
    hoisted_loops: int

    @property
    def counter_export(self) -> str:
        return COUNTER_EXPORT


# ---------------------------------------------------------------------------
# Flow-based optimisation
# ---------------------------------------------------------------------------


def _flow_optimise(
    cfg: ControlFlowGraph, increments: dict[int, int], frozen: set[int]
) -> None:
    """Apply the two Fig. 4 transformations to the per-block increments.

    ``frozen`` blocks (loop-hoisted ones) take part in neither direction.
    Both transformations preserve the invariant that the total increment
    charged along any execution path is unchanged.
    """
    blocks = cfg.blocks
    changed = True
    while changed:
        changed = False

        # (1) fold a block into its successors when every successor can only
        # be entered from this block and control always continues to one of
        # them (no EXIT successor, no self-loop).
        for block in blocks.values():
            if block.index in frozen or increments.get(block.index, 0) == 0:
                continue
            succs = set(block.successors)
            if not succs or EXIT in succs or block.index in succs:
                continue
            if any(s in frozen for s in succs):
                continue
            if any(set(blocks[s].predecessors) != {block.index} for s in succs):
                continue
            amount = increments[block.index]
            for s in succs:
                increments[s] = increments.get(s, 0) + amount
            increments[block.index] = 0
            changed = True

        # (2) push the minimum over a join's predecessors into the join:
        # sound when every predecessor's *only* successor is the join.
        for block in blocks.values():
            if block.index in frozen:
                continue
            preds = set(block.predecessors)
            if len(preds) < 2 or block.index == cfg.entry or block.index in preds:
                continue
            if any(p in frozen for p in preds):
                continue
            if any(set(blocks[p].successors) != {block.index} for p in preds):
                continue
            minimum = min(increments.get(p, 0) for p in preds)
            if minimum == 0:
                continue
            for p in preds:
                increments[p] -= minimum
            increments[block.index] = increments.get(block.index, 0) + minimum
            changed = True


# ---------------------------------------------------------------------------
# Loop-based optimisation
# ---------------------------------------------------------------------------


def _relative_depths(body: list[Instr], start: int, end: int) -> list[int]:
    """Control depth of each instruction in body[start:end] relative to start.

    Depth 0 instructions execute exactly once per pass through the region;
    instructions inside ``if``/``else`` arms are deeper.  Conventions match
    the interpreter's visit semantics: the ``if`` marker and each construct's
    ``end`` marker are at the *outer* depth (always visited), while ``else``
    belongs to the then-arm it terminates.
    """
    depths: list[int] = []
    depth = 0
    for i in range(start, end):
        name = body[i].name
        if name == "end":
            depth = max(0, depth - 1)
            depths.append(depth)
        elif name in ("if", "block", "loop"):
            depths.append(depth)
            depth += 1
        else:  # 'else' stays at arm depth
            depths.append(depth)
    return depths


def _top_level_weight(
    body: list[Instr], start: int, end: int, weights: WeightTable
) -> int:
    """Weight of the control-flow-independent (depth-0) instructions."""
    depths = _relative_depths(body, start, end)
    return sum(
        weights.weight(body[start + k].name)
        for k, d in enumerate(depths)
        if d == 0
    )


def _find_loop_variable(
    body: list[Instr], start: int, end: int, func: Function, module: Module
) -> tuple[int, int, bool, ValType] | None:
    """Find the loop variable in body[start:end] per the paper's heuristic.

    Looks for exactly one write (``local.set``) to some local preceded by the
    pattern ``local.get v · const K · add|sub``, with the whole pattern on
    the always-executed (depth-0) path; any local written more than once —
    or written through ``local.tee`` — disqualifies itself.  Returns
    (local index, stride, increasing, valtype) or None.
    """
    depths = _relative_depths(body, start, end)
    writes: dict[int, list[int]] = {}
    for i in range(start, end):
        if body[i].name in ("local.set", "local.tee"):
            writes.setdefault(body[i].args[0], []).append(i)

    functype = module.types[func.type_index]
    local_types = tuple(functype.params) + tuple(func.locals)

    candidates: list[tuple[int, int, bool, ValType]] = []
    for var, positions in writes.items():
        if len(positions) != 1:
            continue
        i = positions[0]
        if body[i].name != "local.set":
            continue
        if i - 3 < start:
            continue
        # the whole get/const/op/set pattern must run on every iteration
        if any(depths[j - start] != 0 for j in range(i - 3, i + 1)):
            continue
        get, const, op = body[i - 3], body[i - 2], body[i - 1]
        if get.name != "local.get" or get.args[0] != var:
            continue
        vt = local_types[var]
        if vt not in (ValType.I32, ValType.I64):
            continue
        if const.name != f"{vt.value}.const":
            continue
        if op.name == f"{vt.value}.add":
            increasing = True
        elif op.name == f"{vt.value}.sub":
            increasing = False
        else:
            continue
        stride = const.args[0]
        if stride == 0 or stride >= 1 << (vt.bits - 1):
            continue  # zero or negative-looking strides are not safe to invert
        candidates.append((var, stride, increasing, vt))
    if not candidates:
        return None
    # any qualifying variable counts iterations exactly (written once per
    # iteration on the depth-0 path); prefer the smallest stride to minimise
    # wrap-around exposure
    return min(candidates, key=lambda c: (c[1], c[0]))


def _find_hoistable_loops(
    module: Module,
    func_index: int,
    cfg: ControlFlowGraph,
    structs,
    weight_table: WeightTable,
) -> list[LoopHoist]:
    """Identify innermost loops matching the two supported shapes.

    Pattern A (do-while): the only branch in the region is a backward
    ``br_if 0``; the depth-0 instructions from the ``loop`` marker through
    that branch run once per iteration.

    Pattern B (while): a single exiting ``br_if d`` (d >= 1) targeting an
    enclosing *block*, followed by the body and a backward ``br 0``; the
    header runs n+1 times and the body n times.  The reconstruction code is
    placed at the branch target (the enclosing block's ``end``), which the
    CFG must show is reachable only through this exit.

    Loop bodies may contain ``if``/``else`` constructs: only the control-
    flow-independent (depth-0) portion is hoisted, and the conditional arms
    keep their ordinary per-block increments — this is exactly the paper's
    "only applies to control-flow independent instructions inside the loop
    body" restriction.
    """
    body = cfg.body
    func = module.funcs[func_index]
    hoists: list[LoopHoist] = []

    for loop_index, info in structs.items():
        if body[loop_index].name != "loop":
            continue
        end_index = info.end
        region = body[loop_index + 1 : end_index]
        # innermost loops only; conditionals are fine, nested loops/blocks
        # and calls are not
        if any(i.name in ("block", "loop", "call", "call_indirect") for i in region):
            continue
        depths = _relative_depths(body, loop_index + 1, end_index)
        branches = [
            (loop_index + 1 + k, instr)
            for k, instr in enumerate(region)
            if instr.name in ("br", "br_if", "br_table", "return", "unreachable")
        ]
        # every branch must be on the always-executed path
        if any(depths[pos - (loop_index + 1)] != 0 for pos, _ in branches):
            continue

        hoist = None
        if len(branches) == 1:
            pos, instr = branches[0]
            if instr.name == "br_if" and instr.args[0] == 0:
                hoist = _try_pattern_a(
                    module, func, func_index, cfg, weight_table,
                    loop_index, end_index, pos,
                )
        elif len(branches) == 2:
            (pos1, b1), (pos2, b2) = branches
            if (
                b1.name == "br_if"
                and b1.args[0] >= 1
                and b2.name == "br"
                and b2.args[0] == 0
                and pos2 == end_index - 1
            ):
                hoist = _try_pattern_b(
                    module, func, func_index, cfg, structs, weight_table,
                    loop_index, end_index, pos1,
                )
        if hoist is not None:
            hoists.append(hoist)
    return hoists


def _region_weight(body: list[Instr], start: int, end: int, weights: WeightTable) -> int:
    return sum(weights.weight(body[i].name) for i in range(start, end + 1))


def _try_pattern_a(
    module: Module,
    func: Function,
    func_index: int,
    cfg: ControlFlowGraph,
    weights: WeightTable,
    loop_index: int,
    end_index: int,
    backedge: int,
) -> LoopHoist | None:
    body = cfg.body
    found = _find_loop_variable(body, loop_index + 1, backedge, func, module)
    if found is None:
        return None
    var, stride, increasing, vt = found
    # the per-iteration segment: the depth-0 instructions from the loop
    # marker through the backward br_if inclusive
    per_iter = weights.weight("loop") + _top_level_weight(
        body, loop_index + 1, backedge + 1, weights
    )
    capture_local = _fresh_local(module, func, vt)
    return LoopHoist(
        func_index=func_index,
        loop_index=loop_index,
        variable=var,
        stride=stride,
        increasing=increasing,
        valtype=vt,
        per_iteration_weight=per_iter,
        constant_weight=0,
        capture_local=capture_local,
        capture_point=loop_index,
        payoff_point=backedge + 1,
    )


def _try_pattern_b(
    module: Module,
    func: Function,
    func_index: int,
    cfg: ControlFlowGraph,
    structs,
    weights: WeightTable,
    loop_index: int,
    end_index: int,
    exit_branch: int,
) -> LoopHoist | None:
    body = cfg.body
    # resolve the exit target: must be an enclosing block's end marker
    depth = body[exit_branch].args[0]
    enclosing: list[int] = []
    stack: list[int] = []
    for i, instr in enumerate(body):
        if i == exit_branch:
            enclosing = list(stack)
            break
        if instr.name == "end" and stack:
            stack.pop()
        if instr.name in ("block", "loop", "if"):
            stack.append(i)
    if depth >= len(enclosing):
        return None  # exits the function: cannot place reconstruction code
    opener = enclosing[-1 - depth]
    if body[opener].name != "block":
        return None
    target_end = structs[opener].end

    # the target end marker must be reachable only through this exit branch
    target_block = cfg.blocks.get(target_end)
    exit_block = cfg.block_of(exit_branch)
    if target_block is None:
        return None
    live_preds = {
        p for p in set(target_block.predecessors)
        if p in cfg.reachable_blocks()
    }
    if live_preds != {exit_block.index}:
        return None

    found = _find_loop_variable(body, exit_branch + 1, end_index - 1, func, module)
    if found is None:
        return None
    var, stride, increasing, vt = found

    header_weight = weights.weight("loop") + _top_level_weight(
        body, loop_index + 1, exit_branch + 1, weights
    )
    body_weight = _top_level_weight(body, exit_branch + 1, end_index, weights)
    capture_local = _fresh_local(module, func, vt)
    return LoopHoist(
        func_index=func_index,
        loop_index=loop_index,
        variable=var,
        stride=stride,
        increasing=increasing,
        valtype=vt,
        per_iteration_weight=header_weight + body_weight,
        constant_weight=header_weight,
        capture_local=capture_local,
        capture_point=loop_index,
        # the exit branch lands *on* the end marker, so reconstruction code
        # must sit right after it (still covered by the single-predecessor
        # guard above)
        payoff_point=target_end + 1,
    )


def _fresh_local(module: Module, func: Function, vt: ValType) -> int:
    functype = module.types[func.type_index]
    index = len(functype.params) + len(func.locals)
    func.locals = tuple(func.locals) + (vt,)
    return index


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------


def _increment_seq(counter: int, amount: int, budget: int | None = None) -> list[Instr]:
    seq = [
        Instr("global.get", (counter,)),
        Instr("i64.const", (amount & 0xFFFFFFFFFFFFFFFF,)),
        Instr("i64.add"),
        Instr("global.set", (counter,)),
    ]
    if budget is not None:
        # in-band enforcement (gas-metering style): trap once the counter
        # exceeds the agreed budget — no runtime cooperation needed
        seq += [
            Instr("global.get", (counter,)),
            Instr("i64.const", (budget,)),
            Instr("i64.gt_u"),
            Instr("if", ((),)),
            Instr("unreachable"),
            Instr("end"),
        ]
    return seq


def _capture_seq(hoist: LoopHoist) -> list[Instr]:
    return [
        Instr("local.get", (hoist.variable,)),
        Instr("local.set", (hoist.capture_local,)),
    ]


def _payoff_seq(counter: int, hoist: LoopHoist, budget: int | None = None) -> list[Instr]:
    """Reconstruct the iteration count and charge it (paper §3.6, loop-based).

    iterations = (v_after − v_before) / stride   (operands swapped when the
    variable decreases); the subtraction wraps, so the computation is exact
    whenever the true trip count fits the variable's type, which the write-
    once-per-iteration guard ensures.
    """
    vt = hoist.valtype.value
    first, second = (
        (hoist.variable, hoist.capture_local)
        if hoist.increasing
        else (hoist.capture_local, hoist.variable)
    )
    seq = [
        Instr("local.get", (first,)),
        Instr("local.get", (second,)),
        Instr(f"{vt}.sub"),
        Instr(f"{vt}.const", (hoist.stride,)),
        Instr(f"{vt}.div_u"),
    ]
    if hoist.valtype is ValType.I32:
        seq.append(Instr("i64.extend_i32_u"))
    seq += [
        Instr("i64.const", (hoist.per_iteration_weight,)),
        Instr("i64.mul"),
        Instr("global.get", (counter,)),
        Instr("i64.add"),
        Instr("global.set", (counter,)),
    ]
    if hoist.constant_weight:
        seq += _increment_seq(counter, hoist.constant_weight, budget)
    elif budget is not None:
        seq += [
            Instr("global.get", (counter,)),
            Instr("i64.const", (budget,)),
            Instr("i64.gt_u"),
            Instr("if", ((),)),
            Instr("unreachable"),
            Instr("end"),
        ]
    return seq


def _insertion_point(block: BasicBlock, body: list[Instr]) -> int:
    """Where a block's increment goes: before the terminator, else after."""
    terminator = body[block.end]
    if terminator.name in ("br", "br_if", "br_table", "return", "unreachable", "if", "else"):
        return block.end
    return block.end + 1


def instrument_module(
    module: Module,
    level: str = "loop-based",
    weight_table: WeightTable | None = None,
    budget: int | None = None,
) -> InstrumentationResult:
    """Instrument a module with a weighted instruction counter.

    ``level`` is one of ``"naive"``, ``"flow-based"`` or ``"loop-based"``.
    With ``budget`` set, every counter update is followed by an in-band
    check that traps once the counter exceeds the budget (gas-metering
    style) — the workload then cannot exceed the agreed resource cap even
    on a runtime that does not meter executions itself.  The input module
    is not modified; a clone is returned.
    """
    if level not in ("naive", "flow-based", "loop-based"):
        raise ValueError(f"unknown instrumentation level {level!r}")
    if budget is not None and budget <= 0:
        raise ValueError("budget must be positive")
    weights = weight_table or UNIT_WEIGHTS

    out = module.clone()
    counter_index = out.num_imported_globals + len(out.globals)
    out.globals.append(
        Global(GlobalType(ValType.I64, mutable=True), [Instr("i64.const", (0,))])
    )
    export_name = COUNTER_EXPORT
    existing = {e.name for e in out.exports}
    while export_name in existing:
        export_name += "_"
    out.exports.append(Export(export_name, "global", counter_index))

    total_emitted = 0
    total_naive = 0
    total_hoisted = 0

    for func_index, func in enumerate(out.funcs):
        if not func.body:
            continue
        structs = build_structure_map(func.body)
        cfg = build_cfg(func.body)

        increments: dict[int, int] = {}
        for block in cfg.blocks.values():
            increments[block.index] = weights.block_weight(
                [i.name for i in block.instructions(func.body)]
            )
        total_naive += sum(1 for v in increments.values() if v > 0)

        hoists: list[LoopHoist] = []
        frozen: set[int] = set()
        if level == "loop-based":
            hoists = _find_hoistable_loops(out, func_index, cfg, structs, weights)
            for hoist in hoists:
                span_end = (
                    hoist.payoff_point - 1
                    if hoist.constant_weight == 0
                    else structs[hoist.loop_index].end - 1
                )
                depths = _relative_depths(func.body, hoist.loop_index + 1, span_end + 1)
                for block in cfg.blocks.values():
                    if not hoist.loop_index <= block.start <= span_end:
                        continue
                    # only the always-executed (depth-0) portion was hoisted;
                    # conditional arms keep their ordinary increments — but
                    # they must not take part in flow folding across the
                    # region boundary, so they are frozen in place too.
                    frozen.add(block.index)
                    if (
                        block.start == hoist.loop_index
                        or depths[block.start - hoist.loop_index - 1] == 0
                    ):
                        increments[block.index] = 0
            total_hoisted += len(hoists)

        if level in ("flow-based", "loop-based"):
            _flow_optimise(cfg, increments, frozen)

        insertions: list[tuple[int, list[Instr]]] = []
        for block in cfg.blocks.values():
            amount = increments.get(block.index, 0)
            if amount > 0:
                insertions.append(
                    (
                        _insertion_point(block, func.body),
                        _increment_seq(counter_index, amount, budget),
                    )
                )
        for hoist in hoists:
            insertions.append((hoist.capture_point, _capture_seq(hoist)))
            insertions.append((hoist.payoff_point, _payoff_seq(counter_index, hoist, budget)))

        total_emitted += sum(1 for _, seq in insertions if seq)
        for position, seq in sorted(insertions, key=lambda item: item[0], reverse=True):
            func.body[position:position] = seq

    return InstrumentationResult(
        module=out,
        level=level,
        weight_table=weights,
        counter_global_index=counter_index,
        increments_emitted=total_emitted,
        increments_naive=total_naive,
        hoisted_loops=total_hoisted,
    )
