"""Instruction weight tables for the weighted instruction counter (§3.7).

Weights are integers (a fixed-point scale over the measured cycle costs) so
the injected i64 counter arithmetic is exact.  Two standard tables:

* :data:`UNIT_WEIGHTS` — every instruction weighs 1: the plain executed-
  instruction counter used for correctness verification;
* :func:`cycle_weight_table` — the Fig. 7 cycle costs from
  :mod:`repro.wasm.costmodel`, scaled by 10 to preserve their one decimal.

The paper notes weights are part of the attested execution environment and
adjustable at runtime without re-releasing enclaves; :class:`WeightTable`
therefore carries a version and a stable digest that the accounting enclave
includes in its resource logs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.tcrypto.hashing import sha256
from repro.wasm.costmodel import CYCLE_WEIGHTS
from repro.wasm.instructions import INSTRUCTIONS_BY_NAME


@dataclass(frozen=True)
class WeightTable:
    """Integer weights per instruction name, with provenance metadata."""

    weights: dict[str, int]
    scale: int = 1
    version: str = "unit-1"

    def __post_init__(self) -> None:
        for name in self.weights:
            if name not in INSTRUCTIONS_BY_NAME:
                raise ValueError(f"weight table references unknown instruction {name!r}")
        for name, weight in self.weights.items():
            if weight < 0:
                raise ValueError(f"negative weight for {name}")

    def weight(self, name: str) -> int:
        """Weight of one instruction; unlisted instructions weigh ``scale`` (1.0)."""
        return self.weights.get(name, self.scale)

    def block_weight(self, names: list[str]) -> int:
        return sum(self.weight(n) for n in names)

    def to_cycles(self, counter_value: int) -> float:
        """Convert a counter reading back to (fractional) cycle units."""
        return counter_value / self.scale

    def digest(self) -> bytes:
        """Stable digest identifying this table (goes into resource logs).

        Memoised: the table is frozen and the accounting enclave asks for
        the digest on every receipt, so serializing the full weights dict
        each time would dominate the accounting hot path.
        """
        cached = self.__dict__.get("_digest")
        if cached is not None:
            return cached
        canonical = json.dumps(
            {"weights": self.weights, "scale": self.scale, "version": self.version},
            sort_keys=True,
        )
        digest = sha256(canonical.encode("utf-8"))
        object.__setattr__(self, "_digest", digest)
        return digest


#: Every instruction counts 1: the unweighted executed-instruction counter.
UNIT_WEIGHTS = WeightTable(
    weights={name: 1 for name in INSTRUCTIONS_BY_NAME},
    scale=1,
    version="unit-1",
)


def cycle_weight_table(scale: int = 10) -> WeightTable:
    """Build the weighted table from the measured cycle costs (Fig. 7)."""
    return WeightTable(
        weights={name: round(cycles * scale) for name, cycles in CYCLE_WEIGHTS.items()},
        scale=scale,
        version=f"xeon-e3-1230v5-sim/x{scale}",
    )
