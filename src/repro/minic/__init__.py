"""MiniC: a small C-like language compiled to WebAssembly.

Stands in for the paper's Emscripten/rustc toolchains (requirement R1,
"polyglot input"): the evaluation workloads — PolyBench kernels, MSieve-style
factorisation, the PC algorithm, subset-sum and the Darknet-style classifier
— are written in MiniC and compiled to the same Wasm the instrumentation
enclave instruments.

Supported surface: ``int``/``long``/``float``/``double`` scalars, global
arrays (any rank, row-major in linear memory), functions, ``if``/``else``,
``while``/``for``, ``break``/``continue``, ``return``, full expression
grammar with short-circuit logic, C cast syntax, ``&a[i]`` for passing
buffer addresses to the host I/O built-ins, and ``extern`` declarations for
host imports.

Example::

    from repro.minic import compile_source

    module = compile_source('''
        int square(int x) { return x * x; }
    ''')
"""

from repro.minic.compiler import compile_source, CompileError

__all__ = ["compile_source", "CompileError"]
