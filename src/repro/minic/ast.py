"""MiniC abstract syntax tree and source-level types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.wasm.types import ValType


class CType(enum.Enum):
    """MiniC scalar types and their WebAssembly mapping."""

    INT = "int"
    LONG = "long"
    FLOAT = "float"
    DOUBLE = "double"
    VOID = "void"

    @property
    def valtype(self) -> ValType:
        mapping = {
            CType.INT: ValType.I32,
            CType.LONG: ValType.I64,
            CType.FLOAT: ValType.F32,
            CType.DOUBLE: ValType.F64,
        }
        if self not in mapping:
            raise ValueError("void has no value type")
        return mapping[self]

    @property
    def size(self) -> int:
        return {CType.INT: 4, CType.LONG: 8, CType.FLOAT: 4, CType.DOUBLE: 8}[self]

    @property
    def is_integer(self) -> bool:
        return self in (CType.INT, CType.LONG)

    @property
    def is_float(self) -> bool:
        return self in (CType.FLOAT, CType.DOUBLE)


# -- expressions --------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLiteral(Expr):
    value: int = 0
    ctype: CType = CType.INT


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0
    ctype: CType = CType.DOUBLE


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class ArrayRef(Expr):
    name: str = ""
    indices: list[Expr] = field(default_factory=list)


@dataclass
class AddressOf(Expr):
    """``&a[i]...`` — the byte address of an array element, as int."""

    target: ArrayRef = None  # type: ignore[assignment]


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Cast(Expr):
    ctype: CType = CType.INT
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


# -- statements ---------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class LocalDecl(Stmt):
    ctype: CType = CType.INT
    name: str = ""
    init: Expr | None = None


@dataclass
class Assign(Stmt):
    """``target = value`` where target is a variable or array element."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: list[Stmt] = field(default_factory=list)


@dataclass
class DoWhile(Stmt):
    """``do { body } while (cond);`` — the body runs at least once."""

    cond: Expr = None  # type: ignore[assignment]
    body: list[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Block(Stmt):
    body: list[Stmt] = field(default_factory=list)


# -- top level ----------------------------------------------------------------


@dataclass
class Param:
    ctype: CType
    name: str


@dataclass
class FuncDecl:
    return_type: CType
    name: str
    params: list[Param]
    body: list[Stmt]
    extern: bool = False
    line: int = 0


@dataclass
class GlobalArray:
    ctype: CType
    name: str
    dims: list[int]
    line: int = 0

    @property
    def element_count(self) -> int:
        count = 1
        for d in self.dims:
            count *= d
        return count

    @property
    def byte_size(self) -> int:
        return self.element_count * self.ctype.size


@dataclass
class GlobalScalar:
    ctype: CType
    name: str
    init: Expr | None = None
    line: int = 0


@dataclass
class Program:
    functions: list[FuncDecl] = field(default_factory=list)
    arrays: list[GlobalArray] = field(default_factory=list)
    scalars: list[GlobalScalar] = field(default_factory=list)
