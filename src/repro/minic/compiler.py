"""MiniC-to-WebAssembly code generator.

Lowers the MiniC AST to the flat Wasm IR of :mod:`repro.wasm`.  Loop code is
emitted in the canonical ``block/loop/br_if/br`` shape so that AccTEE's
loop-based optimisation recognises compiler-generated loops, mirroring how
the paper's pass targets Emscripten output.

Memory layout: global arrays are bump-allocated row-major in linear memory
starting at offset 0, 8-byte aligned; global scalars become Wasm globals;
everything else lives in locals.  Every defined function is exported under
its own name, and the linear memory is exported as ``memory``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minic import ast
from repro.minic.ast import CType
from repro.minic.parser import ParseError, parse_source
from repro.wasm.instructions import Instr
from repro.wasm.memory import PAGE_SIZE
from repro.wasm.module import Export, Function, Global, Import, Module
from repro.wasm.types import FuncType, GlobalType, Limits, MemoryType, ValType


class CompileError(Exception):
    """Raised on semantic errors in MiniC source."""


_BUILTIN_UNARY_F64 = {
    "sqrt": "sqrt",
    "fabs": "abs",
    "floor": "floor",
    "ceil": "ceil",
    "trunc": "trunc",
    "round": "nearest",
}

_BUILTIN_BINARY_F64 = {"fmin": "min", "fmax": "max"}


@dataclass
class _ArrayInfo:
    ctype: CType
    dims: list[int]
    offset: int  # byte offset of the array base in linear memory


@dataclass
class _FuncInfo:
    index: int  # combined function index
    functype: FuncType
    return_type: CType
    param_types: list[CType]


@dataclass
class _LocalInfo:
    index: int
    ctype: CType


@dataclass
class _Scope:
    names: dict[str, _LocalInfo] = field(default_factory=dict)


class _FunctionCompiler:
    """Compiles one function body to a flat instruction list."""

    def __init__(self, module_compiler: "_ModuleCompiler", decl: ast.FuncDecl):
        self.mc = module_compiler
        self.decl = decl
        self.code: list[Instr] = []
        self.local_types: list[ValType] = []
        self.scopes: list[_Scope] = [_Scope()]
        self.n_params = len(decl.params)
        for i, param in enumerate(decl.params):
            if param.ctype is CType.VOID:
                raise CompileError(f"line {decl.line}: void parameter in {decl.name}")
            self.scopes[0].names[param.name] = _LocalInfo(i, param.ctype)
        # control stack: entries are ("loop-top" | "loop-exit" | "loop-cont" |
        # "plain") markers used to compute branch depths
        self.ctrl: list[str] = []

    # -- emit helpers -----------------------------------------------------------

    def emit(self, name: str, *args) -> None:
        self.code.append(Instr(name, tuple(args)))

    def _push_ctrl(self, marker: str) -> None:
        self.ctrl.append(marker)

    def _pop_ctrl(self) -> None:
        self.ctrl.pop()

    def _depth_to(self, marker: str) -> int:
        """Branch depth from the current position to the innermost ``marker``."""
        for depth, entry in enumerate(reversed(self.ctrl)):
            if entry == marker:
                return depth
        raise CompileError(f"no enclosing loop for {marker}")

    def _new_local(self, name: str, ctype: CType, line: int) -> _LocalInfo:
        scope = self.scopes[-1]
        if name in scope.names:
            raise CompileError(f"line {line}: duplicate declaration of {name!r}")
        info = _LocalInfo(self.n_params + len(self.local_types), ctype)
        self.local_types.append(ctype.valtype)
        scope.names[name] = info
        return info

    def _lookup_local(self, name: str) -> _LocalInfo | None:
        for scope in reversed(self.scopes):
            if name in scope.names:
                return scope.names[name]
        return None

    # -- conversions -------------------------------------------------------------

    def _convert(self, from_type: CType, to_type: CType, line: int) -> None:
        if from_type is to_type:
            return
        key = (from_type, to_type)
        table = {
            (CType.INT, CType.LONG): ["i64.extend_i32_s"],
            (CType.LONG, CType.INT): ["i32.wrap_i64"],
            (CType.INT, CType.FLOAT): ["f32.convert_i32_s"],
            (CType.INT, CType.DOUBLE): ["f64.convert_i32_s"],
            (CType.LONG, CType.FLOAT): ["f32.convert_i64_s"],
            (CType.LONG, CType.DOUBLE): ["f64.convert_i64_s"],
            (CType.FLOAT, CType.DOUBLE): ["f64.promote_f32"],
            (CType.DOUBLE, CType.FLOAT): ["f32.demote_f64"],
            (CType.FLOAT, CType.INT): ["i32.trunc_f32_s"],
            (CType.FLOAT, CType.LONG): ["i64.trunc_f32_s"],
            (CType.DOUBLE, CType.INT): ["i32.trunc_f64_s"],
            (CType.DOUBLE, CType.LONG): ["i64.trunc_f64_s"],
        }
        if key not in table:
            raise CompileError(f"line {line}: cannot convert {from_type.value} to {to_type.value}")
        for name in table[key]:
            self.emit(name)

    @staticmethod
    def _unify(a: CType, b: CType) -> CType:
        order = [CType.INT, CType.LONG, CType.FLOAT, CType.DOUBLE]
        return order[max(order.index(a), order.index(b))]

    def _to_bool(self, ctype: CType) -> None:
        """Turn the value on the stack into an i32 boolean."""
        if ctype is CType.INT:
            return
        if ctype is CType.LONG:
            self.emit("i64.const", 0)
            self.emit("i64.ne")
        elif ctype is CType.FLOAT:
            self.emit("f32.const", 0.0)
            self.emit("f32.ne")
        elif ctype is CType.DOUBLE:
            self.emit("f64.const", 0.0)
            self.emit("f64.ne")
        else:
            raise CompileError("void value used as condition")

    # -- expressions ----------------------------------------------------------------

    def expr(self, node: ast.Expr) -> CType:
        """Emit code pushing the expression's value; returns its type."""
        if isinstance(node, ast.IntLiteral):
            mask = 0xFFFFFFFF if node.ctype is CType.INT else 0xFFFFFFFFFFFFFFFF
            self.emit(f"{node.ctype.valtype.value}.const", node.value & mask)
            return node.ctype
        if isinstance(node, ast.FloatLiteral):
            self.emit(f"{node.ctype.valtype.value}.const", node.value)
            return node.ctype
        if isinstance(node, ast.VarRef):
            local = self._lookup_local(node.name)
            if local is not None:
                self.emit("local.get", local.index)
                return local.ctype
            if node.name in self.mc.scalar_globals:
                index, ctype = self.mc.scalar_globals[node.name]
                self.emit("global.get", index)
                return ctype
            raise CompileError(f"line {node.line}: undefined variable {node.name!r}")
        if isinstance(node, ast.ArrayRef):
            info = self._array(node)
            self._emit_element_index(node, info)
            vt = info.ctype.valtype
            self.emit(f"{vt.value}.load", info.ctype.size, info.offset)
            return info.ctype
        if isinstance(node, ast.AddressOf):
            info = self._array(node.target)
            self._emit_element_index(node.target, info)
            if info.offset:
                self.emit("i32.const", info.offset)
                self.emit("i32.add")
            return CType.INT
        if isinstance(node, ast.Unary):
            return self._unary(node)
        if isinstance(node, ast.Binary):
            return self._binary(node)
        if isinstance(node, ast.Cast):
            source = self.expr(node.operand)
            self._convert(source, node.ctype, node.line)
            return node.ctype
        if isinstance(node, ast.Call):
            return self._call(node)
        raise CompileError(f"unsupported expression {type(node).__name__}")

    def _array(self, node: ast.ArrayRef) -> _ArrayInfo:
        info = self.mc.arrays.get(node.name)
        if info is None:
            raise CompileError(f"line {node.line}: undefined array {node.name!r}")
        if len(node.indices) != len(info.dims):
            raise CompileError(
                f"line {node.line}: array {node.name!r} has {len(info.dims)} "
                f"dimensions, {len(node.indices)} indices given"
            )
        return info

    def _emit_element_index(self, node: ast.ArrayRef, info: _ArrayInfo) -> None:
        """Push the *byte address within the array* (base goes in the memarg offset)."""
        first = self.expr(node.indices[0])
        if first is not CType.INT:
            raise CompileError(f"line {node.line}: array index must be int")
        for dim, index_expr in zip(info.dims[1:], node.indices[1:]):
            self.emit("i32.const", dim)
            self.emit("i32.mul")
            itype = self.expr(index_expr)
            if itype is not CType.INT:
                raise CompileError(f"line {node.line}: array index must be int")
            self.emit("i32.add")
        shift = {4: 2, 8: 3}[info.ctype.size]
        self.emit("i32.const", shift)
        self.emit("i32.shl")

    def _unary(self, node: ast.Unary) -> CType:
        if node.op == "-":
            if isinstance(node.operand, (ast.IntLiteral, ast.FloatLiteral)):
                folded = type(node.operand)(
                    line=node.line, value=-node.operand.value, ctype=node.operand.ctype
                )
                return self.expr(folded)
            ctype = self.mc.type_of(node.operand, self)
            vt = ctype.valtype.value
            if ctype.is_float:
                self.expr(node.operand)
                self.emit(f"{vt}.neg")
            else:
                # 0 - x: the zero must be pushed before the operand
                self.emit(f"{vt}.const", 0)
                self.expr(node.operand)
                self.emit(f"{vt}.sub")
            return ctype
        if node.op == "!":
            ctype = self.expr(node.operand)
            if ctype is CType.INT:
                self.emit("i32.eqz")
            elif ctype is CType.LONG:
                self.emit("i64.eqz")
            else:
                self._to_bool(ctype)
                self.emit("i32.eqz")
            return CType.INT
        if node.op == "~":
            ctype = self.expr(node.operand)
            if not ctype.is_integer:
                raise CompileError(f"line {node.line}: '~' requires an integer operand")
            vt = ctype.valtype.value
            mask = 0xFFFFFFFF if ctype is CType.INT else 0xFFFFFFFFFFFFFFFF
            self.emit(f"{vt}.const", mask)
            self.emit(f"{vt}.xor")
            return ctype
        raise CompileError(f"line {node.line}: unknown unary operator {node.op!r}")

    def _binary(self, node: ast.Binary) -> CType:
        op = node.op
        if op in ("&&", "||"):
            return self._short_circuit(node)
        left_type = self.expr(node.left)
        # peek the right type without emitting: simplest is emit-then-unify;
        # instead compute the unified type from a dry type pass
        right_type = self.mc.type_of(node.right, self)
        if op in ("<<", ">>", "&", "|", "^", "%"):
            if not (left_type.is_integer and right_type.is_integer):
                raise CompileError(f"line {node.line}: {op!r} requires integer operands")
        unified = self._unify(left_type, right_type)
        self._convert(left_type, unified, node.line)
        actual_right = self.expr(node.right)
        if actual_right is not right_type:
            raise CompileError(f"line {node.line}: inconsistent type inference")
        self._convert(right_type, unified, node.line)
        vt = unified.valtype.value

        arithmetic = {
            "+": "add", "-": "sub", "*": "mul",
            "/": "div_s" if unified.is_integer else "div",
            "%": "rem_s",
            "&": "and", "|": "or", "^": "xor",
            "<<": "shl", ">>": "shr_s",
        }
        comparisons_int = {"==": "eq", "!=": "ne", "<": "lt_s", "<=": "le_s", ">": "gt_s", ">=": "ge_s"}
        comparisons_float = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}

        if op in arithmetic:
            if op == "%" and unified.is_float:
                raise CompileError(f"line {node.line}: '%' requires integer operands")
            self.emit(f"{vt}.{arithmetic[op]}")
            return unified
        if op in comparisons_int:
            suffix = comparisons_int[op] if unified.is_integer else comparisons_float[op]
            self.emit(f"{vt}.{suffix}")
            return CType.INT
        raise CompileError(f"line {node.line}: unknown operator {op!r}")

    def _short_circuit(self, node: ast.Binary) -> CType:
        left_type = self.expr(node.left)
        self._to_bool(left_type)
        self.emit("if", (ValType.I32,))
        self._push_ctrl("plain")
        if node.op == "&&":
            right_type = self.expr(node.right)
            self._to_bool(right_type)
            self.emit("else")
            self.emit("i32.const", 0)
        else:
            self.emit("i32.const", 1)
            self.emit("else")
            right_type = self.expr(node.right)
            self._to_bool(right_type)
        self.emit("end")
        self._pop_ctrl()
        return CType.INT

    def _call(self, node: ast.Call) -> CType:
        # math built-ins
        if node.name in _BUILTIN_UNARY_F64:
            if len(node.args) != 1:
                raise CompileError(f"line {node.line}: {node.name} takes one argument")
            arg_type = self.expr(node.args[0])
            self._convert(arg_type, CType.DOUBLE, node.line)
            self.emit(f"f64.{_BUILTIN_UNARY_F64[node.name]}")
            return CType.DOUBLE
        if node.name in _BUILTIN_BINARY_F64:
            if len(node.args) != 2:
                raise CompileError(f"line {node.line}: {node.name} takes two arguments")
            a = self.expr(node.args[0])
            self._convert(a, CType.DOUBLE, node.line)
            b = self.expr(node.args[1])
            self._convert(b, CType.DOUBLE, node.line)
            self.emit(f"f64.{_BUILTIN_BINARY_F64[node.name]}")
            return CType.DOUBLE

        info = self.mc.functions.get(node.name)
        if info is None:
            raise CompileError(f"line {node.line}: undefined function {node.name!r}")
        if len(node.args) != len(info.param_types):
            raise CompileError(
                f"line {node.line}: {node.name} expects {len(info.param_types)} "
                f"arguments, got {len(node.args)}"
            )
        for arg, expected in zip(node.args, info.param_types):
            actual = self.expr(arg)
            self._convert(actual, expected, node.line)
        self.emit("call", info.index)
        return info.return_type

    # -- statements --------------------------------------------------------------------

    def stmt(self, node: ast.Stmt) -> None:
        if isinstance(node, ast.LocalDecl):
            if node.ctype is CType.VOID:
                raise CompileError(f"line {node.line}: void local")
            info = self._new_local(node.name, node.ctype, node.line)
            if node.init is not None:
                value_type = self.expr(node.init)
                self._convert(value_type, node.ctype, node.line)
                self.emit("local.set", info.index)
            return
        if isinstance(node, ast.Assign):
            self._assign(node)
            return
        if isinstance(node, ast.ExprStmt):
            result = self.expr(node.expr)
            if result is not CType.VOID:
                self.emit("drop")
            return
        if isinstance(node, ast.Block):
            self.scopes.append(_Scope())
            for child in node.body:
                self.stmt(child)
            self.scopes.pop()
            return
        if isinstance(node, ast.If):
            cond_type = self.expr(node.cond)
            self._to_bool(cond_type)
            self.emit("if", ())
            self._push_ctrl("plain")
            self.scopes.append(_Scope())
            for child in node.then_body:
                self.stmt(child)
            self.scopes.pop()
            if node.else_body:
                self.emit("else")
                self.scopes.append(_Scope())
                for child in node.else_body:
                    self.stmt(child)
                self.scopes.pop()
            self.emit("end")
            self._pop_ctrl()
            return
        if isinstance(node, ast.While):
            self._loop(cond=node.cond, body=node.body, step=None)
            return
        if isinstance(node, ast.DoWhile):
            self._do_while(node)
            return
        if isinstance(node, ast.For):
            self.scopes.append(_Scope())
            if node.init is not None:
                self.stmt(node.init)
            self._loop(cond=node.cond, body=node.body, step=node.step)
            self.scopes.pop()
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                if self.decl.return_type is CType.VOID:
                    raise CompileError(f"line {node.line}: void function returns a value")
                value_type = self.expr(node.value)
                self._convert(value_type, self.decl.return_type, node.line)
            elif self.decl.return_type is not CType.VOID:
                raise CompileError(f"line {node.line}: missing return value")
            self.emit("return")
            return
        if isinstance(node, ast.Break):
            self.emit("br", self._depth_to("loop-exit"))
            return
        if isinstance(node, ast.Continue):
            try:
                depth = self._depth_to("loop-cont")
            except CompileError:
                depth = self._depth_to("loop-top")
            self.emit("br", depth)
            return
        raise CompileError(f"unsupported statement {type(node).__name__}")

    def _assign(self, node: ast.Assign) -> None:
        target = node.target
        if isinstance(target, ast.VarRef):
            local = self._lookup_local(target.name)
            if local is not None:
                value_type = self.expr(node.value)
                self._convert(value_type, local.ctype, node.line)
                self.emit("local.set", local.index)
                return
            if target.name in self.mc.scalar_globals:
                index, ctype = self.mc.scalar_globals[target.name]
                value_type = self.expr(node.value)
                self._convert(value_type, ctype, node.line)
                self.emit("global.set", index)
                return
            raise CompileError(f"line {node.line}: undefined variable {target.name!r}")
        if isinstance(target, ast.ArrayRef):
            info = self._array(target)
            self._emit_element_index(target, info)
            value_type = self.expr(node.value)
            self._convert(value_type, info.ctype, node.line)
            vt = info.ctype.valtype
            self.emit(f"{vt.value}.store", info.ctype.size, info.offset)
            return
        raise CompileError(f"line {node.line}: invalid assignment target")

    @staticmethod
    def _contains_continue(body: list[ast.Stmt]) -> bool:
        for node in body:
            if isinstance(node, ast.Continue):
                return True
            if isinstance(node, ast.If):
                if _FunctionCompiler._contains_continue(node.then_body):
                    return True
                if _FunctionCompiler._contains_continue(node.else_body):
                    return True
            elif isinstance(node, ast.Block):
                if _FunctionCompiler._contains_continue(node.body):
                    return True
            # continue inside a nested loop binds to that loop: don't recurse
        return False

    def _loop(self, cond: ast.Expr | None, body: list[ast.Stmt], step: ast.Stmt | None) -> None:
        """Emit the canonical hoistable loop shape.

        ::

            block            ;; loop-exit
              loop           ;; loop-top
                <cond> eqz br_if loop-exit
                [block       ;; loop-cont, only when the body contains continue]
                <body>
                [end]
                <step>
                br loop-top
              end
            end
        """
        needs_cont = step is not None and self._contains_continue(body)
        self.emit("block", ())
        self._push_ctrl("loop-exit")
        self.emit("loop", ())
        self._push_ctrl("loop-top")
        if cond is not None:
            cond_type = self.expr(cond)
            self._to_bool(cond_type)
            self.emit("i32.eqz")
            self.emit("br_if", self._depth_to("loop-exit"))
        if needs_cont:
            self.emit("block", ())
            self._push_ctrl("loop-cont")
        self.scopes.append(_Scope())
        for child in body:
            self.stmt(child)
        self.scopes.pop()
        if needs_cont:
            self.emit("end")
            self._pop_ctrl()
        if step is not None:
            self.stmt(step)
        self.emit("br", self._depth_to("loop-top"))
        self.emit("end")
        self._pop_ctrl()
        self.emit("end")
        self._pop_ctrl()

    def _do_while(self, node: ast.DoWhile) -> None:
        """Emit ``do { body } while (cond)`` in the backward-br_if shape.

        ::

            block            ;; loop-exit (for break)
              loop           ;; loop-top
                [block]      ;; loop-cont, only when the body contains continue
                <body>
                [end]
                <cond> br_if loop-top
              end
            end

        The body-plus-condition region ends in a single backward ``br_if``,
        which is exactly the instrumentation pass's pattern A.
        """
        needs_cont = self._contains_continue(node.body)
        self.emit("block", ())
        self._push_ctrl("loop-exit")
        self.emit("loop", ())
        self._push_ctrl("loop-top")
        if needs_cont:
            self.emit("block", ())
            self._push_ctrl("loop-cont")
        self.scopes.append(_Scope())
        for child in node.body:
            self.stmt(child)
        self.scopes.pop()
        if needs_cont:
            self.emit("end")
            self._pop_ctrl()
        cond_type = self.expr(node.cond)
        self._to_bool(cond_type)
        self.emit("br_if", self._depth_to("loop-top"))
        self.emit("end")
        self._pop_ctrl()
        self.emit("end")
        self._pop_ctrl()

    # -- entry ----------------------------------------------------------------------------

    def compile(self) -> Function:
        for node in self.decl.body:
            self.stmt(node)
        if self.decl.return_type is not CType.VOID:
            # default result value: reachable only if control falls off the end
            vt = self.decl.return_type.valtype
            self.emit(f"{vt.value}.const", 0 if vt.is_int else 0.0)
        functype = FuncType(
            tuple(p.ctype.valtype for p in self.decl.params),
            () if self.decl.return_type is CType.VOID else (self.decl.return_type.valtype,),
        )
        type_index = self.mc.module.add_type(functype)
        return Function(
            type_index=type_index,
            locals=tuple(self.local_types),
            body=self.code,
            name=self.decl.name,
        )


class _ModuleCompiler:
    def __init__(self, program: ast.Program):
        self.program = program
        self.module = Module()
        self.arrays: dict[str, _ArrayInfo] = {}
        self.scalar_globals: dict[str, tuple[int, CType]] = {}
        self.functions: dict[str, _FuncInfo] = {}

    # -- type inference without emission (for binary type unification) ---------------

    def type_of(self, node: ast.Expr, fc: _FunctionCompiler) -> CType:
        """Static type of an expression (no code emitted)."""
        if isinstance(node, ast.IntLiteral):
            return node.ctype
        if isinstance(node, ast.FloatLiteral):
            return node.ctype
        if isinstance(node, ast.VarRef):
            local = fc._lookup_local(node.name)
            if local is not None:
                return local.ctype
            if node.name in self.scalar_globals:
                return self.scalar_globals[node.name][1]
            raise CompileError(f"line {node.line}: undefined variable {node.name!r}")
        if isinstance(node, ast.ArrayRef):
            info = self.arrays.get(node.name)
            if info is None:
                raise CompileError(f"line {node.line}: undefined array {node.name!r}")
            return info.ctype
        if isinstance(node, ast.AddressOf):
            return CType.INT
        if isinstance(node, ast.Unary):
            if node.op in ("!",):
                return CType.INT
            return self.type_of(node.operand, fc)
        if isinstance(node, ast.Binary):
            if node.op in ("&&", "||", "==", "!=", "<", "<=", ">", ">="):
                return CType.INT
            left = self.type_of(node.left, fc)
            right = self.type_of(node.right, fc)
            return _FunctionCompiler._unify(left, right)
        if isinstance(node, ast.Cast):
            return node.ctype
        if isinstance(node, ast.Call):
            if node.name in _BUILTIN_UNARY_F64 or node.name in _BUILTIN_BINARY_F64:
                return CType.DOUBLE
            info = self.functions.get(node.name)
            if info is None:
                raise CompileError(f"line {node.line}: undefined function {node.name!r}")
            return info.return_type
        raise CompileError(f"cannot type {type(node).__name__}")

    # -- top level -------------------------------------------------------------------

    def compile(self) -> Module:
        module = self.module

        # 1. linear memory layout for global arrays (8-byte aligned, base 0)
        offset = 0
        for array in self.program.arrays:
            if array.ctype is CType.VOID:
                raise CompileError(f"line {array.line}: void array")
            if array.name in self.arrays:
                raise CompileError(f"line {array.line}: duplicate array {array.name!r}")
            for dim in array.dims:
                if dim <= 0:
                    raise CompileError(f"line {array.line}: non-positive array dimension")
            offset = (offset + 7) & ~7
            self.arrays[array.name] = _ArrayInfo(array.ctype, array.dims, offset)
            offset += array.byte_size
        pages = max(1, (offset + PAGE_SIZE - 1) // PAGE_SIZE)
        module.memories.append(MemoryType(Limits(pages, None)))
        module.exports.append(Export("memory", "memory", 0))

        # 2. imports for extern functions, then indices for defined functions
        defined = [f for f in self.program.functions if not f.extern]
        externs = [f for f in self.program.functions if f.extern]
        for i, decl in enumerate(externs):
            functype = FuncType(
                tuple(p.ctype.valtype for p in decl.params),
                () if decl.return_type is CType.VOID else (decl.return_type.valtype,),
            )
            type_index = module.add_type(functype)
            module.imports.append(Import("env", decl.name, "func", type_index, decl.name))
            self.functions[decl.name] = _FuncInfo(
                i, functype, decl.return_type, [p.ctype for p in decl.params]
            )
        for i, decl in enumerate(defined):
            if decl.name in self.functions:
                raise CompileError(f"line {decl.line}: duplicate function {decl.name!r}")
            functype = FuncType(
                tuple(p.ctype.valtype for p in decl.params),
                () if decl.return_type is CType.VOID else (decl.return_type.valtype,),
            )
            self.functions[decl.name] = _FuncInfo(
                len(externs) + i, functype, decl.return_type, [p.ctype for p in decl.params]
            )

        # 3. global scalars
        for scalar in self.program.scalars:
            if scalar.ctype is CType.VOID:
                raise CompileError(f"line {scalar.line}: void global")
            value = 0
            if scalar.init is not None:
                value = _const_eval(scalar.init)
            vt = scalar.ctype.valtype
            if vt.is_int:
                init = [Instr(f"{vt.value}.const", (int(value) & ((1 << vt.bits) - 1),))]
            else:
                init = [Instr(f"{vt.value}.const", (float(value),))]
            index = len(module.globals)
            module.globals.append(
                Global(GlobalType(vt, mutable=True), init, scalar.name)
            )
            self.scalar_globals[scalar.name] = (index, scalar.ctype)

        # 4. function bodies + exports
        for decl in defined:
            func = _FunctionCompiler(self, decl).compile()
            module.funcs.append(func)
            module.exports.append(
                Export(decl.name, "func", self.functions[decl.name].index)
            )
        return module


def _const_eval(node: ast.Expr):
    if isinstance(node, (ast.IntLiteral, ast.FloatLiteral)):
        return node.value
    if isinstance(node, ast.Unary) and node.op == "-":
        return -_const_eval(node.operand)
    raise CompileError("global initializers must be constant expressions")


def compile_source(source: str) -> Module:
    """Compile MiniC source text to a validated WebAssembly module."""
    try:
        program = parse_source(source)
    except ParseError as exc:
        raise CompileError(str(exc)) from exc
    module = _ModuleCompiler(program).compile()
    from repro.wasm.validate import validate

    validate(module)
    return module
