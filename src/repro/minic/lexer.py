"""MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "int", "long", "float", "double", "void",
    "if", "else", "while", "do", "for", "return", "break", "continue", "extern",
}

_TWO_CHAR = {
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=",
}

_ONE_CHAR = set("+-*/%<>=!&|^~(){}[];,.")


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "keyword" | "int" | "float" | "op"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text}@{self.line}"


class LexError(Exception):
    """Raised on malformed MiniC source."""


def tokenize(source: str) -> list[Token]:
    """Produce the token stream for MiniC source text."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = source[i]
        if c in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError(f"unterminated block comment at line {line}")
            advance(2)
            continue
        start_line, start_col = line, col
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_col))
            advance(j - i)
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and source[j].isdigit():
                    j += 1
                if j < n and source[j] == ".":
                    is_float = True
                    j += 1
                    while j < n and source[j].isdigit():
                        j += 1
                if j < n and source[j] in "eE":
                    is_float = True
                    j += 1
                    if j < n and source[j] in "+-":
                        j += 1
                    while j < n and source[j].isdigit():
                        j += 1
            suffix = ""
            if j < n and source[j] in "fFlL":
                suffix = source[j].lower()
                j += 1
            text = source[i:j]
            kind = "float" if (is_float or suffix == "f") else "int"
            tokens.append(Token(kind, text, start_line, start_col))
            advance(j - i)
            continue
        if i + 1 < n and source[i : i + 2] in _TWO_CHAR:
            tokens.append(Token("op", source[i : i + 2], start_line, start_col))
            advance(2)
            continue
        if c in _ONE_CHAR:
            tokens.append(Token("op", c, start_line, start_col))
            advance(1)
            continue
        raise LexError(f"unexpected character {c!r} at line {line}, column {col}")
    tokens.append(Token("eof", "", line, col))
    return tokens
