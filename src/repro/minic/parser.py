"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from repro.minic import ast
from repro.minic.ast import CType
from repro.minic.lexer import Token, tokenize


class ParseError(Exception):
    """Raised on syntactically invalid MiniC source."""


_TYPE_NAMES = {"int", "long", "float", "double", "void"}

# precedence-climbing table: operator -> binding power (higher binds tighter)
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_COMPOUND_ASSIGN = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(
                f"line {self.current.line}: expected {want!r}, got {self.current.text!r}"
            )
        return self.advance()

    def _is_type(self) -> bool:
        return self.current.kind == "keyword" and self.current.text in _TYPE_NAMES

    def _parse_type(self) -> CType:
        token = self.expect("keyword")
        if token.text not in _TYPE_NAMES:
            raise ParseError(f"line {token.line}: expected type, got {token.text!r}")
        return CType(token.text)

    # -- program ----------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self.check("eof"):
            extern = bool(self.accept("keyword", "extern"))
            ctype = self._parse_type()
            name = self.expect("ident").text
            if self.check("op", "("):
                program.functions.append(self._parse_function(ctype, name, extern))
            elif extern:
                raise ParseError("extern applies to function declarations only")
            elif self.check("op", "["):
                dims: list[int] = []
                while self.accept("op", "["):
                    dims.append(int(self.expect("int").text, 0))
                    self.expect("op", "]")
                self.expect("op", ";")
                program.arrays.append(ast.GlobalArray(ctype, name, dims))
            else:
                init = None
                if self.accept("op", "="):
                    init = self._parse_expr()
                self.expect("op", ";")
                program.scalars.append(ast.GlobalScalar(ctype, name, init))
        return program

    def _parse_function(self, return_type: CType, name: str, extern: bool) -> ast.FuncDecl:
        line = self.current.line
        self.expect("op", "(")
        params: list[ast.Param] = []
        if not self.check("op", ")"):
            while True:
                if self.accept("keyword", "void") and self.check("op", ")"):
                    break
                ptype = self._parse_type()
                pname = self.expect("ident").text
                params.append(ast.Param(ptype, pname))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        if extern:
            self.expect("op", ";")
            return ast.FuncDecl(return_type, name, params, [], extern=True, line=line)
        body = self._parse_block()
        return ast.FuncDecl(return_type, name, params, body, line=line)

    # -- statements ---------------------------------------------------------------

    def _parse_block(self) -> list[ast.Stmt]:
        self.expect("op", "{")
        body: list[ast.Stmt] = []
        while not self.check("op", "}"):
            body.append(self._parse_stmt())
        self.expect("op", "}")
        return body

    def _parse_stmt(self) -> ast.Stmt:
        line = self.current.line
        if self.check("op", "{"):
            return ast.Block(line=line, body=self._parse_block())
        if self._is_type():
            ctype = self._parse_type()
            name = self.expect("ident").text
            init = None
            if self.accept("op", "="):
                init = self._parse_expr()
            self.expect("op", ";")
            return ast.LocalDecl(line=line, ctype=ctype, name=name, init=init)
        if self.accept("keyword", "if"):
            self.expect("op", "(")
            cond = self._parse_expr()
            self.expect("op", ")")
            then_body = self._stmt_as_list()
            else_body: list[ast.Stmt] = []
            if self.accept("keyword", "else"):
                else_body = self._stmt_as_list()
            return ast.If(line=line, cond=cond, then_body=then_body, else_body=else_body)
        if self.accept("keyword", "while"):
            self.expect("op", "(")
            cond = self._parse_expr()
            self.expect("op", ")")
            return ast.While(line=line, cond=cond, body=self._stmt_as_list())
        if self.accept("keyword", "do"):
            body = self._stmt_as_list()
            self.expect("keyword", "while")
            self.expect("op", "(")
            cond = self._parse_expr()
            self.expect("op", ")")
            self.expect("op", ";")
            return ast.DoWhile(line=line, cond=cond, body=body)
        if self.accept("keyword", "for"):
            self.expect("op", "(")
            init = None if self.check("op", ";") else self._parse_simple_stmt()
            self.expect("op", ";")
            cond = None if self.check("op", ";") else self._parse_expr()
            self.expect("op", ";")
            step = None if self.check("op", ")") else self._parse_simple_stmt()
            self.expect("op", ")")
            return ast.For(line=line, init=init, cond=cond, step=step, body=self._stmt_as_list())
        if self.accept("keyword", "return"):
            value = None if self.check("op", ";") else self._parse_expr()
            self.expect("op", ";")
            return ast.Return(line=line, value=value)
        if self.accept("keyword", "break"):
            self.expect("op", ";")
            return ast.Break(line=line)
        if self.accept("keyword", "continue"):
            self.expect("op", ";")
            return ast.Continue(line=line)
        stmt = self._parse_simple_stmt()
        self.expect("op", ";")
        return stmt

    def _stmt_as_list(self) -> list[ast.Stmt]:
        if self.check("op", "{"):
            return self._parse_block()
        return [self._parse_stmt()]

    def _parse_simple_stmt(self) -> ast.Stmt:
        """An assignment, declaration, or bare expression (for for-clauses)."""
        line = self.current.line
        if self._is_type():
            ctype = self._parse_type()
            name = self.expect("ident").text
            init = None
            if self.accept("op", "="):
                init = self._parse_expr()
            return ast.LocalDecl(line=line, ctype=ctype, name=name, init=init)
        expr = self._parse_expr()
        if self.accept("op", "="):
            value = self._parse_expr()
            return ast.Assign(line=line, target=expr, value=value)
        for compound, base_op in _COMPOUND_ASSIGN.items():
            if self.accept("op", compound):
                value = self._parse_expr()
                desugared = ast.Binary(line=line, op=base_op, left=expr, right=value)
                return ast.Assign(line=line, target=expr, value=desugared)
        return ast.ExprStmt(line=line, expr=expr)

    # -- expressions -----------------------------------------------------------------

    def _parse_expr(self, min_precedence: int = 1) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.current
            if token.kind != "op" or token.text not in _BINARY_PRECEDENCE:
                return left
            precedence = _BINARY_PRECEDENCE[token.text]
            if precedence < min_precedence:
                return left
            self.advance()
            right = self._parse_expr(precedence + 1)
            left = ast.Binary(line=token.line, op=token.text, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.advance()
            return ast.Unary(line=token.line, op=token.text, operand=self._parse_unary())
        if token.kind == "op" and token.text == "&":
            self.advance()
            target = self._parse_unary()
            if not isinstance(target, ast.ArrayRef):
                raise ParseError(f"line {token.line}: '&' applies to array elements only")
            return ast.AddressOf(line=token.line, target=target)
        # C-style cast: '(' type ')' unary
        if token.kind == "op" and token.text == "(":
            next_token = self.tokens[self.pos + 1]
            if next_token.kind == "keyword" and next_token.text in _TYPE_NAMES:
                self.advance()
                ctype = self._parse_type()
                self.expect("op", ")")
                return ast.Cast(line=token.line, ctype=ctype, operand=self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            text = token.text.rstrip("lL")
            value = int(text, 0)
            ctype = CType.LONG if token.text[-1] in "lL" else CType.INT
            return ast.IntLiteral(line=token.line, value=value, ctype=ctype)
        if token.kind == "float":
            self.advance()
            text = token.text.rstrip("fF")
            ctype = CType.FLOAT if token.text[-1] in "fF" else CType.DOUBLE
            return ast.FloatLiteral(line=token.line, value=float(text), ctype=ctype)
        if token.kind == "ident":
            self.advance()
            name = token.text
            if self.accept("op", "("):
                args: list[ast.Expr] = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return ast.Call(line=token.line, name=name, args=args)
            if self.check("op", "["):
                indices: list[ast.Expr] = []
                while self.accept("op", "["):
                    indices.append(self._parse_expr())
                    self.expect("op", "]")
                return ast.ArrayRef(line=token.line, name=name, indices=indices)
            return ast.VarRef(line=token.line, name=name)
        if self.accept("op", "("):
            expr = self._parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError(f"line {token.line}: unexpected token {token.text!r}")


def parse_source(source: str) -> ast.Program:
    """Parse MiniC source text into a :class:`~repro.minic.ast.Program`."""
    return Parser(tokenize(source)).parse_program()
