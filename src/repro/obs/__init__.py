"""``repro.obs`` — the zero-dependency observability layer.

Three cooperating subsystems, each off by default and free (a global read
plus a branch) when disabled, so :class:`~repro.wasm.interpreter.ExecutionStats`
and every signed resource vector stay byte-identical whether or not anyone
is watching:

* :mod:`repro.obs.trace`   — hierarchical spans with monotonic timestamps
  and parent/child links, exported as JSON or Chrome ``trace_event`` format
  (``about:tracing`` / Perfetto);
* :mod:`repro.obs.metrics` — Counter / Gauge / Histogram (fixed log-scale
  buckets) with an OpenMetrics text exporter and a JSON snapshot; the
  system's instruments live in :mod:`repro.obs.instruments`, pinned by the
  ``metric_names.txt`` contract file;
* :mod:`repro.obs.profiler`— per-function and basic-block-segment
  attribution inside both Wasm engines, with a top-N hot-function report
  and flamegraph collapsed-stack output.

A fourth subsystem — the **streaming telemetry pipeline** — builds on the
same off-by-default switch discipline: :mod:`repro.obs.events` (structured,
bounded, replayable event log), :mod:`repro.obs.rollup` (ring-buffer
rolling-window aggregation), :mod:`repro.obs.slo` (declarative threshold and
multi-window burn-rate alerting) and :mod:`repro.obs.audit` (per-tenant
billing-drift reconciliation of meter readings vs signed receipts vs sealed
epochs).

CLI surface: ``repro trace <workload>``, ``repro metrics``, ``repro top``,
``repro alerts``, ``repro run/sandbox --profile`` and ``repro loadtest
--metrics-out/--events-out/--slo``.
"""

from repro.obs.audit import DriftFinding, DriftReport, audit_billing
from repro.obs.context import (
    TelemetryCapture,
    TraceContext,
    activate,
    current_capture,
    env_sample_rate,
    explain_request,
    record_metric,
    trace_id_for,
    worker_event,
    worker_span,
)
from repro.obs.events import (
    Event,
    EventLog,
    disable_events,
    emit,
    enable_events,
    events_enabled,
    get_event_log,
    read_jsonl,
)
from repro.obs.metrics import (
    BYTES_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
)
from repro.obs.profiler import (
    Profiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
    profile,
)
from repro.obs.rollup import RollingAggregator
from repro.obs.slo import Alert, Rule, SLOEngine, load_rules, replay
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "Alert",
    "BYTES_BUCKETS",
    "Counter",
    "DriftFinding",
    "DriftReport",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_SPAN",
    "Profiler",
    "RollingAggregator",
    "Rule",
    "SLOEngine",
    "Span",
    "TelemetryCapture",
    "TraceContext",
    "Tracer",
    "activate",
    "active_profiler",
    "audit_billing",
    "current_capture",
    "disable_events",
    "disable_metrics",
    "disable_profiling",
    "disable_tracing",
    "emit",
    "enable_events",
    "enable_metrics",
    "enable_profiling",
    "enable_tracing",
    "env_sample_rate",
    "events_enabled",
    "explain_request",
    "get_event_log",
    "get_registry",
    "get_tracer",
    "load_rules",
    "metrics_enabled",
    "profile",
    "read_jsonl",
    "record_metric",
    "replay",
    "span",
    "trace_id_for",
    "tracing_enabled",
    "worker_event",
    "worker_span",
]


def disable_all() -> None:
    """Turn every observability subsystem off (the default state)."""
    disable_tracing()
    disable_metrics()
    disable_profiling()
    disable_events()
