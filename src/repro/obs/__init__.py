"""``repro.obs`` — the zero-dependency observability layer.

Three cooperating subsystems, each off by default and free (a global read
plus a branch) when disabled, so :class:`~repro.wasm.interpreter.ExecutionStats`
and every signed resource vector stay byte-identical whether or not anyone
is watching:

* :mod:`repro.obs.trace`   — hierarchical spans with monotonic timestamps
  and parent/child links, exported as JSON or Chrome ``trace_event`` format
  (``about:tracing`` / Perfetto);
* :mod:`repro.obs.metrics` — Counter / Gauge / Histogram (fixed log-scale
  buckets) with an OpenMetrics text exporter and a JSON snapshot; the
  system's instruments live in :mod:`repro.obs.instruments`, pinned by the
  ``metric_names.txt`` contract file;
* :mod:`repro.obs.profiler`— per-function and basic-block-segment
  attribution inside both Wasm engines, with a top-N hot-function report
  and flamegraph collapsed-stack output.

CLI surface: ``repro trace <workload>``, ``repro metrics``,
``repro run/sandbox --profile`` and ``repro loadtest --metrics-out``.
"""

from repro.obs.metrics import (
    BYTES_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
)
from repro.obs.profiler import (
    Profiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
    profile,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_SPAN",
    "Profiler",
    "Span",
    "Tracer",
    "active_profiler",
    "disable_metrics",
    "disable_profiling",
    "disable_tracing",
    "enable_metrics",
    "enable_profiling",
    "enable_tracing",
    "get_registry",
    "get_tracer",
    "metrics_enabled",
    "profile",
    "span",
    "tracing_enabled",
]


def disable_all() -> None:
    """Turn every observability subsystem off (the default state)."""
    disable_tracing()
    disable_metrics()
    disable_profiling()
