"""Per-tenant billing-drift audit: meter readings vs receipts vs seals.

The pipeline's last line of defence.  Metrics say how the gateway is doing
and alerts say when it is misbehaving; the *drift auditor* says whether the
bills are right.  It reconciles, per tenant, three independently-produced
records of the same work:

1. the **event log** — what the serving path *says* it billed (``receipt``
   events, stamped with the emitting gateway's id);
2. the **ledger chain** — the AE-signed receipts themselves (signatures,
   hash links, plausibility of the signed vectors);
3. the **admission ledger** — slots admitted, settled and still in flight.

Cross-checking catches what each record alone cannot: a corrupted meter
reading that slipped past validation shows up as an implausible *signed*
vector; a double-billed retry as more receipts than distinct request ids;
a lost settle callback as ``admitted - in_flight != settled``; a receipt the
gateway recorded but never narrated (or vice versa) as an event/ledger total
mismatch.  Findings are typed (:data:`FINDING_CODES`) and split into
``error`` (billing is wrong) and ``warn`` (billing is incomplete — e.g.
receipts not yet sealed into an epoch) severities; only errors gate CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.instruments import DRIFT_FINDINGS
from repro.tcrypto.rsa import rsa_verify

#: Every code an audit can produce, with the failing reconciliation.
FINDING_CODES = {
    "double-billed": "more receipts than distinct billed request ids",
    "implausible-receipt": "a signed vector no honest run produces (negative component)",
    "bad-signature": "a receipt's AE signature does not verify",
    "chain-broken": "receipt sequence numbers or hash links do not chain",
    "unsettled-admissions": "admitted - in_flight != settled (slot leak)",
    "event-ledger-mismatch": "event-log billing narrative disagrees with the ledger",
    "unsealed-receipts": "receipts not yet covered by any epoch seal",
    "pending-batch": "batched receipts still awaiting their AE batch seal (flush)",
}

#: Codes that mean billing is *wrong* (everything else is a warning).
ERROR_CODES = (
    "double-billed",
    "implausible-receipt",
    "bad-signature",
    "chain-broken",
    "unsettled-admissions",
    "event-ledger-mismatch",
)


@dataclass(frozen=True)
class DriftFinding:
    """One reconciliation failure for one tenant."""

    code: str
    tenant: str
    severity: str  # "error" | "warn"
    detail: str

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "tenant": self.tenant,
            "severity": self.severity,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class DriftReport:
    """The audit verdict: per-tenant findings plus coverage counters."""

    findings: tuple[DriftFinding, ...]
    tenants_checked: int
    receipts_checked: int
    events_checked: int

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding exists (warnings pass)."""
        return not any(f.severity == "error" for f in self.findings)

    def errors(self) -> list[DriftFinding]:
        return [f for f in self.findings if f.severity == "error"]

    def warnings(self) -> list[DriftFinding]:
        return [f for f in self.findings if f.severity == "warn"]

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "tenants_checked": self.tenants_checked,
            "receipts_checked": self.receipts_checked,
            "events_checked": self.events_checked,
            "findings": [f.to_json() for f in self.findings],
        }


def _plausible(vector) -> list[str]:
    """Component-wise plausibility of a *signed* vector.

    Mirrors :func:`repro.service.faults.validate_raw` but runs on the
    receipt side of the trust boundary: a negative component here means an
    implausible reading was *signed into a receipt* — validation was off or
    bypassed, and the bill is provably wrong.
    """
    problems = []
    for name in (
        "weighted_instructions",
        "peak_memory_bytes",
        "memory_integral_page_instructions",
        "io_bytes_in",
        "io_bytes_out",
    ):
        value = getattr(vector, name)
        if value < 0:
            problems.append(f"{name}={value}")
    return problems


def _finding(findings: list, code: str, tenant: str, detail: str) -> None:
    severity = "error" if code in ERROR_CODES else "warn"
    findings.append(
        DriftFinding(code=code, tenant=tenant, severity=severity, detail=detail)
    )
    DRIFT_FINDINGS.inc(code=code)


def _narrative(
    events, gateway_id: str | None, tenants: set[str] | None
) -> tuple[dict[str, int], dict[str, int], int]:
    """One pass over the event stream: the billing narrative per tenant.

    With ``tenants`` given, only those tenants' receipt counters are kept —
    the memory the streaming audit mode holds is O(batch), not O(all
    tenants) — while the returned scanned-event count still covers the
    whole (gateway-filtered) stream.
    """
    event_receipts: dict[str, int] = {}
    event_instructions: dict[str, int] = {}
    checked = 0
    for event in events:
        if gateway_id is not None and event.fields.get("gateway") != gateway_id:
            continue
        checked += 1
        if event.kind != "receipt":
            continue
        tenant = str(event.fields.get("tenant"))
        if tenants is not None and tenant not in tenants:
            continue
        event_receipts[tenant] = event_receipts.get(tenant, 0) + 1
        event_instructions[tenant] = event_instructions.get(tenant, 0) + int(
            event.fields.get("weighted_instructions", 0)
        )
    return event_receipts, event_instructions, checked


def audit_billing(
    ledger,
    admission=None,
    events=None,
    gateway_id: str | None = None,
    tenant_batch: int | None = None,
) -> DriftReport:
    """Reconcile one gateway's billing records; returns a :class:`DriftReport`.

    ``ledger`` is the :class:`~repro.service.ledger.BillingLedger`;
    ``admission`` (optional) the
    :class:`~repro.service.quota.AdmissionController` for the slot
    invariant; ``events`` (optional) an iterable of telemetry
    :class:`~repro.obs.events.Event` records to cross-check against — when
    ``gateway_id`` is given, only events stamped with that id count (so one
    shared event log can audit each sweep point of a multi-gateway run
    separately).

    ``tenant_batch`` turns on **streaming mode**: tenants are grouped by
    their gateway shard (:func:`repro.service.sharding.shard_index_for`,
    the same routing admission state uses) and reconciled ``tenant_batch``
    at a time, holding each batch's event narrative — O(batch) — instead
    of one dict over every tenant.  The event stream is re-scanned per
    batch, so ``events`` must then be a re-iterable sequence (a list or an
    :meth:`EventLog.events` snapshot, not a generator).  Findings are
    identical to the single-pass mode; only peak memory changes.
    """
    # deferred: repro.core's package init reaches back into repro.obs via
    # the instrumentation enclave — a module-level import here would make
    # the cycle unresolvable when repro.obs loads first
    from repro.core.resource_log import verify_log_batches

    findings: list[DriftFinding] = []
    receipts_checked = 0
    events_checked = 0

    tenants = ledger.tenants()
    if tenant_batch is not None and tenant_batch > 0 and len(tenants) > tenant_batch:
        # deferred for the same import-cycle reason as verify_log_batches
        from repro.service.sharding import DEFAULT_SHARDS, shard_index_for

        ordered = sorted(
            tenants, key=lambda t: (shard_index_for(t, DEFAULT_SHARDS), t)
        )
        batches = [
            ordered[i : i + tenant_batch]
            for i in range(0, len(ordered), tenant_batch)
        ]
    else:
        batches = [list(tenants)]

    for batch_index, batch in enumerate(batches):
        # event-log billing narrative, bucketed per tenant (batch-scoped in
        # streaming mode)
        event_receipts: dict[str, int] = {}
        event_instructions: dict[str, int] = {}
        if events is not None:
            event_receipts, event_instructions, checked = _narrative(
                events, gateway_id, set(batch) if len(batches) > 1 else None
            )
            if batch_index == 0:
                events_checked = checked
        for tenant in batch:
            receipts_checked += _audit_tenant(
                ledger,
                admission,
                tenant,
                findings,
                events is not None,
                event_receipts,
                event_instructions,
                verify_log_batches,
            )

    return DriftReport(
        findings=tuple(findings),
        tenants_checked=len(tenants),
        receipts_checked=receipts_checked,
        events_checked=events_checked,
    )


def _audit_tenant(
    ledger,
    admission,
    tenant: str,
    findings: list[DriftFinding],
    have_events: bool,
    event_receipts: dict[str, int],
    event_instructions: dict[str, int],
    verify_log_batches,
) -> int:
    """Reconcile one tenant's records; appends findings, returns receipts seen."""
    receipts = ledger.receipts(tenant)
    ae_key = ledger.ae_key(tenant)

    # exactly-once: every receipt carries a distinct request id
    with_ids = [r for r in receipts if r.request_id is not None]
    billed = ledger.billed_requests(tenant)
    if len(with_ids) != billed:
        _finding(
            findings,
            "double-billed",
            tenant,
            f"{len(with_ids)} receipts with request ids but only "
            f"{billed} distinct requests billed",
        )

    # chain + signature + plausibility of every signed vector; receipts
    # with an empty signature are batch-sealed — their AE signature is
    # the batch's, checked below against the ledger's recorded batches
    has_batched = False
    previous = ledger.GENESIS
    for i, receipt in enumerate(receipts):
        entry = receipt.entry
        if entry.sequence != i or entry.previous_hash != previous:
            _finding(
                findings,
                "chain-broken",
                tenant,
                f"receipt {i}: sequence={entry.sequence}, chain link broken",
            )
            break
        if not entry.signature:
            has_batched = True
        elif not rsa_verify(ae_key, entry.body(), entry.signature):
            _finding(
                findings,
                "bad-signature",
                tenant,
                f"receipt {i}: AE signature does not verify",
            )
            break
        problems = _plausible(entry.vector)
        if problems:
            _finding(
                findings,
                "implausible-receipt",
                tenant,
                f"receipt {i} (request {receipt.request_id}): signed vector "
                "has impossible components: " + ", ".join(problems),
            )
        previous = entry.entry_hash()

    # batched receipts: every unsigned entry must sit under a verifying
    # AE batch seal (ledgers predating batched sealing have no batches()
    # accessor — getattr keeps the auditor usable against them)
    tenant_batches = (
        ledger.batches(tenant) if hasattr(ledger, "batches") else []
    )
    if has_batched or tenant_batches:
        problems, pending = verify_log_batches(
            [r.entry for r in receipts], tenant_batches, ae_key
        )
        for problem in problems:
            _finding(findings, "bad-signature", tenant, problem)
        if pending:
            _finding(
                findings,
                "pending-batch",
                tenant,
                f"{pending} batched receipts await their AE batch seal",
            )

    # admission slot conservation: every admit settles exactly once
    if admission is not None:
        stats = admission.stats(tenant)
        if stats["admitted"] - stats["in_flight"] != stats["settled"]:
            _finding(
                findings,
                "unsettled-admissions",
                tenant,
                f"admitted={stats['admitted']} in_flight={stats['in_flight']} "
                f"settled={stats['settled']}",
            )

    # event narrative vs ledger: same receipt count, same billed total
    if have_events:
        narrated = event_receipts.get(tenant, 0)
        if narrated != len(receipts):
            _finding(
                findings,
                "event-ledger-mismatch",
                tenant,
                f"event log narrates {narrated} receipts, ledger holds "
                f"{len(receipts)}",
            )
        else:
            ledger_total = sum(
                r.entry.vector.weighted_instructions for r in receipts
            )
            narrated_total = event_instructions.get(tenant, 0)
            if narrated_total != ledger_total:
                _finding(
                    findings,
                    "event-ledger-mismatch",
                    tenant,
                    f"event log narrates {narrated_total} weighted "
                    f"instructions, ledger totals {ledger_total}",
                )

    # completeness: receipts outside any sealed epoch are un-auditable
    unsealed = len(receipts) - ledger.sealed_upto(tenant)
    if unsealed > 0:
        _finding(
            findings,
            "unsealed-receipts",
            tenant,
            f"{unsealed} receipts not yet sealed into an epoch",
        )

    return len(receipts)
