"""Benchmark trajectory: perf history appended across loadtest runs.

``BENCH_service.json`` traditionally held only the *latest* loadtest report,
so a perf regression was invisible unless someone remembered the old number.
``repro loadtest --bench-append`` distills each run into one compact,
timestamped point and appends it to a bounded ``trajectory`` list inside the
same file — the full report stays the authoritative snapshot, and the
trajectory gives CI (``benchmarks/test_bench_trajectory.py``) and humans a
cheap time series to eyeball for drift.

Points are deliberately tiny (a handful of scalars per worker count) so a
long history stays a few kilobytes; the list is capped at
:data:`TRAJECTORY_LIMIT` points, dropping the oldest first.
"""

from __future__ import annotations

import json
import os
import time

#: Bump when a trajectory point's shape changes.
TRAJECTORY_SCHEMA = 1

#: Oldest points are dropped beyond this many.
TRAJECTORY_LIMIT = 200


def distill_point(report: dict, ts_s: float | None = None) -> dict:
    """Compress one ``run_loadtest`` report into a single trajectory point."""
    per_workers = {}
    for point in report.get("sweep", []):
        per_workers[str(point["workers"])] = {
            "throughput_rps": point["throughput_rps"],
            "wall_s": point["wall_s"],
            "p50_s": point["latency_s"]["p50"],
            "p99_s": point["latency_s"]["p99"],
            "epoch_ok": point.get("epoch_ok"),
        }
    distilled = {
        "schema": TRAJECTORY_SCHEMA,
        "ts_s": time.time() if ts_s is None else ts_s,
        "requests_per_point": report.get("requests_per_point"),
        "execution_backend": report.get("execution_backend"),
        "engine": report.get("engine"),
        "pool": report.get("pool"),
        "cores_available": report.get("cores_available"),
        "by_workers": per_workers,
    }
    if "speedup_4_over_1" in report:
        distilled["speedup_4_over_1"] = report["speedup_4_over_1"]
    if "serial_totals_match" in report:
        distilled["serial_totals_match"] = report["serial_totals_match"]
    return distilled


def append_point(path: str, point: dict, limit: int = TRAJECTORY_LIMIT) -> dict:
    """Append one distilled point to the trajectory inside a bench file.

    Creates the file if missing; preserves every other key it already holds
    (the latest full report lives alongside the history).  Returns the full
    document as written.
    """
    doc: dict = {}
    if os.path.exists(path):
        with open(path) as handle:
            doc = json.load(handle)
    trajectory = doc.get("trajectory", [])
    trajectory.append(point)
    doc["trajectory"] = trajectory[-limit:]
    doc["trajectory_schema"] = TRAJECTORY_SCHEMA
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc
