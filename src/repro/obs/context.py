"""Distributed trace context and the worker telemetry backhaul.

The gateway's observability used to stop at the process boundary: worker
processes (the stand-ins for the paper's per-request enclave instances,
§4.3) emitted spans, events and metrics into *their own* process-local
registries, which evaporated when the result pickled back.  This module
carries telemetry across that boundary in both directions:

* a :class:`TraceContext` — 128-bit ``trace_id``, parent span id, sampled
  flag and a hop counter — is minted at gateway admission, serialized into
  the :class:`~repro.service.worker.ExecutionTask` wire format, and
  re-activated inside ``execute_task``;
* a :class:`TelemetryCapture` — a bounded, process-local buffer of spans,
  structured events and metric deltas — records everything the worker-side
  call sites observe while the context is active, and ships home inside
  :class:`~repro.service.worker.WorkerResult`;
* the gateway merges the capture into its own tracer / event log / metrics
  registry with origin-pid tagging, so one request preempted across three
  workers still renders as **one stitched Perfetto timeline**.

Identity is deterministic: ``trace_id = sha256("trace:<gateway>:<request>")``
truncated to 128 bits, so offline consumers (the drift auditor, ``repro
explain``, CI's stitch checker) can recompute the id for any request without
carrying extra state.  Head sampling is deterministic too — the decision is
a pure function of the trace id and the rate (``REPRO_TRACE_SAMPLE``), so
every process agrees on whether a given request is sampled.

Worker-side call sites use :func:`worker_span` / :func:`worker_event` /
:func:`record_metric` instead of the process-global tracer: activation is
**thread-local**, so in the threaded pool two concurrent tasks never write
into each other's capture, and when no capture is active (the serial
sandbox path, obs-off runs) every helper is a no-op costing one
thread-local read.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace

from repro.tcrypto.hashing import sha256

#: Environment knob for head sampling: a rate in [0, 1], default 1.0
#: (every traced request is backhauled).  Read once per gateway.
SAMPLE_ENV = "REPRO_TRACE_SAMPLE"

#: Capture bounds — a preempted slice records a handful of spans and
#: events, so these are generous; beyond them the capture *counts* drops
#: (shipped home and surfaced as ``acctee_trace_spans_dropped``) rather
#: than growing without bound inside a worker.
MAX_SPANS = 256
MAX_EVENTS = 256


def env_sample_rate(default: float = 1.0) -> float:
    """The head-sampling rate from ``REPRO_TRACE_SAMPLE``, clamped to [0, 1]."""
    raw = os.environ.get(SAMPLE_ENV)
    if raw is None:
        return default
    try:
        rate = float(raw)
    except ValueError:
        return default
    return min(1.0, max(0.0, rate))


@dataclass(frozen=True)
class TraceContext:
    """One request's distributed-trace identity, minted at admission.

    ``trace_id`` is 32 hex chars (128 bits), deterministic in the gateway id
    and request id.  ``parent_span_id`` is the gateway-side span the
    worker's spans should hang under.  ``hop`` counts re-dispatches — a
    fresh request is hop 0, each snapshot re-dispatch or retry increments
    it, so a preempted job's worker spans are ordered even when wall clocks
    disagree.  ``sampled`` gates the *backhaul* (span/event/metric capture
    in the worker); the id itself always exists once minted, so receipts
    and ledger events carry provenance even for unsampled requests.
    """

    trace_id: str
    parent_span_id: int = 0
    sampled: bool = True
    hop: int = 0

    @classmethod
    def mint(
        cls,
        gateway_id: str,
        request_id: int,
        sample_rate: float = 1.0,
        parent_span_id: int = 0,
    ) -> "TraceContext":
        trace_id = trace_id_for(gateway_id, request_id)
        return cls(
            trace_id=trace_id,
            parent_span_id=parent_span_id,
            sampled=sampling_decision(trace_id, sample_rate),
            hop=0,
        )

    def next_hop(self, parent_span_id: int | None = None) -> "TraceContext":
        """The context for a re-dispatch (snapshot resume, retry)."""
        return replace(
            self,
            hop=self.hop + 1,
            parent_span_id=(
                self.parent_span_id if parent_span_id is None else parent_span_id
            ),
        )

    # -- wire format (rides inside ExecutionTask, so: plain tuple) ---------------

    def to_wire(self) -> tuple:
        return (self.trace_id, self.parent_span_id, self.sampled, self.hop)

    @classmethod
    def from_wire(cls, wire: tuple) -> "TraceContext":
        trace_id, parent_span_id, sampled, hop = wire
        return cls(
            trace_id=str(trace_id),
            parent_span_id=int(parent_span_id),
            sampled=bool(sampled),
            hop=int(hop),
        )


def trace_id_for(gateway_id: str, request_id: int | str) -> str:
    """The deterministic 128-bit trace id of one gateway request.

    Pure function of (gateway, request) so any consumer — the CI stitch
    checker, ``repro explain`` — can recompute it offline.
    """
    return sha256(f"trace:{gateway_id}:{request_id}".encode())[:16].hex()


def sampling_decision(trace_id: str, rate: float) -> bool:
    """Deterministic head-sampling: the same trace id always decides the same
    way, in every process, for a given rate."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    fraction = int.from_bytes(bytes.fromhex(trace_id)[:8], "big") / 2**64
    return fraction < rate


# ---------------------------------------------------------------------------
# Worker-side capture
# ---------------------------------------------------------------------------


class _CaptureSpan:
    """A span recorded into a capture; context-manager like a real Span."""

    __slots__ = ("_capture", "_record")

    def __init__(self, capture: "TelemetryCapture", record: dict | None):
        self._capture = capture
        self._record = record  # None = dropped by the bound

    def set_attribute(self, key: str, value) -> None:
        if self._record is not None:
            self._record["attrs"][key] = _wire_safe(value)

    def set_attributes(self, **attributes) -> None:
        for key, value in attributes.items():
            self.set_attribute(key, value)

    def end(self) -> None:
        if self._record is not None and self._record["end_ns"] is None:
            self._record["end_ns"] = time.perf_counter_ns()
        self._capture._pop(self._record)

    def __enter__(self) -> "_CaptureSpan":
        return self

    def __exit__(self, *exc) -> bool:
        self.end()
        return False


def _wire_safe(value):
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


class TelemetryCapture:
    """A bounded process-local buffer of worker-side telemetry.

    One capture per task execution, activated thread-locally for the task's
    duration.  Spans use ``time.perf_counter_ns()`` — CLOCK_MONOTONIC on
    Linux, whose epoch is boot time and therefore *shared* across processes
    on the same host — so worker timestamps land directly on the gateway's
    timeline when merged.  Everything is plain dicts/lists/tuples, so the
    capture pickles across the process boundary without custom reducers.
    """

    def __init__(self, ctx: TraceContext, max_spans: int = MAX_SPANS,
                 max_events: int = MAX_EVENTS):
        self.ctx = ctx
        self.pid = os.getpid()
        self.max_spans = max_spans
        self.max_events = max_events
        self.spans: list[dict] = []
        self.events: list[dict] = []
        self.metrics: list[tuple] = []
        self.spans_dropped = 0
        self.events_dropped = 0
        self._next_id = 1
        self._stack: list[dict] = []

    # -- recording ---------------------------------------------------------------

    def span(self, name: str, **attributes) -> _CaptureSpan:
        if len(self.spans) >= self.max_spans:
            self.spans_dropped += 1
            return _CaptureSpan(self, None)
        record = {
            "name": name,
            "id": self._next_id,
            "parent": self._stack[-1]["id"] if self._stack else None,
            "start_ns": time.perf_counter_ns(),
            "end_ns": None,
            "thread_id": threading.get_ident(),
            "attrs": {k: _wire_safe(v) for k, v in attributes.items()},
        }
        self._next_id += 1
        self.spans.append(record)
        self._stack.append(record)
        return _CaptureSpan(self, record)

    def _pop(self, record: dict | None) -> None:
        if record is not None and self._stack and self._stack[-1] is record:
            self._stack.pop()

    def event(self, kind: str, **fields) -> None:
        if len(self.events) >= self.max_events:
            self.events_dropped += 1
            return
        self.events.append(
            {
                "kind": kind,
                "ts_s": time.time(),
                "fields": {k: _wire_safe(v) for k, v in fields.items()},
            }
        )

    def metric(self, name: str, value: float = 1.0, kind: str = "counter",
               **labels) -> None:
        """Record a metric delta to replay into the gateway registry.

        Worker-side ``Counter.inc`` / ``Histogram.observe`` calls mutate the
        *worker process's* registry, which is discarded with the process —
        this is the copy that survives.  The gateway applies deltas only
        when the capture's origin pid differs from its own (a process-pool
        worker); in the threaded pool the direct calls already landed in
        the shared registry and replaying them would double-count.
        """
        self.metrics.append((name, kind, float(value), tuple(sorted(labels.items()))))

    # -- wire format -------------------------------------------------------------

    def to_wire(self) -> dict:
        now = time.perf_counter_ns()
        spans = []
        for record in self.spans:
            wire = dict(record)
            if wire["end_ns"] is None:  # left open (e.g. a fault unwound it)
                wire["end_ns"] = now
                wire["attrs"] = dict(wire["attrs"], truncated=True)
            spans.append(wire)
        return {
            "trace_id": self.ctx.trace_id,
            "hop": self.ctx.hop,
            "pid": self.pid,
            "spans": spans,
            "spans_dropped": self.spans_dropped,
            "events": list(self.events),
            "events_dropped": self.events_dropped,
            "metrics": [list(m) for m in self.metrics],
        }


# ---------------------------------------------------------------------------
# Thread-local activation: the worker-side analogue of the global switches
# ---------------------------------------------------------------------------

_ACTIVE = threading.local()


@contextmanager
def activate(capture: TelemetryCapture):
    """Make ``capture`` the calling thread's telemetry sink for the block."""
    previous = getattr(_ACTIVE, "capture", None)
    _ACTIVE.capture = capture
    try:
        yield capture
    finally:
        _ACTIVE.capture = previous


def current_capture() -> TelemetryCapture | None:
    return getattr(_ACTIVE, "capture", None)


class _NullCaptureSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attribute(self, key: str, value) -> None:
        pass

    def set_attributes(self, **attributes) -> None:
        pass

    def end(self) -> None:
        pass


_NULL_CAPTURE_SPAN = _NullCaptureSpan()


def worker_span(name: str, **attributes):
    """Open a span on the active capture; a shared no-op when inactive."""
    capture = getattr(_ACTIVE, "capture", None)
    if capture is None:
        return _NULL_CAPTURE_SPAN
    return capture.span(name, **attributes)


def worker_event(kind: str, **fields) -> None:
    """Record a structured event on the active capture; no-op when inactive."""
    capture = getattr(_ACTIVE, "capture", None)
    if capture is not None:
        capture.event(kind, **fields)


def record_metric(name: str, value: float = 1.0, kind: str = "counter",
                  **labels) -> None:
    """Record a metric delta on the active capture; no-op when inactive."""
    capture = getattr(_ACTIVE, "capture", None)
    if capture is not None:
        capture.metric(name, value, kind=kind, **labels)


# ---------------------------------------------------------------------------
# repro explain — reconstruct one request's causal story from the event log
# ---------------------------------------------------------------------------

#: Event kinds whose ``request_id`` field ties them to one request.
_REQUEST_KINDS = (
    "admit",
    "fault_injected",
    "retry",
    "checkpoint",
    "receipt",
    "settled",
)


def _belongs(event_request_id, request_id: int) -> bool:
    if event_request_id == request_id:
        return True
    return isinstance(event_request_id, str) and event_request_id.startswith(
        f"{request_id}#cp"
    )


def explain_request(events, request_id: int, gateway: str | None = None) -> dict:
    """Reconstruct one request's causal chain from a recorded event stream.

    ``events`` is a list of :class:`~repro.obs.events.Event` records (live
    from an :class:`~repro.obs.events.EventLog` or replayed from JSONL).
    Returns a structured report — admission, injected faults, retries,
    worker origin pids (from backhauled worker events), checkpoint and
    final receipts, settlement, and the epoch seal that committed the final
    receipt — plus human-readable ``story`` lines for the CLI.
    """
    matched = []
    for event in events:
        fields = event.fields
        if gateway is not None and fields.get("gateway") not in (None, gateway):
            continue
        if event.kind in _REQUEST_KINDS and _belongs(
            fields.get("request_id"), request_id
        ):
            matched.append(event)
    if not matched:
        return {
            "request_id": request_id,
            "found": False,
            "story": [f"request {request_id}: no events found"],
        }

    gateway_id = next(
        (e.fields["gateway"] for e in matched if "gateway" in e.fields), gateway
    )
    trace_id = next(
        (e.fields["trace_id"] for e in matched if e.fields.get("trace_id")), None
    )
    origin_pids = sorted(
        {e.fields["origin_pid"] for e in events
         if e.fields.get("origin_pid") is not None
         and e.fields.get("trace_id") == trace_id and trace_id is not None}
    )
    t0 = matched[0].ts_s
    story: list[str] = []
    checkpoints = []
    receipts = []
    settled = None
    for event in matched:
        fields = event.fields
        dt = event.ts_s - t0
        if event.kind == "admit":
            story.append(
                f"+{dt:7.3f}s  admitted at {gateway_id} as request {request_id}"
                + (f"  trace={trace_id}" if trace_id else "")
            )
        elif event.kind == "fault_injected":
            story.append(f"+{dt:7.3f}s  chaos plan injected fault {fields['fault']!r}")
        elif event.kind == "retry":
            story.append(
                f"+{dt:7.3f}s  transient failure; re-dispatched "
                f"(attempt {fields.get('attempt')})"
            )
        elif event.kind == "checkpoint":
            checkpoints.append(fields.get("checkpoint"))
            story.append(
                f"+{dt:7.3f}s  preempted: checkpoint #{fields.get('checkpoint')} "
                f"({fields.get('snapshot_bytes')} B snapshot) re-dispatched"
            )
        elif event.kind == "receipt":
            receipts.append(
                {
                    "request_id": fields.get("request_id"),
                    "sequence": fields.get("sequence"),
                    "trace_id": fields.get("trace_id"),
                    "seq": event.seq,
                }
            )
            rid = fields.get("request_id")
            kind = "checkpoint receipt" if isinstance(rid, str) else "final receipt"
            story.append(
                f"+{dt:7.3f}s  AE signed {kind} [{rid}] "
                f"(chain sequence {fields.get('sequence')})"
            )
        elif event.kind == "settled":
            settled = fields
            story.append(
                f"+{dt:7.3f}s  settled: outcome={fields.get('outcome')} "
                f"latency={fields.get('latency_s', 0.0):.3f}s"
            )
    # worker-side provenance: backhauled events carry origin_pid
    if origin_pids:
        story.append(f"          executed on worker pid(s): "
                     f"{', '.join(str(p) for p in origin_pids)}")
    # the seal that committed the final receipt: first seal after it
    sealed_epoch = None
    if receipts:
        last_receipt_seq = max(r["seq"] for r in receipts)
        for event in events:
            if (
                event.kind == "seal"
                and event.seq > last_receipt_seq
                and (gateway_id is None or event.fields.get("gateway") == gateway_id)
            ):
                sealed_epoch = event.fields.get("epoch")
                story.append(
                    f"+{event.ts_s - t0:7.3f}s  epoch {sealed_epoch} sealed "
                    f"({event.fields.get('receipts')} receipts under one Merkle root)"
                )
                break
    return {
        "request_id": request_id,
        "found": True,
        "gateway": gateway_id,
        "trace_id": trace_id,
        "origin_pids": origin_pids,
        "checkpoints": [c for c in checkpoints if c is not None],
        "receipts": receipts,
        "settled": settled,
        "sealed_epoch": sealed_epoch,
        "story": story,
    }
