"""Structured, append-only event log — the telemetry pipeline's source.

Where metrics aggregate and spans time, *events* narrate: one schema-versioned
record per interesting state change on the serving path (admission, retry,
fault injection, deadline, receipt, epoch seal, pool rebuild).  The emitting
sites live in :mod:`repro.service.gateway`, :mod:`repro.service.ledger`,
:mod:`repro.service.faults` and :mod:`repro.service.worker`; the consumers are
the rolling-window aggregator (:mod:`repro.obs.rollup`), the SLO rules engine
(:mod:`repro.obs.slo`) and the billing-drift auditor (:mod:`repro.obs.audit`).

Design constraints, in order:

* **Off by default and nearly free when off** — :func:`emit` is one module
  global read and a ``None`` check, like spans and metrics, so the disabled
  serving path stays byte-identical and unmeasurably slower.
* **Bounded memory with honest backpressure** — the in-process buffer holds at
  most ``capacity`` events; beyond that, *new* events are counted as dropped
  rather than evicting history (the head of a run — registrations, first
  admissions — is what forensics needs, and a silent ring would misreport
  rates).  Synchronous subscribers (the aggregator) still see dropped events:
  aggregation is O(1) memory and must not develop blind spots under load.
* **Replayable** — :meth:`EventLog.write_jsonl` persists one JSON object per
  line with a leading ``_meta`` header (schema version, drop count), and
  :func:`read_jsonl` round-trips it, so ``repro alerts --replay`` evaluates
  the same rules offline that ``repro loadtest --slo`` evaluated live.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

from repro.obs.instruments import EVENTS_DROPPED, EVENTS_EMITTED

#: Bump when a record's reserved keys or an event kind's fields change shape.
SCHEMA_VERSION = 1

#: Keys every record carries; event field names must not collide with them.
RESERVED_KEYS = ("v", "seq", "ts_s", "kind")

#: The event kinds the serving path emits (documentation + schema tests; the
#: log itself accepts any kind so experiments can add their own).
EVENT_KINDS = (
    "admit",  # admission granted: tenant, request_id
    "reject",  # typed admission rejection: tenant, code
    "fault_injected",  # chaos plan stamped a fault: tenant, request_id, fault
    "retry",  # transient failure re-dispatch: tenant, request_id, attempt
    "meter_invalid",  # raw readings failed sanity validation: problems
    "settled",  # request finalized: tenant, request_id, outcome, latency_s
    "receipt",  # AE-signed receipt recorded: tenant, request_id, sequence,
    #             weighted_instructions, entry_hash
    "seal",  # billing epoch sealed: epoch, spans, receipts, duration_s
    "epoch_audit",  # offline epoch verification: epoch, outcome, errors
    "pool_rebuild",  # worker pool replaced a broken executor: rebuilds, pool_kind
    "alert",  # SLO rule fired: rule, severity, value
)


def _json_safe(value):
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


@dataclass(frozen=True)
class Event:
    """One telemetry record: a kind, a wall-clock timestamp, flat fields."""

    seq: int
    ts_s: float
    kind: str
    fields: dict = field(default_factory=dict)
    v: int = SCHEMA_VERSION

    def to_json(self) -> dict:
        record = {"v": self.v, "seq": self.seq, "ts_s": self.ts_s, "kind": self.kind}
        record.update(self.fields)
        return record

    @classmethod
    def from_json(cls, record: dict) -> "Event":
        fields = {k: v for k, v in record.items() if k not in RESERVED_KEYS}
        return cls(
            seq=int(record["seq"]),
            ts_s=float(record["ts_s"]),
            kind=str(record["kind"]),
            fields=fields,
            v=int(record.get("v", SCHEMA_VERSION)),
        )


class EventLog:
    """A bounded, thread-safe, append-only buffer of :class:`Event` records."""

    def __init__(self, capacity: int = 65536, clock=time.time):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._events: list[Event] = []
        self._subscribers: list = []
        self._emitted = 0
        self._dropped = 0

    def subscribe(self, fn) -> None:
        """Register a synchronous consumer called with every event (even ones
        the bounded buffer drops) while holding no log lock."""
        self._subscribers.append(fn)

    def emit(self, kind: str, **fields) -> Event:
        for key in RESERVED_KEYS:
            if key in fields:
                raise ValueError(f"event field {key!r} shadows a reserved key")
        safe = {k: _json_safe(v) for k, v in fields.items()}
        with self._lock:
            self._emitted += 1
            event = Event(seq=self._emitted, ts_s=self._clock(), kind=kind, fields=safe)
            dropped = len(self._events) >= self.capacity
            if dropped:
                self._dropped += 1
            else:
                self._events.append(event)
        EVENTS_EMITTED.inc(kind=kind)
        if dropped:
            EVENTS_DROPPED.inc()
        for fn in self._subscribers:
            fn(event)
        return event

    # -- introspection -----------------------------------------------------------

    def events(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    def stats(self) -> dict:
        with self._lock:
            return {
                "emitted": self._emitted,
                "buffered": len(self._events),
                "dropped": self._dropped,
                "capacity": self.capacity,
            }

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._emitted = 0
            self._dropped = 0

    # -- persistence -------------------------------------------------------------

    def write_jsonl(self, path: str) -> dict:
        """Persist the buffered events, one JSON object per line.

        The first line is a ``_meta`` header carrying the schema version and
        the emitted/dropped counters, so a reader knows whether the file is a
        complete record of the run or a truncated one.  Returns the header.
        """
        with self._lock:
            events = list(self._events)
            meta = {
                "v": SCHEMA_VERSION,
                "kind": "_meta",
                "emitted": self._emitted,
                "buffered": len(events),
                "dropped": self._dropped,
            }
        with open(path, "w") as handle:
            handle.write(json.dumps(meta, sort_keys=True) + "\n")
            for event in events:
                handle.write(json.dumps(event.to_json(), sort_keys=True) + "\n")
        return meta


def read_jsonl(path: str) -> tuple[dict, list[Event]]:
    """Load an event file written by :meth:`EventLog.write_jsonl`.

    Tolerates a missing header (plain event-per-line files) and skips blank
    lines; raises ``ValueError`` on a schema version newer than this reader.
    """
    meta: dict = {"v": SCHEMA_VERSION, "kind": "_meta"}
    events: list[Event] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "_meta":
                meta = record
                if int(record.get("v", SCHEMA_VERSION)) > SCHEMA_VERSION:
                    raise ValueError(
                        f"event file schema v{record['v']} is newer than "
                        f"this reader (v{SCHEMA_VERSION})"
                    )
                continue
            events.append(Event.from_json(record))
    return meta, events


# ---------------------------------------------------------------------------
# Module-level switch: off by default, one global read on the disabled path
# ---------------------------------------------------------------------------

_LOG: EventLog | None = None


def enable_events(log: EventLog | None = None, capacity: int = 65536) -> EventLog:
    """Install (and return) the process-wide event log; emits record from now."""
    global _LOG
    _LOG = log or EventLog(capacity=capacity)
    return _LOG


def disable_events() -> None:
    global _LOG
    _LOG = None


def events_enabled() -> bool:
    return _LOG is not None


def get_event_log() -> EventLog | None:
    return _LOG


def emit(kind: str, **fields) -> None:
    """Emit one event on the active log; a no-op when events are disabled."""
    log = _LOG
    if log is None:
        return
    log.emit(kind, **fields)
