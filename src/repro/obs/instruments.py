"""The repo's metric families, declared once and shared by every layer.

Three groups, mirroring the system's layers:

* ``acctee_gateway_*`` / ``acctee_ledger_*`` / ``acctee_worker_pool_*`` —
  the metering gateway's serving path (per-tenant request latency, queue
  depth, admission rejections by reason, ledger seal duration, worker-pool
  utilisation);
* ``acctee_cache_*`` — the shared instrumented-module cache;
* ``acctee_sandbox_*`` — per-run resource accounting as signed by the AE
  (weighted instructions, memory peak, I/O bytes).

The full name list is pinned by ``metric_names.txt`` next to this module —
a *contract file*: dashboards and the CI artifact diff rely on these names,
so adding/renaming a metric must update the contract in the same commit
(:func:`check_contract` fails CI otherwise).
"""

from __future__ import annotations

import pathlib

from repro.obs.metrics import (
    BYTES_BUCKETS,
    LATENCY_BUCKETS,
    get_registry,
    set_governance_hook,
)

REGISTRY = get_registry()

# -- gateway request path ------------------------------------------------------

GATEWAY_REQUESTS = REGISTRY.counter(
    "acctee_gateway_requests",
    "Requests settled by the metering gateway, by tenant and outcome.",
)
GATEWAY_REQUEST_LATENCY = REGISTRY.histogram(
    "acctee_gateway_request_latency_seconds",
    "Submit-to-receipt latency per request, by tenant.",
    buckets=LATENCY_BUCKETS,
)
GATEWAY_QUEUE_DEPTH = REGISTRY.gauge(
    "acctee_gateway_queue_depth",
    "Admitted in-flight requests per tenant (admission controller view).",
)
GATEWAY_REJECTIONS = REGISTRY.counter(
    "acctee_gateway_admission_rejections",
    "Typed admission rejections, by tenant and reason code.",
)
GATEWAY_RETRIES = REGISTRY.counter(
    "acctee_gateway_retries",
    "Request re-dispatches after transient worker failures, by tenant.",
)
GATEWAY_DEADLINE_EXCEEDED = REGISTRY.counter(
    "acctee_gateway_deadline_exceeded",
    "Requests failed by the wall-clock deadline watchdog, by tenant.",
)
GATEWAY_RESULTS_REJECTED = REGISTRY.counter(
    "acctee_gateway_results_rejected",
    "Worker meter readings that failed sanity validation, by tenant.",
)
LEDGER_SEAL_DURATION = REGISTRY.histogram(
    "acctee_ledger_seal_duration_seconds",
    "Wall time to seal one billing epoch (Merkle root + signature).",
    buckets=LATENCY_BUCKETS,
)
LEDGER_RECEIPTS = REGISTRY.counter(
    "acctee_ledger_receipts",
    "Signed receipts recorded into tenant hash chains, by tenant.",
)
LEDGER_BATCH_SEALS = REGISTRY.counter(
    "acctee_ledger_batch_seals",
    "AE batch seals recorded (one signature per receipt flush window), by tenant.",
)

# -- worker pool ---------------------------------------------------------------

POOL_TASKS = REGISTRY.counter(
    "acctee_worker_pool_tasks",
    "Execution tasks submitted to the worker pool.",
)
POOL_TASKS_IN_FLIGHT = REGISTRY.gauge(
    "acctee_worker_pool_tasks_in_flight",
    "Execution tasks currently queued or running on the pool.",
)
POOL_UTILISATION = REGISTRY.gauge(
    "acctee_worker_pool_utilisation_ratio",
    "In-flight tasks over pool size, clamped to [0, 1].",
)
POOL_EXEC_WALL = REGISTRY.histogram(
    "acctee_worker_pool_exec_wall_seconds",
    "Worker-side wall time per executed task (instantiate + run).",
    buckets=LATENCY_BUCKETS,
)
POOL_REBUILDS = REGISTRY.counter(
    "acctee_worker_pool_rebuilds",
    "In-place rebuilds of a broken worker pool (crashed worker process).",
)

# -- instrumentation cache -----------------------------------------------------

CACHE_HITS = REGISTRY.counter(
    "acctee_cache_hits",
    "Instrumented-module cache hits (IE pass skipped).",
)
CACHE_MISSES = REGISTRY.counter(
    "acctee_cache_misses",
    "Instrumented-module cache misses (IE pass executed).",
)
CACHE_EVICTIONS = REGISTRY.counter(
    "acctee_cache_evictions",
    "LRU evictions from the instrumented-module cache.",
)

# -- telemetry pipeline (event log, SLO engine, drift auditor) -----------------

EVENTS_EMITTED = REGISTRY.counter(
    "acctee_events_emitted",
    "Structured telemetry events emitted, by kind.",
)
EVENTS_DROPPED = REGISTRY.counter(
    "acctee_events_dropped",
    "Events the bounded event-log buffer refused (backpressure drops).",
)
SLO_ALERTS = REGISTRY.counter(
    "acctee_slo_alerts",
    "SLO rule firings, by rule name and severity.",
)
DRIFT_FINDINGS = REGISTRY.counter(
    "acctee_billing_drift_findings",
    "Billing-drift audit findings, by finding code.",
)

# -- sandbox / accounting enclave ----------------------------------------------

SANDBOX_RUNS = REGISTRY.counter(
    "acctee_sandbox_runs",
    "Workload invocations accounted by an accounting enclave.",
)
SANDBOX_INSTRUCTIONS = REGISTRY.counter(
    "acctee_sandbox_weighted_instructions",
    "Weighted instructions metered across all accounted runs.",
)
SANDBOX_PEAK_MEMORY = REGISTRY.histogram(
    "acctee_sandbox_peak_memory_bytes",
    "Peak linear-memory footprint per accounted run.",
    buckets=BYTES_BUCKETS,
)
SANDBOX_IO_BYTES = REGISTRY.counter(
    "acctee_sandbox_io_bytes",
    "Bytes crossing the module boundary via accounted I/O, by direction.",
)

# -- snapshot / warm pools / preemption ----------------------------------------

SNAPSHOTS_TAKEN = REGISTRY.counter(
    "acctee_snapshots_taken",
    "Execution-state snapshots captured, by kind (warm image vs suspend).",
)
SNAPSHOT_BYTES = REGISTRY.histogram(
    "acctee_snapshot_bytes",
    "Encoded snapshot size on the wire (RWSN blob).",
    buckets=BYTES_BUCKETS,
)
WARM_POOL_HITS = REGISTRY.counter(
    "acctee_warm_pool_hits",
    "Requests served from a warm-pool instance (setup cost skipped).",
)
RESUMES_TOTAL = REGISTRY.counter(
    "acctee_resumes_total",
    "Suspended call stacks resumed from a snapshot.",
)
CHECKPOINT_RECEIPTS = REGISTRY.counter(
    "acctee_checkpoint_receipts",
    "Incremental (non-final) checkpoint receipts signed by an AE, by tenant.",
)

# -- distributed tracing (context propagation + worker backhaul) ---------------

TRACES_SAMPLED_TOTAL = REGISTRY.counter(
    "acctee_traces_sampled_total",
    "Trace contexts minted at gateway admission, by sampling decision.",
)
TRACE_SPANS_DROPPED = REGISTRY.counter(
    "acctee_trace_spans_dropped",
    "Worker-side spans/events dropped by the bounded telemetry capture.",
)
TRACE_BACKHAUL_BYTES = REGISTRY.histogram(
    "acctee_trace_backhaul_bytes",
    "Serialized worker telemetry shipped back per task result.",
    buckets=BYTES_BUCKETS,
)

# -- cardinality governance (tenant budgets, sketches, quota eviction) ---------

TENANT_CARDINALITY = REGISTRY.gauge(
    "acctee_tenant_cardinality",
    "Approximate distinct tenant labelsets ever observed, by governed metric.",
)
LABEL_SETS_EVICTED = REGISTRY.counter(
    "acctee_label_sets_evicted",
    "Tenant labelsets denied an exact series (spilled to sketches), by metric.",
)
SKETCH_MERGES = REGISTRY.counter(
    "acctee_sketch_merges",
    "Shard-sketch merge operations performed for global rollups, by kind.",
)
QUOTA_EVICTIONS = REGISTRY.counter(
    "acctee_quota_evictions",
    "Idle lazily-instantiated tenant quota states evicted by the admission LRU.",
)


def _governance_hook(metric_name: str, cardinality: int, evicted_delta: int) -> None:
    """Surface per-instrument governance state as metrics.

    The governance instruments themselves carry only a ``metric`` label —
    never ``tenant`` — so this cannot recurse into another spill decision.
    """
    TENANT_CARDINALITY.set(cardinality, metric=metric_name)
    if evicted_delta:
        LABEL_SETS_EVICTED.inc(evicted_delta, metric=metric_name)


set_governance_hook(_governance_hook)

# -- the name contract ---------------------------------------------------------

CONTRACT_PATH = pathlib.Path(__file__).with_name("metric_names.txt")


def contract_names() -> list[str]:
    """The checked-in metric-name contract, one name per line."""
    lines = CONTRACT_PATH.read_text().splitlines()
    return sorted(line.strip() for line in lines if line.strip() and not line.startswith("#"))


def check_contract() -> list[str]:
    """Return drift messages (empty = registry matches the contract file).

    Both directions are hard errors: a *registered* name the file lacks
    breaks the promise that dashboards can rely on the file, and an *extra*
    (unregistered) name in the file is a dashboard pointed at a metric that
    no longer exists — historically the easier drift to ship, because
    nothing at runtime ever touches it.
    """
    expected = set(contract_names())
    actual = set(REGISTRY.names())
    problems = []
    for name in sorted(actual - expected):
        problems.append(
            f"missing: metric {name!r} is registered but missing from metric_names.txt"
        )
    for name in sorted(expected - actual):
        problems.append(
            f"extra: metric {name!r} is in metric_names.txt but not registered "
            "(stale contract entry)"
        )
    return problems
