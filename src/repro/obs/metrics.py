"""Metrics registry: Counter, Gauge and Histogram with OpenMetrics export.

A :class:`MetricsRegistry` holds named instruments; observation sites call
``metric.inc(...)`` / ``.set(...)`` / ``.observe(...)`` with free-form label
keywords (``tenant="tenant-atax"``, ``code="queue-full"``).  Histograms use
**fixed log-scale buckets** (powers of four), so the same bucket layout
covers microsecond span costs and multi-second epoch seals without
per-deployment tuning.

Export formats:

* :meth:`MetricsRegistry.render_openmetrics` — Prometheus/OpenMetrics text
  (``# TYPE``/``# HELP`` headers, ``_total``/``_bucket``/``_sum``/``_count``
  samples, terminated by ``# EOF``);
* :meth:`MetricsRegistry.snapshot` — a JSON-friendly dict, what
  ``repro loadtest --metrics-out`` persists.

Recording is **off by default**: every mutator checks one shared flag first
(:func:`enable_metrics` / :func:`disable_metrics`), so instrumented call
sites cost an attribute read and a branch when metrics are disabled.  The
instrument *objects* always exist — declaring them is free — which keeps
the metric-name contract (``metric_names.txt``) checkable without running
any workload.

**Cardinality governance**: labelsets carrying a ``tenant`` label are the
one unbounded dimension (everything else — outcomes, codes, engines — is a
small enum).  Each instrument therefore runs its tenant labelsets through a
:class:`~repro.obs.sketch.TenantSpill` governor: the first
:func:`tenant_budget` distinct tenants get exact series, later ones are
folded into a single ``tenant="__other__"`` overflow series while a
Space-Saving/Count-Min sketch keeps their per-tenant frequencies within
documented bounds.  Totals are conserved (the overflow series absorbs every
spilled observation) and nothing is silently lost: governance state is
reported through the hook installed by :mod:`repro.obs.instruments` as the
``acctee_tenant_cardinality`` gauge and ``acctee_label_sets_evicted``
counter.  Already-materialised series are a dict hit away, so the governed
hot path costs the same as before for in-budget tenants.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.obs.sketch import OVERFLOW_KEY, TenantSpill


#: Log-scale (powers of 4) latency buckets: 1 µs … ~67 s.
LATENCY_BUCKETS: tuple[float, ...] = tuple(1e-6 * 4**i for i in range(14))

#: Log-scale (powers of 4) size buckets: 1 B … 1 GiB.
BYTES_BUCKETS: tuple[float, ...] = tuple(float(4**i) for i in range(16))


def bucket_index(buckets: tuple[float, ...], value: float) -> int:
    """The bucket an observation lands in: the first bound ``>= value``.

    Deterministic at the edges — a value exactly on a bound belongs to that
    bound's ``le`` bucket, and anything at or below the first bound
    (including zero and negative observations) lands in bucket 0.  Index
    ``len(buckets)`` is the implicit ``+Inf`` overflow bucket.  Shared by
    :class:`Histogram` and the rolling-window aggregator so both count the
    same observation into the same bucket.
    """
    return bisect_left(buckets, value)


class _State:
    """Shared on/off switch read by every instrument mutator."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


_STATE = _State()


def enable_metrics() -> None:
    _STATE.enabled = True


def disable_metrics() -> None:
    _STATE.enabled = False


def metrics_enabled() -> bool:
    return _STATE.enabled


#: Default per-instrument budget of exact tenant labelsets.  Generous on
#: purpose: workloads below it behave exactly as before governance existed.
DEFAULT_TENANT_BUDGET = 1024

_TENANT_BUDGET = DEFAULT_TENANT_BUDGET
_SPILL_TOP_K = 64

# Installed by repro.obs.instruments (metrics.py cannot import it — the
# instruments module imports this one).  Called *outside* instrument locks
# as hook(metric_name, cardinality, evicted_delta) whenever an instrument's
# governance state changes.
_GOVERNANCE_HOOK = None


def set_tenant_budget(budget: int, top_k: int | None = None) -> int:
    """Set the exact-series budget for instruments' *future* governors.

    Returns the previous budget.  Applies to governors created after the
    call (each instrument builds its governor lazily on the first tenant
    labelset, and :meth:`Metric.reset` discards it), so tests and the soak
    harness set the budget up front and ``reset()`` between runs.
    """
    global _TENANT_BUDGET, _SPILL_TOP_K
    if budget < 0:
        raise ValueError("budget must be >= 0")
    previous = _TENANT_BUDGET
    _TENANT_BUDGET = budget
    if top_k is not None:
        _SPILL_TOP_K = top_k
    return previous


def tenant_budget() -> int:
    return _TENANT_BUDGET


def set_governance_hook(hook) -> None:
    """Install the observer for governance state changes (or ``None``)."""
    global _GOVERNANCE_HOOK
    _GOVERNANCE_HOOK = hook


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _render_labels(key: tuple) -> str:
    if not key:
        return ""
    parts = []
    for name, value in key:
        escaped = (
            str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        parts.append(f'{name}="{escaped}"')
    return "{" + ",".join(parts) + "}"


class Metric:
    """Base: a named instrument with per-labelset values."""

    kind = "untyped"

    #: Governor fidelity (see :class:`~repro.obs.sketch.TenantSpill`):
    #: counters/histograms keep Space-Saving heavy hitters ("heavy");
    #: gauges route only — their sets are not additive, so sketched
    #: frequency would be meaningless.  The rolling aggregator, not the
    #: registry, carries the "full" Count-Min governor the top-K and SLO
    #: paths read.
    _spill_mode = "heavy"

    #: Spills are reported to the governance hook in batches of this many —
    #: per-spill notification is measurable overhead at 10^6-tenant spill
    #: rates, and the evicted counter tolerates being up to a batch behind.
    _NOTIFY_BATCH = 64

    def __init__(self, name: str, help: str):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._spill: TenantSpill | None = None  # lazy tenant-cardinality governor
        self._spill_reported = 0  # spills already delivered to the hook

    def _govern(self, key: tuple, labels: dict):
        """Route a *new* labelset through the tenant budget.

        Caller holds ``self._lock`` and has already missed the values dict
        — in-budget tenants only pay this once, at series creation.
        Returns ``(key, notify)``: the (possibly overflow-rewritten) series
        key, and ``None`` or ``(cardinality, evicted_delta)`` to hand to
        :func:`_notify` after the lock is released.  Spill deltas are
        batched (:data:`_NOTIFY_BATCH`); tracked-set growth notifies
        immediately.
        """
        tenant = labels.get("tenant")
        if tenant is None:
            return key, None
        spill = self._spill
        if spill is None:
            spill = self._spill = TenantSpill(
                budget=_TENANT_BUDGET,
                top_k=_SPILL_TOP_K,
                mode=self._spill_mode,
            )
        tenant = str(tenant)
        tracked_before = spill.tracked_count()
        routed = spill.admit(tenant)
        if routed is not tenant and routed != tenant:
            # key is already the sorted labelset tuple; swap the tenant
            # element in place instead of rebuilding + re-sorting the dict
            key = tuple(
                (name, OVERFLOW_KEY) if name == "tenant" else (name, value)
                for name, value in key
            )
        pending = spill.spills - self._spill_reported
        if spill.tracked_count() != tracked_before or pending >= self._NOTIFY_BATCH:
            self._spill_reported = spill.spills
            return key, (spill.cardinality(), pending)
        return key, None

    def _notify(self, notify) -> None:
        """Report a governance change to the instruments hook (lock-free)."""
        if notify is None:
            return
        hook = _GOVERNANCE_HOOK
        if hook is not None:
            hook(self.name, notify[0], notify[1])

    def spill_info(self) -> dict | None:
        """Governance state (``None`` until a tenant labelset was seen)."""
        with self._lock:
            return self._spill.to_json() if self._spill is not None else None

    def top_spilled(self, n: int | None = None) -> list[tuple[str, int, int]]:
        """``(tenant, count, error)`` for the heaviest over-budget tenants."""
        with self._lock:
            if self._spill is None:
                return []
            return self._spill.top_spilled(n)

    def spill_estimate(self, tenant: str) -> int:
        """Overestimate of a spilled tenant's observation count."""
        with self._lock:
            return self._spill.estimate(tenant) if self._spill is not None else 0

    def reset(self) -> None:
        raise NotImplementedError

    def samples(self) -> list[str]:
        raise NotImplementedError

    def to_json(self):
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count (rendered with the ``_total`` suffix)."""

    kind = "counter"

    def __init__(self, name: str, help: str):
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not _STATE.enabled:
            return
        key = _label_key(labels)
        notify = None
        with self._lock:
            if key in self._values:
                self._values[key] += amount
            else:
                key, notify = self._govern(key, labels)
                self._values[key] = self._values.get(key, 0.0) + amount
        self._notify(notify)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def reset(self) -> None:
        with self._lock:
            self._values.clear()
            self._spill = None
            self._spill_reported = 0

    def samples(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}_total{_render_labels(key)} {_format_number(value)}"
            for key, value in items
        ]

    def to_json(self) -> dict:
        with self._lock:
            return {
                _render_labels(key) or "{}": value
                for key, value in sorted(self._values.items())
            }


class Gauge(Metric):
    """A value that goes up and down (queue depth, pool utilisation)."""

    kind = "gauge"
    _spill_mode = "route"  # gauge sets are not additive; route-only governor

    def __init__(self, name: str, help: str):
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        if not _STATE.enabled:
            return
        key = _label_key(labels)
        notify = None
        with self._lock:
            if key not in self._values:
                key, notify = self._govern(key, labels)
            # an over-budget gauge series is last-write-wins on the single
            # overflow labelset: bounded, and still shows recent activity
            self._values[key] = float(value)
        self._notify(notify)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not _STATE.enabled:
            return
        key = _label_key(labels)
        notify = None
        with self._lock:
            if key in self._values:
                self._values[key] += amount
            else:
                key, notify = self._govern(key, labels)
                self._values[key] = self._values.get(key, 0.0) + amount
        self._notify(notify)

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()
            self._spill = None
            self._spill_reported = 0

    def samples(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_render_labels(key)} {_format_number(value)}"
            for key, value in items
        ]

    def to_json(self) -> dict:
        with self._lock:
            return {
                _render_labels(key) or "{}": value
                for key, value in sorted(self._values.items())
            }


class Histogram(Metric):
    """A distribution over fixed log-scale buckets.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches everything above.  Per-labelset state is (bucket counts, sum,
    count), exported cumulatively as OpenMetrics requires.
    """

    kind = "histogram"
    # route-only governor: a spilled tenant's observations fold fully into
    # the __other__ series' buckets (distribution conserved); per-tenant
    # heavy-hitter ranking for spilled traffic comes from the rolling
    # aggregator's full-mode sketches, so maintaining a second Space-Saving
    # per histogram would duplicate hot-path work for data nothing reads
    _spill_mode = "route"

    def __init__(self, name: str, help: str, buckets: tuple[float, ...] = LATENCY_BUCKETS):
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets = tuple(float(b) for b in buckets)
        self._series: dict[tuple, list] = {}  # key -> [counts, sum, count]
        # key -> bucket index -> (trace_id, value): the last sampled
        # observation that landed in each bucket, OpenMetrics-exemplar style,
        # so a latency bucket links straight to a concrete stitched trace
        self._exemplars: dict[tuple, dict[int, tuple[str, float]]] = {}

    def observe(self, value: float, exemplar: str | None = None, **labels) -> None:
        if not _STATE.enabled:
            return
        key = _label_key(labels)
        index = bucket_index(self.buckets, value)
        notify = None
        with self._lock:
            series = self._series.get(key)
            if series is None:
                key, notify = self._govern(key, labels)
                series = self._series.get(key)
            if series is None:
                series = self._series[key] = [[0] * (len(self.buckets) + 1), 0.0, 0]
            series[0][index] += 1
            series[1] += value
            series[2] += 1
            if exemplar is not None:
                # last-write-wins per bucket: the freshest trace is the one
                # an operator drilling into a bucket wants to open
                self._exemplars.setdefault(key, {})[index] = (exemplar, value)
        self._notify(notify)

    def exemplar(self, bucket: int, **labels) -> tuple[str, float] | None:
        """The (trace_id, value) exemplar recorded for one bucket index."""
        with self._lock:
            return self._exemplars.get(_label_key(labels), {}).get(bucket)

    def count(self, **labels) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series[2] if series else 0

    def sum(self, **labels) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series[1] if series else 0.0

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            self._exemplars.clear()
            self._spill = None
            self._spill_reported = 0

    def samples(self) -> list[str]:
        with self._lock:
            items = sorted((k, (list(v[0]), v[1], v[2])) for k, v in self._series.items())
            exemplars = {k: dict(v) for k, v in self._exemplars.items()}
        lines = []
        for key, (counts, total, count) in items:
            cumulative = 0
            for index, (bound, n) in enumerate(zip(self.buckets, counts)):
                cumulative += n
                le_key = key + (("le", _format_number(bound)),)
                line = f"{self.name}_bucket{_render_labels(le_key)} {cumulative}"
                ex = exemplars.get(key, {}).get(index)
                if ex is not None:
                    line += f' # {{trace_id="{ex[0]}"}} {_format_number(ex[1])}'
                lines.append(line)
            cumulative += counts[-1]
            inf_key = key + (("le", "+Inf"),)
            line = f"{self.name}_bucket{_render_labels(inf_key)} {cumulative}"
            ex = exemplars.get(key, {}).get(len(self.buckets))
            if ex is not None:
                line += f' # {{trace_id="{ex[0]}"}} {_format_number(ex[1])}'
            lines.append(line)
            lines.append(f"{self.name}_sum{_render_labels(key)} {_format_number(total)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {count}")
        return lines

    def to_json(self) -> dict:
        with self._lock:
            return {
                _render_labels(key) or "{}": {
                    "buckets": dict(zip(map(_format_number, self.buckets), series[0])),
                    "overflow": series[0][-1],
                    "sum": series[1],
                    "count": series[2],
                    **(
                        {
                            "exemplars": {
                                str(index): {"trace_id": ex[0], "value": ex[1]}
                                for index, ex in sorted(
                                    self._exemplars[key].items()
                                )
                            }
                        }
                        if key in self._exemplars
                        else {}
                    ),
                }
                for key, series in sorted(self._series.items())
            }

    def snapshot(self, **labels) -> dict:
        """One labelset's state as a mergeable value snapshot.

        ``counts`` has ``len(buckets) + 1`` entries (the last is the
        ``+Inf`` overflow); ``buckets`` records the bounds so two snapshots
        can only merge when their layouts agree.
        """
        with self._lock:
            series = self._series.get(_label_key(labels))
            counts = list(series[0]) if series else [0] * (len(self.buckets) + 1)
            return {
                "buckets": list(self.buckets),
                "counts": counts,
                "sum": series[1] if series else 0.0,
                "count": series[2] if series else 0,
            }

    @staticmethod
    def merge_snapshots(a: dict, b: dict) -> dict:
        """Combine two :meth:`snapshot` values (same bucket layout required)."""
        if a["buckets"] != b["buckets"]:
            raise ValueError("cannot merge histogram snapshots with different buckets")
        return {
            "buckets": list(a["buckets"]),
            "counts": [x + y for x, y in zip(a["counts"], b["counts"])],
            "sum": a["sum"] + b["sum"],
            "count": a["count"] + b["count"],
        }


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Holds instruments by name; renders OpenMetrics text and JSON snapshots."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _register(self, metric: Metric) -> Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} already registered as {existing.kind}"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help: str) -> Counter:
        return self._register(Counter(name, help))  # type: ignore[return-value]

    def gauge(self, name: str, help: str) -> Gauge:
        return self._register(Gauge(name, help))  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str, buckets: tuple[float, ...] = LATENCY_BUCKETS
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets))  # type: ignore[return-value]

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every instrument's recorded values (names stay registered)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def render_openmetrics(self) -> str:
        """Prometheus/OpenMetrics exposition text, ``# EOF``-terminated."""
        lines: list[str] = []
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.extend(metric.samples())
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-friendly dump of every instrument's current values."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        return {
            metric.name: {"kind": metric.kind, "values": metric.to_json()}
            for metric in metrics
        }


#: The process-wide default registry; the instruments in
#: :mod:`repro.obs.instruments` all live here.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _DEFAULT
