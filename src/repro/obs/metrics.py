"""Metrics registry: Counter, Gauge and Histogram with OpenMetrics export.

A :class:`MetricsRegistry` holds named instruments; observation sites call
``metric.inc(...)`` / ``.set(...)`` / ``.observe(...)`` with free-form label
keywords (``tenant="tenant-atax"``, ``code="queue-full"``).  Histograms use
**fixed log-scale buckets** (powers of four), so the same bucket layout
covers microsecond span costs and multi-second epoch seals without
per-deployment tuning.

Export formats:

* :meth:`MetricsRegistry.render_openmetrics` — Prometheus/OpenMetrics text
  (``# TYPE``/``# HELP`` headers, ``_total``/``_bucket``/``_sum``/``_count``
  samples, terminated by ``# EOF``);
* :meth:`MetricsRegistry.snapshot` — a JSON-friendly dict, what
  ``repro loadtest --metrics-out`` persists.

Recording is **off by default**: every mutator checks one shared flag first
(:func:`enable_metrics` / :func:`disable_metrics`), so instrumented call
sites cost an attribute read and a branch when metrics are disabled.  The
instrument *objects* always exist — declaring them is free — which keeps
the metric-name contract (``metric_names.txt``) checkable without running
any workload.
"""

from __future__ import annotations

import threading
from bisect import bisect_left


#: Log-scale (powers of 4) latency buckets: 1 µs … ~67 s.
LATENCY_BUCKETS: tuple[float, ...] = tuple(1e-6 * 4**i for i in range(14))

#: Log-scale (powers of 4) size buckets: 1 B … 1 GiB.
BYTES_BUCKETS: tuple[float, ...] = tuple(float(4**i) for i in range(16))


def bucket_index(buckets: tuple[float, ...], value: float) -> int:
    """The bucket an observation lands in: the first bound ``>= value``.

    Deterministic at the edges — a value exactly on a bound belongs to that
    bound's ``le`` bucket, and anything at or below the first bound
    (including zero and negative observations) lands in bucket 0.  Index
    ``len(buckets)`` is the implicit ``+Inf`` overflow bucket.  Shared by
    :class:`Histogram` and the rolling-window aggregator so both count the
    same observation into the same bucket.
    """
    return bisect_left(buckets, value)


class _State:
    """Shared on/off switch read by every instrument mutator."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


_STATE = _State()


def enable_metrics() -> None:
    _STATE.enabled = True


def disable_metrics() -> None:
    _STATE.enabled = False


def metrics_enabled() -> bool:
    return _STATE.enabled


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _render_labels(key: tuple) -> str:
    if not key:
        return ""
    parts = []
    for name, value in key:
        escaped = (
            str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        parts.append(f'{name}="{escaped}"')
    return "{" + ",".join(parts) + "}"


class Metric:
    """Base: a named instrument with per-labelset values."""

    kind = "untyped"

    def __init__(self, name: str, help: str):
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def reset(self) -> None:
        raise NotImplementedError

    def samples(self) -> list[str]:
        raise NotImplementedError

    def to_json(self):
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count (rendered with the ``_total`` suffix)."""

    kind = "counter"

    def __init__(self, name: str, help: str):
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not _STATE.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def samples(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}_total{_render_labels(key)} {_format_number(value)}"
            for key, value in items
        ]

    def to_json(self) -> dict:
        with self._lock:
            return {
                _render_labels(key) or "{}": value
                for key, value in sorted(self._values.items())
            }


class Gauge(Metric):
    """A value that goes up and down (queue depth, pool utilisation)."""

    kind = "gauge"

    def __init__(self, name: str, help: str):
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        if not _STATE.enabled:
            return
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not _STATE.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def samples(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_render_labels(key)} {_format_number(value)}"
            for key, value in items
        ]

    def to_json(self) -> dict:
        with self._lock:
            return {
                _render_labels(key) or "{}": value
                for key, value in sorted(self._values.items())
            }


class Histogram(Metric):
    """A distribution over fixed log-scale buckets.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches everything above.  Per-labelset state is (bucket counts, sum,
    count), exported cumulatively as OpenMetrics requires.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, buckets: tuple[float, ...] = LATENCY_BUCKETS):
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets = tuple(float(b) for b in buckets)
        self._series: dict[tuple, list] = {}  # key -> [counts, sum, count]
        # key -> bucket index -> (trace_id, value): the last sampled
        # observation that landed in each bucket, OpenMetrics-exemplar style,
        # so a latency bucket links straight to a concrete stitched trace
        self._exemplars: dict[tuple, dict[int, tuple[str, float]]] = {}

    def observe(self, value: float, exemplar: str | None = None, **labels) -> None:
        if not _STATE.enabled:
            return
        key = _label_key(labels)
        index = bucket_index(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = [[0] * (len(self.buckets) + 1), 0.0, 0]
            series[0][index] += 1
            series[1] += value
            series[2] += 1
            if exemplar is not None:
                # last-write-wins per bucket: the freshest trace is the one
                # an operator drilling into a bucket wants to open
                self._exemplars.setdefault(key, {})[index] = (exemplar, value)

    def exemplar(self, bucket: int, **labels) -> tuple[str, float] | None:
        """The (trace_id, value) exemplar recorded for one bucket index."""
        with self._lock:
            return self._exemplars.get(_label_key(labels), {}).get(bucket)

    def count(self, **labels) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series[2] if series else 0

    def sum(self, **labels) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series[1] if series else 0.0

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            self._exemplars.clear()

    def samples(self) -> list[str]:
        with self._lock:
            items = sorted((k, (list(v[0]), v[1], v[2])) for k, v in self._series.items())
            exemplars = {k: dict(v) for k, v in self._exemplars.items()}
        lines = []
        for key, (counts, total, count) in items:
            cumulative = 0
            for index, (bound, n) in enumerate(zip(self.buckets, counts)):
                cumulative += n
                le_key = key + (("le", _format_number(bound)),)
                line = f"{self.name}_bucket{_render_labels(le_key)} {cumulative}"
                ex = exemplars.get(key, {}).get(index)
                if ex is not None:
                    line += f' # {{trace_id="{ex[0]}"}} {_format_number(ex[1])}'
                lines.append(line)
            cumulative += counts[-1]
            inf_key = key + (("le", "+Inf"),)
            line = f"{self.name}_bucket{_render_labels(inf_key)} {cumulative}"
            ex = exemplars.get(key, {}).get(len(self.buckets))
            if ex is not None:
                line += f' # {{trace_id="{ex[0]}"}} {_format_number(ex[1])}'
            lines.append(line)
            lines.append(f"{self.name}_sum{_render_labels(key)} {_format_number(total)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {count}")
        return lines

    def to_json(self) -> dict:
        with self._lock:
            return {
                _render_labels(key) or "{}": {
                    "buckets": dict(zip(map(_format_number, self.buckets), series[0])),
                    "overflow": series[0][-1],
                    "sum": series[1],
                    "count": series[2],
                    **(
                        {
                            "exemplars": {
                                str(index): {"trace_id": ex[0], "value": ex[1]}
                                for index, ex in sorted(
                                    self._exemplars[key].items()
                                )
                            }
                        }
                        if key in self._exemplars
                        else {}
                    ),
                }
                for key, series in sorted(self._series.items())
            }

    def snapshot(self, **labels) -> dict:
        """One labelset's state as a mergeable value snapshot.

        ``counts`` has ``len(buckets) + 1`` entries (the last is the
        ``+Inf`` overflow); ``buckets`` records the bounds so two snapshots
        can only merge when their layouts agree.
        """
        with self._lock:
            series = self._series.get(_label_key(labels))
            counts = list(series[0]) if series else [0] * (len(self.buckets) + 1)
            return {
                "buckets": list(self.buckets),
                "counts": counts,
                "sum": series[1] if series else 0.0,
                "count": series[2] if series else 0,
            }

    @staticmethod
    def merge_snapshots(a: dict, b: dict) -> dict:
        """Combine two :meth:`snapshot` values (same bucket layout required)."""
        if a["buckets"] != b["buckets"]:
            raise ValueError("cannot merge histogram snapshots with different buckets")
        return {
            "buckets": list(a["buckets"]),
            "counts": [x + y for x, y in zip(a["counts"], b["counts"])],
            "sum": a["sum"] + b["sum"],
            "count": a["count"] + b["count"],
        }


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Holds instruments by name; renders OpenMetrics text and JSON snapshots."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _register(self, metric: Metric) -> Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} already registered as {existing.kind}"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help: str) -> Counter:
        return self._register(Counter(name, help))  # type: ignore[return-value]

    def gauge(self, name: str, help: str) -> Gauge:
        return self._register(Gauge(name, help))  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str, buckets: tuple[float, ...] = LATENCY_BUCKETS
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets))  # type: ignore[return-value]

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every instrument's recorded values (names stay registered)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def render_openmetrics(self) -> str:
        """Prometheus/OpenMetrics exposition text, ``# EOF``-terminated."""
        lines: list[str] = []
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.extend(metric.samples())
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-friendly dump of every instrument's current values."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        return {
            metric.name: {"kind": metric.kind, "values": metric.to_json()}
            for metric in metrics
        }


#: The process-wide default registry; the instruments in
#: :mod:`repro.obs.instruments` all live here.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _DEFAULT
