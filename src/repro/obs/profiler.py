"""Hot-path profiler for the Wasm execution engines.

Attribution happens at two granularities, both driven by hooks the engines
call only when a profiler is active (``Instance._profiler`` is ``None``
otherwise, so the disabled cost is a local ``None`` check):

* **functions** — :meth:`Profiler.enter_function` / :meth:`exit_function`
  wrap every defined-function call in
  :meth:`repro.wasm.interpreter.Instance.call_function` (both engines share
  that path).  A shadow call stack splits wall time, visit counts and model
  cycles into *inclusive* (with callees) and *exclusive* (self) shares, and
  accumulates exclusive wall time per call stack for flamegraphs;

* **basic-block segments** — the pre-decoded engine reports each segment
  entry (:meth:`record_segment`: function, start pc, instruction count);
  the legacy engine, which has no segment structure, falls back to
  per-instruction reporting (:meth:`record_point`), i.e. segments of
  length one.

Outputs: :meth:`top_functions` / :meth:`top_segments` (data),
:meth:`report` (a text table naming real Wasm functions), and
:meth:`collapsed_stacks` — the ``stack;frames count`` format every standard
flamegraph tool (flamegraph.pl, speedscope, inferno) consumes, with
exclusive wall microseconds as the count.

Activation mirrors the tracer: :func:`enable_profiling` installs a
process-wide profiler which :meth:`Instance.invoke` snapshots, so the AE's
fresh per-invocation instances inside ``repro sandbox --profile`` pick it
up without any signature threading.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class Profiler:
    """Accumulates per-function and per-segment attribution for one session."""

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        # label -> [calls, incl_wall_ns, excl_wall_ns, incl_visits,
        #           excl_visits, incl_cycles, excl_cycles]
        self.functions: dict[str, list] = {}
        # (label, start_pc) -> [entries, instructions]
        self.segments: dict[tuple[str, int], list] = {}
        # (label, label, ...) root-first -> exclusive wall ns
        self.collapsed: dict[tuple[str, ...], int] = {}

    # -- engine hooks ------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def enter_function(self, label: str, executed: int, cycles: float) -> None:
        # frame: [label, start_ns, executed, cycles, child_wall, child_visits,
        #         child_cycles]
        self._stack().append([label, time.perf_counter_ns(), executed, cycles, 0, 0, 0.0])

    def exit_function(self, executed: int, cycles: float) -> None:
        now = time.perf_counter_ns()
        stack = self._stack()
        label, start_ns, start_executed, start_cycles, child_wall, child_visits, child_cycles = (
            stack.pop()
        )
        incl_wall = now - start_ns
        incl_visits = executed - start_executed
        incl_cycles = cycles - start_cycles
        excl_wall = incl_wall - child_wall
        excl_visits = incl_visits - child_visits
        excl_cycles = incl_cycles - child_cycles
        if stack:
            parent = stack[-1]
            parent[4] += incl_wall
            parent[5] += incl_visits
            parent[6] += incl_cycles
        path = tuple(frame[0] for frame in stack) + (label,)
        with self._lock:
            stat = self.functions.get(label)
            if stat is None:
                stat = self.functions[label] = [0, 0, 0, 0, 0, 0.0, 0.0]
            stat[0] += 1
            stat[1] += incl_wall
            stat[2] += excl_wall
            stat[3] += incl_visits
            stat[4] += excl_visits
            stat[5] += incl_cycles
            stat[6] += excl_cycles
            self.collapsed[path] = self.collapsed.get(path, 0) + excl_wall

    def record_segment(self, label: str, start_pc: int, instructions: int) -> None:
        """One entry into a pre-decoded basic-block segment."""
        key = (label, start_pc)
        seg = self.segments.get(key)
        if seg is None:
            with self._lock:
                seg = self.segments.setdefault(key, [0, 0])
        seg[0] += 1
        seg[1] += instructions

    def record_point(self, label: str, pc: int) -> None:
        """Legacy-engine fallback: one executed instruction at (label, pc)."""
        key = (label, pc)
        seg = self.segments.get(key)
        if seg is None:
            with self._lock:
                seg = self.segments.setdefault(key, [0, 0])
        seg[0] += 1
        seg[1] += 1

    # -- reports -----------------------------------------------------------------

    def top_functions(self, n: int = 10) -> list[dict]:
        with self._lock:
            rows = [
                {
                    "function": label,
                    "calls": stat[0],
                    "inclusive_wall_s": stat[1] / 1e9,
                    "exclusive_wall_s": stat[2] / 1e9,
                    "inclusive_visits": stat[3],
                    "exclusive_visits": stat[4],
                    "inclusive_cycles": stat[5],
                    "exclusive_cycles": stat[6],
                }
                for label, stat in self.functions.items()
            ]
        rows.sort(key=lambda r: r["exclusive_wall_s"], reverse=True)
        return rows[:n]

    def top_segments(self, n: int = 10) -> list[dict]:
        with self._lock:
            rows = [
                {
                    "function": label,
                    "start_pc": pc,
                    "entries": seg[0],
                    "instructions": seg[1],
                }
                for (label, pc), seg in self.segments.items()
            ]
        rows.sort(key=lambda r: r["instructions"], reverse=True)
        return rows[:n]

    def report(self, top: int = 10) -> str:
        """A human-readable hot-function (and hot-segment) report."""
        lines = ["hot functions (by exclusive wall time):"]
        lines.append(
            f"  {'function':<24} {'calls':>8} {'excl ms':>10} {'incl ms':>10} "
            f"{'excl visits':>12} {'incl visits':>12}"
        )
        for row in self.top_functions(top):
            lines.append(
                f"  {row['function']:<24} {row['calls']:>8} "
                f"{row['exclusive_wall_s'] * 1e3:>10.3f} "
                f"{row['inclusive_wall_s'] * 1e3:>10.3f} "
                f"{row['exclusive_visits']:>12} {row['inclusive_visits']:>12}"
            )
        segments = self.top_segments(top)
        if segments:
            lines.append("hot basic-block segments (by instructions executed):")
            lines.append(
                f"  {'function':<24} {'start pc':>8} {'entries':>10} {'instructions':>13}"
            )
            for row in segments:
                lines.append(
                    f"  {row['function']:<24} {row['start_pc']:>8} "
                    f"{row['entries']:>10} {row['instructions']:>13}"
                )
        return "\n".join(lines)

    def collapsed_stacks(self) -> str:
        """Flamegraph collapsed-stack text: ``frame;frame count`` per line.

        Counts are exclusive wall microseconds (minimum 1, so even very fast
        frames survive flamegraph integer truncation).
        """
        with self._lock:
            items = sorted(self.collapsed.items())
        lines = []
        for path, wall_ns in items:
            micros = max(1, wall_ns // 1000)
            lines.append(f"{';'.join(path)} {micros}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict:
        return {
            "functions": self.top_functions(n=len(self.functions) or 1),
            "segments": self.top_segments(n=len(self.segments) or 1),
        }


# ---------------------------------------------------------------------------
# Module-level switch, snapshotted by Instance.invoke
# ---------------------------------------------------------------------------

_active: Profiler | None = None


def enable_profiling(profiler: Profiler | None = None) -> Profiler:
    """Install (and return) the process-wide profiler."""
    global _active
    _active = profiler or Profiler()
    return _active


def disable_profiling() -> None:
    global _active
    _active = None


def active_profiler() -> Profiler | None:
    return _active


@contextmanager
def profile():
    """``with profile() as prof:`` — enable, run, disable, report."""
    prof = enable_profiling()
    try:
        yield prof
    finally:
        disable_profiling()
