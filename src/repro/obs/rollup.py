"""Rolling-window aggregation over the telemetry event stream.

A :class:`RollingAggregator` subscribes to the event log and maintains a ring
of fixed-width time slices (default: 120 slices of one second).  Each slice
holds per-key event counts plus one log-bucket latency histogram; window
queries (``rate``, ``count``, ``quantile``) merge the slices covering the
requested trailing window.  Memory is O(slices × keys) regardless of event
rate, and advancing the ring is O(1) per event — the aggregator can watch a
gateway at full load without growing.

Time comes from the *events*, never from a wall clock read at query time by
default: the aggregator's notion of "now" is the newest event timestamp it
has seen.  That makes live evaluation and offline replay
(``repro alerts --replay events.jsonl``) produce identical answers for the
same stream — the SLO engine evaluates against replayed time, not against
whenever the operator happened to rerun the file.

Counting keys are tuples: ``(kind,)`` for every event, ``(kind, sub)`` when
the event carries a discriminating field (``outcome``, ``code``, ``fault``),
and ``(kind, "tenant", tenant)`` for per-tenant break-downs.  Latency
observations come from ``settled`` events with ``outcome == "ok"`` and use the
same log-scale buckets (and the same :func:`~repro.obs.metrics.bucket_index`
edge semantics) as the metrics registry's histograms.

The per-tenant dimension is **cardinality-governed**: only the first
``tenant_budget`` distinct tenants get exact ``(kind, "tenant", t)`` keys.
Later tenants fold into ``(kind, "tenant", "__other__")`` while per-shard
Space-Saving/Count-Min sketches (sharded with the same tenant-hash routing
as the gateway, :func:`repro.service.sharding.shard_index_for`) keep their
frequencies recoverable within documented bounds.  :meth:`top_tenants`
merges the shard sketches into a global ranking — exact rows beside
sketched rows — so ``repro top`` and the SLO engine evaluate top-K plus
one overflow series instead of 10^6 keys, and window memory stays
O(slices × (kinds + budget)) no matter how many tenants ever appear.
"""

from __future__ import annotations

import threading

from repro.obs.events import Event
from repro.obs.metrics import LATENCY_BUCKETS, bucket_index
from repro.obs.sketch import OVERFLOW_KEY, TenantSpill

#: Event fields that become ``(kind, value)`` counting sub-keys.
SUBKEY_FIELDS = ("outcome", "code", "fault")

#: Event kinds that weigh into the tenant spill sketches.  Every
#: tenant-carrying event still *routes* through the governor (so the ring
#: key folds to the overflow series consistently), but only request-level
#: events count toward a tenant's sketched weight: the top-K ranking then
#: reads "admission attempts per tenant" instead of a mixed event tally,
#: and the spill path does sketch maintenance once per request rather than
#: once per narrative event.
WEIGHED_KINDS = frozenset({"admit", "reject"})

#: Default exact-tenant budget for the window ring (see module docstring).
DEFAULT_TENANT_BUDGET = 512

#: Default number of per-shard spill sketches (matches the gateway's
#: ``repro.service.sharding.DEFAULT_SHARDS`` so per-shard telemetry and
#: admission state line up tenant-for-tenant).
DEFAULT_SKETCH_SHARDS = 8


class _Slice:
    """One ring slot: a slice id, per-key counts and a latency histogram."""

    __slots__ = ("slice_id", "counts", "lat_counts", "lat_sum", "lat_n")

    def __init__(self, n_buckets: int):
        self.slice_id = -1
        self.counts: dict[tuple, int] = {}
        self.lat_counts = [0] * n_buckets
        self.lat_sum = 0.0
        self.lat_n = 0

    def reset(self, slice_id: int) -> None:
        self.slice_id = slice_id
        self.counts.clear()
        for i in range(len(self.lat_counts)):
            self.lat_counts[i] = 0
        self.lat_sum = 0.0
        self.lat_n = 0


class RollingAggregator:
    """Ring-buffer windows over event counts and latency histograms."""

    def __init__(
        self,
        slice_s: float = 1.0,
        slices: int = 120,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        tenant_budget: int = DEFAULT_TENANT_BUDGET,
        top_k: int = 64,
        sketch_shards: int = DEFAULT_SKETCH_SHARDS,
    ):
        if slice_s <= 0:
            raise ValueError("slice_s must be positive")
        if slices < 2:
            raise ValueError("need at least two slices")
        self.slice_s = float(slice_s)
        self.slices = slices
        self.buckets = tuple(float(b) for b in buckets)
        self._ring = [_Slice(len(self.buckets) + 1) for _ in range(slices)]
        self._lock = threading.Lock()
        self.now = 0.0  # newest event timestamp observed
        self.events_seen = 0
        self.tenant_budget = tenant_budget
        self.top_k = top_k
        self._tenants = TenantSpill(
            budget=tenant_budget, top_k=top_k, shards=sketch_shards
        )

    # -- ingestion ---------------------------------------------------------------

    def observe(self, event: Event) -> None:
        """Fold one event into its time slice (the log-subscriber entry point)."""
        keys = [(event.kind,)]
        fields = event.fields
        for sub in SUBKEY_FIELDS:
            value = fields.get(sub)
            if value is not None:
                keys.append((event.kind, str(value)))
        tenant = fields.get("tenant")
        latency = None
        if event.kind == "settled" and fields.get("outcome") == "ok":
            latency = fields.get("latency_s")
        with self._lock:
            if tenant is not None:
                # over-budget tenants fold into the single overflow key;
                # the spill sketches keep their per-tenant frequencies
                # (weighed by request-level events only, see WEIGHED_KINDS)
                routed = self._tenants.admit(
                    str(tenant), 1 if event.kind in WEIGHED_KINDS else 0
                )
                keys.append((event.kind, "tenant", routed))
            if event.ts_s > self.now:
                self.now = event.ts_s
            self.events_seen += 1
            slot = self._slot(event.ts_s)
            if slot is None:
                return  # older than the ring's horizon: nothing to fold into
            for key in keys:
                slot.counts[key] = slot.counts.get(key, 0) + 1
            if latency is not None:
                slot.lat_counts[bucket_index(self.buckets, float(latency))] += 1
                slot.lat_sum += float(latency)
                slot.lat_n += 1

    def _slot(self, ts_s: float) -> _Slice | None:
        """The (possibly recycled) slot for a timestamp; caller holds the lock."""
        slice_id = int(ts_s // self.slice_s)
        newest = int(self.now // self.slice_s)
        if slice_id <= newest - self.slices:
            return None
        slot = self._ring[slice_id % self.slices]
        if slot.slice_id != slice_id:
            slot.reset(slice_id)
        return slot

    # -- window queries ----------------------------------------------------------

    def _window_slots(self, window_s: float, now: float | None) -> list[_Slice]:
        at = self.now if now is None else now
        newest = int(at // self.slice_s)
        span = max(1, min(self.slices, int(round(window_s / self.slice_s))))
        oldest = newest - span + 1
        return [
            slot for slot in self._ring if oldest <= slot.slice_id <= newest
        ]

    def count(self, key: tuple | str, window_s: float, now: float | None = None) -> int:
        """Events matching ``key`` in the trailing window ending at ``now``."""
        if isinstance(key, str):
            key = (key,)
        with self._lock:
            return sum(s.counts.get(key, 0) for s in self._window_slots(window_s, now))

    def rate(self, key: tuple | str, window_s: float, now: float | None = None) -> float:
        """Per-second event rate over the trailing window."""
        return self.count(key, window_s, now) / max(window_s, self.slice_s)

    def latency_stats(
        self, window_s: float, now: float | None = None
    ) -> tuple[list[int], float, int]:
        """Merged (bucket counts, sum, n) of the window's latency histogram."""
        with self._lock:
            slots = self._window_slots(window_s, now)
            counts = [0] * (len(self.buckets) + 1)
            total, n = 0.0, 0
            for slot in slots:
                for i, c in enumerate(slot.lat_counts):
                    counts[i] += c
                total += slot.lat_sum
                n += slot.lat_n
            return counts, total, n

    def quantile(self, q: float, window_s: float, now: float | None = None) -> float:
        """An upper bound on the q-quantile latency over the window.

        Returns the smallest bucket bound whose cumulative count reaches
        ``q`` of the observations — deterministic, and conservative the way
        an alert wants (never *under*-reports the tail).  ``inf`` when the
        quantile lands in the overflow bucket; ``0.0`` with no observations.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        counts, _total, n = self.latency_stats(window_s, now)
        if n == 0:
            return 0.0
        need = q * n
        cumulative = 0
        for bound, c in zip(self.buckets, counts):
            cumulative += c
            if cumulative >= need:
                return bound
        return float("inf")

    def mean_latency(self, window_s: float, now: float | None = None) -> float:
        _counts, total, n = self.latency_stats(window_s, now)
        return total / n if n else 0.0

    def ratio(
        self,
        numerator: tuple | str,
        denominators: list,
        window_s: float,
        now: float | None = None,
    ) -> float:
        """``count(numerator) / sum(count(d) for d in denominators)``; 0 when empty."""
        denom = sum(self.count(d, window_s, now) for d in denominators)
        if denom == 0:
            return 0.0
        return self.count(numerator, window_s, now) / denom

    # -- tenant governance queries -------------------------------------------------

    def key_census(self) -> dict:
        """Distinct keys held across the whole ring (boundedness probe).

        ``tenant_keys`` can never exceed ``tenant_budget + 1`` distinct
        tenants (the exact series plus the overflow key) times the event
        kinds — the invariant the scale soak and the cardinality
        regression test assert.
        """
        keys: set[tuple] = set()
        tenants: set[str] = set()
        with self._lock:
            for slot in self._ring:
                for key in slot.counts:
                    keys.add(key)
                    if len(key) == 3 and key[1] == "tenant":
                        tenants.add(key[2])
        return {"total_keys": len(keys), "tenant_keys": len(tenants)}

    def overflow_ratio(self, window_s: float, now: float | None = None) -> float:
        """Fraction of the window's tenant-keyed events in the overflow series.

        0.0 means every active tenant has an exact series; climbing toward
        1.0 means the exact budget no longer covers the traffic mix and
        per-tenant answers increasingly come from sketches.
        """
        overflow = 0
        total = 0
        with self._lock:
            for slot in self._window_slots(window_s, now):
                for key, c in slot.counts.items():
                    if len(key) == 3 and key[1] == "tenant":
                        total += c
                        if key[2] == OVERFLOW_KEY:
                            overflow += c
        return overflow / total if total else 0.0

    def tenant_cardinality(self) -> int:
        """Approximate distinct tenants ever observed (exact below budget)."""
        with self._lock:
            return self._tenants.cardinality()

    def top_tenants(self, n: int | None = None) -> list[dict]:
        """Global top-N tenants by lifetime request count (``WEIGHED_KINDS``).

        Exact rows (in-budget tenants, ``error == 0``) rank beside sketched
        rows from the shard→global Space-Saving merge — the hierarchical
        rollup that replaces iterating every tenant key.  Shard merges
        performed here are reported as ``acctee_sketch_merges``.  The
        ``events`` field counts admission attempts, the one-per-request
        weight the spill sketches fold.
        """
        with self._lock:
            merges_before = self._tenants.merges
            rows = self._tenants.top(n)
            merges = self._tenants.merges - merges_before
        if merges:
            from repro.obs.instruments import SKETCH_MERGES

            SKETCH_MERGES.inc(merges, kind="rollup")
        return [
            {"tenant": key, "events": count, "error": error, "exact": exact}
            for key, count, error, exact in rows
        ]

    def tenant_estimate(self, tenant: str) -> tuple[int, int]:
        """``(count, error)`` lifetime request estimate for one tenant.

        Exact (error 0) for in-budget tenants; a Count-Min upper bound
        with the Space-Saving error term for spilled ones.  Counts weigh
        request-level events only (``WEIGHED_KINDS``).
        """
        with self._lock:
            tracked = self._tenants._tracked.get(tenant)
            if tracked is not None:
                return tracked, 0
            estimate = self._tenants.estimate(tenant)
            return estimate, estimate

    def tenant_spill_info(self) -> dict:
        """Governance counters for the snapshot / ``repro top`` footer."""
        with self._lock:
            return self._tenants.to_json()

    def snapshot(self, window_s: float, now: float | None = None) -> dict:
        """A JSON-friendly window summary (what ``repro top`` renders)."""
        with self._lock:
            slots = self._window_slots(window_s, now)
            counts: dict[tuple, int] = {}
            for slot in slots:
                for key, c in slot.counts.items():
                    counts[key] = counts.get(key, 0) + c
            spill = self._tenants.to_json()
        return {
            "window_s": window_s,
            "now": self.now if now is None else now,
            "events_seen": self.events_seen,
            "counts": {":".join(key): c for key, c in sorted(counts.items())},
            "latency_s": {
                "p50": self.quantile(0.50, window_s, now),
                "p95": self.quantile(0.95, window_s, now),
                "p99": self.quantile(0.99, window_s, now),
                "mean": self.mean_latency(window_s, now),
            },
            "throughput_rps": self.rate(("settled", "ok"), window_s, now),
            "tenants": {
                "cardinality": spill["cardinality"],
                "tracked": spill["tracked"],
                "spilled_labelsets": spill["spilled_labelsets"],
                "budget": spill["budget"],
                "top": self.top_tenants(self.top_k),
            },
        }
