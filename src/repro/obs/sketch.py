"""Mergeable streaming sketches for tenant-scale telemetry.

The observability stack's per-tenant structures (rollup keys, metric
labelsets, quota states) are exact dicts — O(ever-seen tenants).  At 10^6
tenants that is the memory bill nobody ordered.  This module provides the
bounded-memory substitutes:

* :class:`SpaceSaving` — top-K heavy hitters (Metwally, Agrawal, El Abbadi,
  "Efficient computation of frequent and top-k elements in data streams").
  ``k`` counters total.  Guarantees, with ``N`` the stream total:

  - **overestimate-only**: ``estimate(x) >= true(x)`` for every key;
  - **bounded error**: ``estimate(x) - error(x) <= true(x)`` and every
    tracked key's ``error <= N / k``;
  - **guaranteed heavy hitters**: any key with ``true(x) > N / k`` is
    present in the summary.

* :class:`CountMinSketch` — frequency estimation in ``width × depth``
  counters (Cormode & Muthukrishnan).  Overestimate-only; with
  ``width = ceil(e / eps)`` and ``depth = ceil(ln(1 / delta))`` the
  estimate exceeds the true count by more than ``eps * N`` with
  probability at most ``delta``.

* :class:`HyperLogLog` — distinct-count estimation in ``2^p`` one-byte
  registers (Flajolet et al.), relative error ``~1.04 / sqrt(2^p)``.

All three **merge**: combining per-shard sketches yields a sketch whose
bounds hold for the union stream, so shard→global rollups never need the
raw keys (mergeability in the sense of Agarwal et al., "Mergeable
summaries"; pinned by tests, not just asserted here).

Hashing is deterministic (BLAKE2b with fixed per-row salts), never
Python's randomized ``hash()``: estimates must agree across processes and
across interpreter restarts so shard sketches produced by different
workers merge coherently and replays reproduce.

:class:`TenantSpill` packages the governance policy built from these
parts: the first ``budget`` distinct keys stay exact, everything later
spills into per-shard sketches plus the single ``OVERFLOW_KEY`` series.

Nothing here imports the metrics registry — call sites report
``sketch_merges_total`` etc. themselves — so :mod:`repro.obs.metrics`
can depend on this module without a cycle.

None of the classes are thread-safe on their own; callers (metric
instruments, the rolling aggregator) wrap access in their own locks.
"""

from __future__ import annotations

import hashlib
import heapq
import math

#: The single series that absorbs every over-budget tenant's observations.
OVERFLOW_KEY = "__other__"

_shard_index_for = None


def shard_index_for(tenant_id: str, shards: int) -> int:
    """Deferred alias for :func:`repro.service.sharding.shard_index_for`.

    This module sits *below* the service layer in the import graph
    (``metrics`` imports it, and the service package's init transitively
    imports ``instruments`` → ``metrics``), so binding the router at import
    time would be a cycle.  Sketches are only ever built at runtime, well
    after both packages finish importing.
    """
    global _shard_index_for
    if _shard_index_for is None:
        from repro.service.sharding import shard_index_for as bound

        _shard_index_for = bound
    return _shard_index_for(tenant_id, shards)


def _hash64(data: bytes, salt: bytes) -> int:
    """Deterministic 64-bit hash (BLAKE2b, domain-separated by ``salt``)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8, salt=salt).digest(), "big"
    )


class SpaceSaving:
    """Top-K heavy-hitter summary in at most ``k`` counters.

    Each tracked key carries ``(count, error)``: ``count`` is an
    overestimate of the key's true frequency and ``error`` bounds the
    overestimation (``count - error <= true <= count``).  When a new key
    arrives with all ``k`` counters occupied, the minimum counter is
    evicted and the newcomer inherits its count as error — that is the
    whole algorithm, and the source of the ``N/k`` max-error bound.
    """

    __slots__ = ("k", "total", "_counters", "_heap")

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.total = 0  # stream weight offered so far
        self._counters: dict[str, list[int]] = {}  # key -> [count, error]
        # lazy min-heap over (count, key): entries go stale when a tracked
        # key's count grows (we do not re-push on every offer); the heap
        # invariant is one entry per tracked key, refreshed at pop time.
        # Counts only ever increase, so a refreshed entry sinks and the
        # amortized victim lookup is O(log k) instead of the O(k) min-scan
        # that dominates profiles at 10^6-tenant spill rates.
        self._heap: list[tuple[int, str]] = []

    def __len__(self) -> int:
        return len(self._counters)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def offer(self, key: str, amount: int = 1) -> None:
        """Fold ``amount`` occurrences of ``key`` into the summary."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        self.total += amount
        entry = self._counters.get(key)
        if entry is not None:
            entry[0] += amount
            return
        if len(self._counters) < self.k:
            self._counters[key] = [amount, 0]
            heapq.heappush(self._heap, (amount, key))
            return
        floor, victim_key = self._min_entry()
        del self._counters[victim_key]
        self._counters[key] = [floor + amount, floor]
        heapq.heapreplace(self._heap, (floor + amount, key))

    def _min_entry(self) -> tuple[int, str]:
        """Accurate ``(count, key)`` minimum; settles stale heap entries.

        Pops the heap until its top matches the live counter: stale tops
        (count grew since push) are re-pushed with their current count via
        ``heapreplace``.  Counts never decrease, so every settle moves an
        entry strictly down and the loop terminates.
        """
        heap = self._heap
        counters = self._counters
        while True:
            count, key = heap[0]
            current = counters[key][0]
            if current == count:
                return count, key
            heapq.heapreplace(heap, (current, key))

    def _floor(self) -> int:
        """Upper bound on any *absent* key's true count.

        A key missing from a full summary was either never seen or was
        evicted at a count at most the current minimum; if the summary
        never filled, absent means never seen (bound 0).
        """
        if len(self._counters) < self.k:
            return 0
        return self._min_entry()[0]

    def estimate(self, key: str) -> tuple[int, int]:
        """``(count, error)`` with ``count - error <= true(key) <= count``."""
        entry = self._counters.get(key)
        if entry is not None:
            return entry[0], entry[1]
        floor = self._floor()
        return floor, floor

    def top(self, n: int | None = None) -> list[tuple[str, int, int]]:
        """``(key, count, error)`` rows, highest estimate first.

        Ties break on the key so the ordering is deterministic across
        processes (dict order is insertion order, which differs per shard).
        """
        rows = sorted(
            ((key, entry[0], entry[1]) for key, entry in self._counters.items()),
            key=lambda row: (-row[1], row[0]),
        )
        return rows if n is None else rows[:n]

    def guaranteed(self, n: int | None = None) -> list[tuple[str, int, int]]:
        """Tracked keys whose lower bound clears every untracked key's upper.

        ``count - error > floor`` means no absent key can truly outrank
        this one — the classic "guaranteed top" test.
        """
        floor = self._floor()
        rows = [row for row in self.top(n=None) if row[1] - row[2] > floor]
        return rows if n is None else rows[:n]

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Combine two summaries; bounds hold for the concatenated stream.

        For a key absent from one input, that input contributes its floor
        to both count and error (its true count there is at most the
        floor, and at least zero) — this keeps both the overestimate and
        the ``count - error <= true`` invariants through the merge.  The
        result keeps the ``max(k)`` largest estimates.
        """
        k = max(self.k, other.k)
        merged = SpaceSaving(k)
        merged.total = self.total + other.total
        floor_a, floor_b = self._floor(), other._floor()
        combined: dict[str, list[int]] = {}
        for key in self._counters.keys() | other._counters.keys():
            ca, ea = self._counters.get(key, (floor_a, floor_a))
            cb, eb = other._counters.get(key, (floor_b, floor_b))
            combined[key] = [ca + cb, ea + eb]
        keep = sorted(combined, key=lambda name: (-combined[name][0], name))[:k]
        merged._counters = {key: combined[key] for key in keep}
        merged._heap = [(entry[0], key) for key, entry in merged._counters.items()]
        heapq.heapify(merged._heap)
        return merged

    def to_json(self) -> dict:
        return {
            "k": self.k,
            "total": self.total,
            "counters": {
                key: {"count": entry[0], "error": entry[1]}
                for key, entry in sorted(self._counters.items())
            },
        }


class CountMinSketch:
    """Frequency table folded into ``depth`` rows of ``width`` counters.

    Every key increments one counter per row (chosen by that row's hash);
    the estimate is the minimum across rows, hence **overestimate-only**
    (collisions only ever add).  One BLAKE2b call yields all row indices,
    so an ``add`` costs one hash regardless of depth (depth <= 8).
    """

    __slots__ = ("width", "depth", "total", "_rows")

    _SALT = b"acctee-cm"

    def __init__(self, width: int = 1024, depth: int = 4):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        if depth > 8:
            raise ValueError("depth must be <= 8 (row indices come from one digest)")
        self.width = width
        self.depth = depth
        self.total = 0
        self._rows = [[0] * width for _ in range(depth)]

    @classmethod
    def from_error(cls, eps: float, delta: float) -> "CountMinSketch":
        """Size a sketch for ``P[estimate - true > eps * N] <= delta``."""
        width = max(1, math.ceil(math.e / eps))
        depth = max(1, math.ceil(math.log(1.0 / delta)))
        return cls(width=width, depth=depth)

    @property
    def eps(self) -> float:
        """Additive error factor: overestimation beyond ``eps * total`` is rare."""
        return math.e / self.width

    @property
    def delta(self) -> float:
        """Probability the ``eps * total`` bound is exceeded for a key."""
        return math.exp(-self.depth)

    def _indices(self, key: str) -> list[int]:
        # one 8-byte digest split into two 32-bit halves, expanded per row
        # by double hashing (Kirsch & Mitzenmacher, "Less hashing, same
        # performance"): row i uses h1 + i*h2 mod width, which preserves
        # the Count-Min guarantees while keeping the hot path in small-int
        # arithmetic — one hash per add regardless of depth
        h = int.from_bytes(
            hashlib.blake2b(
                key.encode("utf-8"), digest_size=8, salt=self._SALT
            ).digest(),
            "big",
        )
        h1 = h & 0xFFFFFFFF
        h2 = (h >> 32) | 1  # odd, so successive rows never collapse
        width = self.width
        return [(h1 + row * h2) % width for row in range(self.depth)]

    def add(self, key: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        self.total += amount
        for row, index in zip(self._rows, self._indices(key)):
            row[index] += amount

    def estimate(self, key: str) -> int:
        """An upper bound on ``true(key)``; never underestimates."""
        return min(row[index] for row, index in zip(self._rows, self._indices(key)))

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Element-wise sum; requires identical geometry (same hash family)."""
        if (self.width, self.depth) != (other.width, other.depth):
            raise ValueError("cannot merge count-min sketches of different geometry")
        merged = CountMinSketch(self.width, self.depth)
        merged.total = self.total + other.total
        merged._rows = [
            [a + b for a, b in zip(row_a, row_b)]
            for row_a, row_b in zip(self._rows, other._rows)
        ]
        return merged

    def to_json(self) -> dict:
        return {
            "width": self.width,
            "depth": self.depth,
            "total": self.total,
            "eps": self.eps,
            "delta": self.delta,
        }


class HyperLogLog:
    """Distinct-count estimator over ``2^p`` registers.

    Standard error is ``~1.04 / sqrt(2^p)`` — the default ``p=12`` (4 KiB)
    lands around 1.6%.  Small cardinalities use the linear-counting
    correction, so exact-ish answers come back in the range the governance
    budget cares about, and estimates only matter past it.
    """

    __slots__ = ("p", "m", "_registers", "_inv_sum", "_zeros")

    _SALT = b"acctee-hll"

    def __init__(self, p: int = 12):
        if not 4 <= p <= 16:
            raise ValueError("p must be in [4, 16]")
        self.p = p
        self.m = 1 << p
        self._registers = bytearray(self.m)
        # running sum(2^-register) and zero-register count, maintained
        # incrementally so estimate() is O(1) — the governance layer reads
        # it on every newly seen tenant
        self._inv_sum = float(self.m)
        self._zeros = self.m

    def add(self, key: str) -> None:
        h = _hash64(key.encode("utf-8"), self._SALT)
        index = h >> (64 - self.p)
        tail = h & ((1 << (64 - self.p)) - 1)
        # rank = position of the leftmost 1-bit in the (64-p)-bit tail
        rank = (64 - self.p) - tail.bit_length() + 1
        current = self._registers[index]
        if rank > current:
            self._registers[index] = rank
            self._inv_sum += 2.0**-rank - 2.0**-current
            if current == 0:
                self._zeros -= 1

    def estimate(self) -> float:
        m = self.m
        alpha = 0.7213 / (1.0 + 1.079 / m)
        raw = alpha * m * m / self._inv_sum
        if raw <= 2.5 * m and self._zeros:
            return m * math.log(m / self._zeros)  # linear counting
        return raw

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Register-wise max; the union-stream estimate."""
        if self.p != other.p:
            raise ValueError("cannot merge HLLs of different precision")
        merged = HyperLogLog(self.p)
        merged._registers = bytearray(
            max(a, b) for a, b in zip(self._registers, other._registers)
        )
        merged._inv_sum = sum(2.0**-r for r in merged._registers)
        merged._zeros = merged._registers.count(0)
        return merged


class _ShardSketch:
    """One shard's slice of the spilled-tenant stream."""

    __slots__ = ("heavy", "freq")

    def __init__(self, top_k: int, cm_width: int, cm_depth: int):
        self.heavy = SpaceSaving(top_k)
        self.freq = CountMinSketch(cm_width, cm_depth)


class TenantSpill:
    """Cardinality governor: exact series for the first ``budget`` keys,
    sketched ``OVERFLOW_KEY`` routing for the rest.

    :meth:`admit` is the one hot-path call.  It returns the series a key's
    observations should land in — the key itself while the exact budget
    has room (or the key is already tracked), ``OVERFLOW_KEY`` once it
    does not.  Spilled keys are folded into per-shard Space-Saving and
    Count-Min sketches (sharded by :func:`shard_index_for`, the same
    routing the gateway uses) so heavy tenants remain identifiable and
    nothing is silently lost: the overflow series conserves totals, the
    sketches recover per-key frequency within documented bounds, and
    :attr:`spills` counts every labelset denied an exact series.

    ``mode`` trades sketch fidelity for hot-path cost, per instrument:

    * ``"full"`` — Space-Saving *and* Count-Min per spilled observation;
      per-key estimates use Count-Min (tightest for non-heavy keys).
      The rolling aggregator uses this: it is the source ``repro top``
      and the SLO engine rank tenants from.
    * ``"heavy"`` — Space-Saving only; estimates fall back to its
      ``(count, error)`` upper bound, which stays overestimate-only with
      the ``N/k`` error ceiling.  Counters and histograms use this.
    * ``"route"`` — no sketch maintenance at all; an over-budget key
      costs a dict miss and nothing else.  Cardinality then reports the
      tracked set only.  Gauges use this: gauge sets are not additive,
      so sketched "frequency" would be meaningless anyway.

    Merging the per-shard sketches (:meth:`merged_heavy`) is the
    shard→global rollup; :attr:`merges` counts those merge operations for
    the ``sketch_merges_total`` metric (incremented by *call sites* — this
    module stays import-free of the registry).
    """

    __slots__ = (
        "budget",
        "top_k",
        "shards",
        "mode",
        "_tracked",
        "_shards",
        "_hll",
        "_spill_events",
        "merges",
    )

    # _tracked maps tracked key -> exact offered weight, so a *global*
    # top-K (exact in-budget rows beside sketched over-budget rows) is
    # answerable when the caller offers every observation (the rolling
    # aggregator does; the metrics registry only consults top_spilled()).

    def __init__(
        self,
        budget: int = 512,
        top_k: int = 64,
        shards: int = 1,
        cm_width: int = 1024,
        cm_depth: int = 4,
        mode: str = "full",
    ):
        if budget < 0:
            raise ValueError("budget must be >= 0")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if mode not in ("full", "heavy", "route"):
            raise ValueError("mode must be 'full', 'heavy' or 'route'")
        self.budget = budget
        self.top_k = top_k
        self.shards = shards
        self.mode = mode
        self._tracked: dict[str, int] = {}
        self._shards = [_ShardSketch(top_k, cm_width, cm_depth) for _ in range(shards)]
        self._hll = HyperLogLog()
        self._spill_events = 0  # distinct keys that have entered the spill path
        self.merges = 0  # shard-sketch merge operations performed

    @property
    def spills(self) -> int:
        """Distinct labelsets denied an exact series (heavy-sketch entries)."""
        return self._spill_events

    def admit(self, key: str, amount: int = 1) -> str:
        """Route one observation: returns ``key`` (exact) or ``OVERFLOW_KEY``.

        ``amount=0`` routes without weighing: the key still claims a budget
        slot if one is free (and counts toward cardinality), but a spilled
        zero-weight observation skips sketch maintenance entirely — use it
        for observations that should follow a tenant's series without
        counting toward its ranking (the rolling aggregator weighs only
        request-level events this way).
        """
        count = self._tracked.get(key)
        if count is not None:
            self._tracked[key] = count + amount
            return key
        if len(self._tracked) < self.budget:
            self._tracked[key] = amount
            self._hll.add(key)
            return key
        mode = self.mode
        if mode == "route" or amount == 0:
            return OVERFLOW_KEY  # route-only fast path: no sketch maintenance
        shard = self._shards[
            shard_index_for(key, self.shards) if self.shards > 1 else 0
        ]
        if key not in shard.heavy:
            self._hll.add(key)
            self._spill_events += 1
        shard.heavy.offer(key, amount)
        if mode == "full":
            shard.freq.add(key, amount)
        return OVERFLOW_KEY

    def tracked(self) -> frozenset[str]:
        return frozenset(self._tracked)

    def tracked_count(self) -> int:
        return len(self._tracked)

    def top(self, n: int | None = None) -> list[tuple[str, int, int, bool]]:
        """Global top rows ``(key, count, error, exact)``.

        Exact rows come from the tracked dict (error 0); sketched rows
        from the shard→global merge.  Valid as a *global* ranking only
        when every observation was routed through :meth:`admit` with its
        true weight.
        """
        rows = [(key, count, 0, True) for key, count in self._tracked.items()]
        rows.extend(
            (key, count, error, False)
            for key, count, error in self.merged_heavy().top(None)
        )
        rows.sort(key=lambda row: (-row[1], row[0]))
        return rows if n is None else rows[:n]

    def cardinality(self) -> int:
        """Approximate distinct keys ever admitted (exact below the budget)."""
        return max(len(self._tracked), round(self._hll.estimate()))

    def spilled_total(self) -> int:
        """Total observation weight routed to the overflow series."""
        return sum(shard.heavy.total for shard in self._shards)

    def merged_heavy(self) -> SpaceSaving:
        """Shard→global rollup: one Space-Saving over every spilled key."""
        merged = self._shards[0].heavy
        for shard in self._shards[1:]:
            merged = merged.merge(shard.heavy)
            self.merges += 1
        return merged

    def top_spilled(self, n: int | None = None) -> list[tuple[str, int, int]]:
        """``(key, count, error)`` for the heaviest spilled keys."""
        return self.merged_heavy().top(n)

    def estimate(self, key: str) -> int:
        """Overestimate of a spilled key's observation count.

        Count-Min in ``"full"`` mode; the shard's Space-Saving upper bound
        otherwise (still overestimate-only, error within ``N/k``).
        """
        shard = self._shards[
            shard_index_for(key, self.shards) if self.shards > 1 else 0
        ]
        if self.mode != "full":
            return shard.heavy.estimate(key)[0]
        return shard.freq.estimate(key)

    def to_json(self) -> dict:
        return {
            "budget": self.budget,
            "tracked": len(self._tracked),
            "cardinality": self.cardinality(),
            "spilled_labelsets": self.spills,
            "spilled_total": self.spilled_total(),
            "shards": self.shards,
            "top_k": self.top_k,
        }
