"""Declarative SLO rules evaluated over rolling telemetry windows.

Rules are plain JSON (see ``examples/slo_rules.json``) so the same file drives
live evaluation during a load test (``repro loadtest --slo``), offline replay
against a recorded event stream (``repro alerts --rules R --replay E``), and
the CI fault-injection gate.  Two rule kinds:

``threshold``
    Fires when a *signal* read over one trailing window crosses an operator
    bound — e.g. ``latency_p99_s > 0.5 over 30s``.

``burn_rate``
    Google-SRE-style multi-window burn-rate alert on a bad-event ratio.
    Given an error budget (``budget``, the tolerated bad fraction), it fires
    only when the ratio is burning at ≥ ``fast_burn``× budget over the short
    window **and** ≥ ``slow_burn``× budget over the long window — the short
    window gives fast detection, the long window keeps one spike from paging.

Signals (the vocabulary both rule kinds share)::

    latency_p50_s | latency_p95_s | latency_p99_s | latency_mean_s
    count:<kind>[:<sub>]      e.g. count:retry, count:settled:deadline-exceeded
    rate:<kind>[:<sub>]       events per second over the window
    rejection_ratio           reject / (admit + reject)
    failure_ratio             non-ok settlements / all settlements
    tenant_cardinality        approx. distinct tenants ever observed (window-free)
    overflow_ratio            over-budget-tenant events / all tenant events

The two tenant signals read the aggregator's cardinality governor, not the
raw key space, so evaluating them stays O(top-K) at any tenant count — an
alert on ``overflow_ratio`` tells an operator the exact-series budget no
longer covers the traffic mix.

Alerts are **edge-triggered**: a rule that stays breached across consecutive
evaluations produces one :class:`Alert` when it starts firing (and the engine
tracks when it clears), not one per tick — the count of alerts then means
"incidents", not "evaluation cycles spent in breach".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.events import emit as emit_event
from repro.obs.instruments import SLO_ALERTS
from repro.obs.rollup import RollingAggregator

#: Severities in escalation order; ``page`` and above fail a gated run.
SEVERITIES = ("info", "warn", "page", "critical")

#: Minimum severity that makes ``repro loadtest --slo`` / ``repro alerts``
#: exit non-zero.
GATING_SEVERITY = "page"

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass(frozen=True)
class Alert:
    """One rule firing: which rule, how bad, and the value that tripped it."""

    rule: str
    severity: str
    signal: str
    value: float
    threshold: float
    window_s: float
    at_s: float
    detail: str = ""

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "signal": self.signal,
            "value": self.value,
            "threshold": self.threshold,
            "window_s": self.window_s,
            "at_s": self.at_s,
            "detail": self.detail,
        }

    @property
    def gating(self) -> bool:
        return SEVERITIES.index(self.severity) >= SEVERITIES.index(GATING_SEVERITY)


def resolve_signal(agg: RollingAggregator, signal: str, window_s: float, now=None) -> float:
    """Read one named signal off the aggregator over a trailing window."""
    if signal == "latency_p50_s":
        return agg.quantile(0.50, window_s, now)
    if signal == "latency_p95_s":
        return agg.quantile(0.95, window_s, now)
    if signal == "latency_p99_s":
        return agg.quantile(0.99, window_s, now)
    if signal == "latency_mean_s":
        return agg.mean_latency(window_s, now)
    if signal == "rejection_ratio":
        return agg.ratio(("reject",), [("admit",), ("reject",)], window_s, now)
    if signal == "failure_ratio":
        settled = agg.count(("settled",), window_s, now)
        ok = agg.count(("settled", "ok"), window_s, now)
        return (settled - ok) / settled if settled else 0.0
    if signal == "tenant_cardinality":
        return float(agg.tenant_cardinality())
    if signal == "overflow_ratio":
        return agg.overflow_ratio(window_s, now)
    if signal.startswith("count:"):
        return float(agg.count(tuple(signal.split(":")[1:]), window_s, now))
    if signal.startswith("rate:"):
        return agg.rate(tuple(signal.split(":")[1:]), window_s, now)
    raise ValueError(f"unknown SLO signal {signal!r}")


@dataclass(frozen=True)
class Rule:
    """One parsed rule; ``evaluate`` returns an :class:`Alert` or ``None``."""

    name: str
    kind: str  # "threshold" | "burn_rate"
    severity: str
    signal: str
    op: str = ">"
    threshold: float = 0.0
    window_s: float = 30.0
    # burn_rate-only knobs:
    budget: float = 0.0
    fast_window_s: float = 10.0
    slow_window_s: float = 60.0
    fast_burn: float = 10.0
    slow_burn: float = 2.0

    @classmethod
    def from_json(cls, obj: dict) -> "Rule":
        kind = obj.get("kind", "threshold")
        if kind not in ("threshold", "burn_rate"):
            raise ValueError(f"rule {obj.get('name')!r}: unknown kind {kind!r}")
        severity = obj.get("severity", "warn")
        if severity not in SEVERITIES:
            raise ValueError(
                f"rule {obj.get('name')!r}: severity must be one of {SEVERITIES}"
            )
        if "name" not in obj or "signal" not in obj:
            raise ValueError("every rule needs 'name' and 'signal'")
        if kind == "threshold":
            op = obj.get("op", ">")
            if op not in _OPS:
                raise ValueError(f"rule {obj['name']!r}: unknown op {op!r}")
            return cls(
                name=obj["name"],
                kind=kind,
                severity=severity,
                signal=obj["signal"],
                op=op,
                threshold=float(obj["threshold"]),
                window_s=float(obj.get("window_s", 30.0)),
            )
        budget = float(obj.get("budget", 0.0))
        if budget <= 0:
            raise ValueError(f"rule {obj['name']!r}: burn_rate needs budget > 0")
        return cls(
            name=obj["name"],
            kind=kind,
            severity=severity,
            signal=obj["signal"],
            budget=budget,
            fast_window_s=float(obj.get("fast_window_s", 10.0)),
            slow_window_s=float(obj.get("slow_window_s", 60.0)),
            fast_burn=float(obj.get("fast_burn", 10.0)),
            slow_burn=float(obj.get("slow_burn", 2.0)),
        )

    def evaluate(self, agg: RollingAggregator, now: float | None = None) -> Alert | None:
        at = agg.now if now is None else now
        if self.kind == "threshold":
            value = resolve_signal(agg, self.signal, self.window_s, now)
            if _OPS[self.op](value, self.threshold):
                return Alert(
                    rule=self.name,
                    severity=self.severity,
                    signal=self.signal,
                    value=value,
                    threshold=self.threshold,
                    window_s=self.window_s,
                    at_s=at,
                    detail=f"{self.signal} {self.op} {self.threshold:g} over {self.window_s:g}s",
                )
            return None
        # burn_rate: both windows must be burning budget too fast
        fast = resolve_signal(agg, self.signal, self.fast_window_s, now)
        slow = resolve_signal(agg, self.signal, self.slow_window_s, now)
        fast_limit = self.budget * self.fast_burn
        slow_limit = self.budget * self.slow_burn
        if fast >= fast_limit and slow >= slow_limit:
            return Alert(
                rule=self.name,
                severity=self.severity,
                signal=self.signal,
                value=fast,
                threshold=fast_limit,
                window_s=self.fast_window_s,
                at_s=at,
                detail=(
                    f"burn-rate: {self.signal}={fast:.4f} over {self.fast_window_s:g}s "
                    f"(≥{fast_limit:.4f}) and {slow:.4f} over {self.slow_window_s:g}s "
                    f"(≥{slow_limit:.4f}), budget={self.budget:g}"
                ),
            )
        return None


def load_rules(path: str) -> list[Rule]:
    """Parse a JSON rule file: ``{"rules": [...]}`` or a bare list."""
    with open(path) as handle:
        obj = json.load(handle)
    raw = obj["rules"] if isinstance(obj, dict) else obj
    rules = [Rule.from_json(r) for r in raw]
    names = [r.name for r in rules]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate rule names: {dupes}")
    return rules


class SLOEngine:
    """Evaluates a rule set against an aggregator with edge-triggered firing."""

    def __init__(self, rules: list[Rule]):
        self.rules = list(rules)
        self.alerts: list[Alert] = []
        self._firing: dict[str, Alert] = {}
        self._cleared: list[dict] = []

    def evaluate(self, agg: RollingAggregator, now: float | None = None) -> list[Alert]:
        """One evaluation tick; returns only *newly fired* alerts."""
        new: list[Alert] = []
        for rule in self.rules:
            alert = rule.evaluate(agg, now)
            if alert is not None:
                if rule.name not in self._firing:  # rising edge
                    self._firing[rule.name] = alert
                    self.alerts.append(alert)
                    new.append(alert)
                    SLO_ALERTS.inc(rule=rule.name, severity=rule.severity)
                    emit_event(
                        "alert",
                        rule=rule.name,
                        severity=rule.severity,
                        value=alert.value,
                        threshold=alert.threshold,
                    )
            elif rule.name in self._firing:  # falling edge
                started = self._firing.pop(rule.name)
                at = agg.now if now is None else now
                self._cleared.append(
                    {"rule": rule.name, "fired_at_s": started.at_s, "cleared_at_s": at}
                )
        return new

    @property
    def firing(self) -> list[Alert]:
        return list(self._firing.values())

    def worst_severity(self) -> str | None:
        if not self.alerts:
            return None
        return max(self.alerts, key=lambda a: SEVERITIES.index(a.severity)).severity

    def gating_alerts(self) -> list[Alert]:
        """Alerts severe enough to fail a gated run (``page``/``critical``)."""
        return [a for a in self.alerts if a.gating]

    def report(self) -> dict:
        return {
            "rules": len(self.rules),
            "alerts": [a.to_json() for a in self.alerts],
            "cleared": list(self._cleared),
            "still_firing": [a.rule for a in self.firing],
            "worst_severity": self.worst_severity(),
            "gating": bool(self.gating_alerts()),
        }


def replay(
    events,
    rules: list[Rule],
    slice_s: float = 1.0,
    slices: int = 600,
    eval_every_s: float = 1.0,
) -> tuple[SLOEngine, RollingAggregator]:
    """Run a recorded event stream through a fresh aggregator + engine.

    Evaluation happens on replayed time — after each ``eval_every_s`` of
    *event* timestamps, plus once at the end — so offline answers match what
    live evaluation at the same cadence would have produced.
    """
    agg = RollingAggregator(slice_s=slice_s, slices=slices)
    engine = SLOEngine(rules)
    next_eval: float | None = None
    for event in events:
        agg.observe(event)
        if next_eval is None:
            next_eval = event.ts_s + eval_every_s
        while event.ts_s >= next_eval:
            engine.evaluate(agg, now=next_eval)
            next_eval += eval_every_s
    engine.evaluate(agg)
    return engine, agg
