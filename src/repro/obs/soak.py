"""Synthetic million-tenant scale soak for the control plane.

The gateway's *execution* path scales with workers; the question this
harness answers is whether the **control plane** — admission control,
metrics, the event pipeline, rolling aggregation, SLO evaluation — stays
fast and bounded as the *tenant population* grows from 10^3 to 10^6.

Real-gateway fan-out cannot get there: each registered tenant mints an
attested AE (pure-python RSA keygen, ~1 s apiece), which is 11 days of
setup at 10^6 tenants.  So the soak drives the same control-plane objects
the gateway uses — a sharded :class:`~repro.service.quota.AdmissionController`
with lazy default-quota tenants, the governed metrics registry, a bounded
:class:`~repro.obs.events.EventLog` feeding a cardinality-governed
:class:`~repro.obs.rollup.RollingAggregator`, and a live SLO engine — with
a **modeled request loop**: per request, admit → telemetry → deterministic
modeled latency → settle.  No Wasm executes; what is measured is exactly
the per-request control-plane overhead the gateway adds around execution.

Tenant popularity is Zipf-distributed (rank-``r`` weight ``r^-s``), the
regime the governance layer is designed for: a small head of tenants that
deserves exact series and a huge tail that must spill to sketches.  The
request *count* is fixed across sweep points so per-request overhead is
comparable; the tenant *population* is what sweeps.

Each point reports per-request overhead, process RSS, and the sizes of
every per-tenant structure; :func:`run_scale_soak` gates the curve —
overhead at the largest point within ``max_overhead_ratio`` of the
smallest, every structure bounded by its configured budget, the heaviest
tenant recoverable from the sketches — and the result is what
``repro soak`` writes to ``BENCH_scale.json`` and CI asserts flat.
"""

from __future__ import annotations

import time

from repro.obs import instruments
from repro.obs.events import EventLog, disable_events, enable_events, get_event_log
from repro.obs.metrics import (
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    set_tenant_budget,
)
from repro.obs.rollup import RollingAggregator
from repro.obs.slo import Rule, SLOEngine
from repro.service.quota import AdmissionController, AdmissionError, TenantQuota

#: Default sweep: one point per tenant-count decade.
DEFAULT_TENANT_COUNTS = (1_000, 10_000, 100_000, 1_000_000)

#: Modeled service-time palette (seconds); tenants cycle through it so
#: latency histograms see spread without a random source.
_MODELED_LATENCY_S = tuple(0.0005 + 0.0002 * i for i in range(7))

#: SLO rules evaluated live during the soak — the point is that evaluation
#: cost is O(top-K), not O(tenants), so they ride inside the timed loop.
_SOAK_RULES = (
    Rule(
        name="soak-p99",
        kind="threshold",
        severity="warn",
        signal="latency_p99_s",
        op=">",
        threshold=0.5,
        window_s=30.0,
    ),
    Rule(
        name="soak-overflow",
        kind="threshold",
        severity="info",
        signal="overflow_ratio",
        op=">",
        threshold=0.99,
        window_s=30.0,
    ),
)


def _zipf_schedule(tenants: int, requests: int, s: float, seed: int) -> list[int]:
    """``requests`` tenant ranks (0-based) sampled from a Zipf(s) popularity.

    Inverse-CDF over precomputed cumulative weights; numpy when available
    (10^6-rank setup in milliseconds), bisect otherwise.  The weight table
    is O(tenants) but strictly *setup* — it is dropped before the timed
    loop, so it never pollutes the RSS the soak is bounding.
    """
    try:
        import numpy as np

        rng = np.random.default_rng(seed)
        weights = np.arange(1, tenants + 1, dtype=np.float64) ** -s
        cumulative = np.cumsum(weights)
        draws = rng.random(requests) * cumulative[-1]
        ranks = np.searchsorted(cumulative, draws, side="left")
        return ranks.tolist()
    except ImportError:
        import bisect
        import random

        rng = random.Random(seed)
        cumulative = []
        total = 0.0
        for rank in range(1, tenants + 1):
            total += rank**-s
            cumulative.append(total)
        return [
            bisect.bisect_left(cumulative, rng.random() * total)
            for _ in range(requests)
        ]


def _vm_rss_mb() -> float:
    """Resident set size in MiB (``/proc`` on linux, ``ru_maxrss`` fallback)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _calibration_us(iters: int = 50_000) -> float:
    """Machine-speed probe: µs per iteration of a fixed dict/str op mix.

    Sweep points run minutes apart, and on a shared machine the CPU the
    process actually gets drifts meaningfully over that span (frequency
    scaling, co-tenant pressure).  A fixed probe timed adjacent to each
    point's measured loop captures the machine's speed *at that moment*;
    the soak gate compares points after normalising by it, so the overhead
    curve reflects tenant-count scaling rather than when in the sweep a
    point happened to run.  The op mix (string format, dict hit/miss,
    small-int arithmetic) resembles the admit path so frequency effects
    map comparably; min-of-3 passes for the same reason the point loop
    reports its fastest chunk.
    """
    best = None
    for _ in range(3):
        probe: dict[str, int] = {}
        started = time.perf_counter()
        for i in range(iters):
            key = "t%d" % (i & 1023)
            value = probe.get(key)
            probe[key] = 1 if value is None else value + 1
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best / iters * 1e6


def _registry_series_count() -> int:
    """Materialised labelsets across every registered instrument."""
    registry = get_registry()
    total = 0
    for name in registry.names():
        metric = registry.get(name)
        total += len(metric.to_json())
    return total


def run_scale_point(
    tenants: int,
    requests: int,
    tenant_budget: int,
    top_k: int,
    max_resident: int,
    zipf_s: float,
    seed: int,
    rps: float = 2000.0,
) -> dict:
    """One sweep point: fresh control-plane state, ``requests`` modeled requests."""
    schedule = _zipf_schedule(tenants, requests, zipf_s, seed)

    registry = get_registry()
    registry.reset()
    previous_budget = set_tenant_budget(tenant_budget, top_k=top_k)
    was_metrics = metrics_enabled()
    previous_log = get_event_log()

    # synthetic event time: two emits per request at a fixed modeled rate,
    # so the aggregator ring and SLO windows behave as they would live
    dt = 1.0 / rps / 2.0
    clock_state = [0.0]

    def clock() -> float:
        clock_state[0] += dt
        return clock_state[0]

    admission = AdmissionController(
        clock=lambda: clock_state[0],
        default_quota=TenantQuota(max_queue_depth=8),
        max_resident=max_resident,
    )
    aggregator = RollingAggregator(
        slice_s=1.0, slices=120, tenant_budget=tenant_budget, top_k=top_k
    )
    # small buffer on purpose: subscribers (the aggregator) see every event
    # regardless, and the soak must not hold the whole stream in memory
    log = EventLog(capacity=4096, clock=clock)
    log.subscribe(aggregator.observe)
    enable_events(log)
    enable_metrics()
    engine = SLOEngine(list(_SOAK_RULES))

    requests_metric = instruments.GATEWAY_REQUESTS
    latency_metric = instruments.GATEWAY_REQUEST_LATENCY
    palette = _MODELED_LATENCY_S
    rejected = 0

    # The loop is timed in chunks and the *fastest* chunk is the reported
    # per-request overhead: the first chunk absorbs structure warm-up (the
    # tracked set and resident pool filling) and any chunk can be hit by
    # scheduler noise, while the minimum is the steady-state cost the gate
    # is about.  Chunk boundaries are identical across sweep points
    # (requests is fixed), so points stay comparable.
    chunks = 8
    chunk_len = max(1, len(schedule) // chunks)
    best_chunk_s = None
    try:
        calibration_us = _calibration_us()
        started = time.perf_counter()
        chunk_started = started
        for i, rank in enumerate(schedule):
            tenant = "t%d" % rank
            try:
                admission.admit(tenant)
            except AdmissionError as exc:
                rejected += 1
                log.emit("reject", tenant=tenant, code=exc.code)
                continue
            latency = palette[rank % len(palette)]
            log.emit("admit", tenant=tenant)
            requests_metric.inc(tenant=tenant, outcome="ok")
            latency_metric.observe(latency, tenant=tenant)
            log.emit("settled", tenant=tenant, outcome="ok", latency_s=latency)
            admission.settle(tenant, weighted_instructions=1_000)
            if i % 2048 == 2047:
                engine.evaluate(aggregator)
            if i % chunk_len == chunk_len - 1:
                now = time.perf_counter()
                chunk_s = now - chunk_started
                chunk_started = now
                if best_chunk_s is None or chunk_s < best_chunk_s:
                    best_chunk_s = chunk_s
        engine.evaluate(aggregator)
        wall_s = time.perf_counter() - started
        if best_chunk_s is None:
            best_chunk_s = wall_s
            chunk_len = max(1, len(schedule))

        census = aggregator.key_census()
        spill = aggregator.tenant_spill_info()
        top = aggregator.top_tenants(10)
        heaviest_rank = min(schedule)
        point = {
            "tenants": tenants,
            "requests": requests,
            "rejected": rejected,
            "wall_s": wall_s,
            "per_request_us": best_chunk_s / chunk_len * 1e6,
            "per_request_us_mean": wall_s / max(1, requests) * 1e6,
            "calibration_us": calibration_us,
            "rss_mb": _vm_rss_mb(),
            "tenant_cardinality": spill["cardinality"],
            "overflow_ratio": aggregator.overflow_ratio(120.0),
            "structures": {
                "admission_resident": admission.resident(),
                "admission_evictions": admission.evictions,
                "rollup_total_keys": census["total_keys"],
                "rollup_tenant_keys": census["tenant_keys"],
                "rollup_tracked": spill["tracked"],
                "spilled_labelsets": spill["spilled_labelsets"],
                "registry_series": _registry_series_count(),
                "event_log_resident": len(log.events()),
            },
            "top_tenants": top,
            "top_recovered": any(
                row["tenant"] == "t%d" % heaviest_rank for row in top
            ),
            "slo_alerts": len(engine.alerts),
        }
        return point
    finally:
        if previous_log is not None:
            enable_events(previous_log)
        else:
            disable_events()
        if not was_metrics:
            disable_metrics()
        set_tenant_budget(previous_budget)
        registry.reset()


_POINT_CHILD_CODE = (
    "import json, sys\n"
    "from repro.obs.soak import run_scale_point\n"
    "json.dump(run_scale_point(**json.loads(sys.argv[1])), sys.stdout)\n"
)


def _run_point_isolated(kwargs: dict) -> dict:
    """Run one sweep point in a fresh interpreter.

    Sweep points are not independent inside one process: each point's setup
    churns through millions of short-lived objects (the Zipf weight table,
    tenant-id strings), and the allocator state that leaves behind makes
    *later* points measurably slower and their RSS readings cumulative.  A
    fresh process per point makes both the per-request cost and the RSS
    gate genuinely per-point.  A plain subprocess (kwargs in argv, point
    JSON on stdout) rather than ``multiprocessing`` spawn, which would
    re-execute the parent's ``__main__`` and so break under embedded or
    stdin-driven interpreters.
    """
    import json
    import os
    import subprocess
    import sys

    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _POINT_CHILD_CODE, json.dumps(kwargs)],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale-soak point subprocess failed (exit {proc.returncode}): "
            f"{proc.stderr.strip()[-500:]}"
        )
    return json.loads(proc.stdout)


def run_scale_soak(
    tenant_counts: tuple[int, ...] = DEFAULT_TENANT_COUNTS,
    requests: int = 50_000,
    tenant_budget: int = 64,
    top_k: int = 64,
    max_resident: int = 256,
    zipf_s: float = 1.1,
    seed: int = 7,
    max_overhead_ratio: float = 1.25,
    rss_ceiling_mb: float | None = None,
    isolate: bool = True,
) -> dict:
    """Sweep tenant counts; gate the overhead curve flat and structures bounded.

    The default budgets sit deliberately *well below* the smallest sweep
    point (64 exact series and 256 resident quota states against 10^3
    tenants), so every point exercises the governed steady state — spill routing,
    sketch maintenance, idle quota eviction.  A budget above the smallest
    population would measure an ungoverned baseline against a governed
    large point and report regime change, not scaling.

    The verdict (``result["ok"]``) requires, with points ordered by tenant
    count:

    * **flat overhead** — drift-normalised per-request cost
      (``per_request_us`` rescaled by each point's adjacent machine-speed
      probe, reported as ``per_request_us_norm``) at the largest point is
      within ``max_overhead_ratio`` of the smallest point's;
    * **bounded structures** at every point — resident admission states
      within ``max_resident`` (+1 per-shard rounding slack, plus states
      kept alive in flight), window tenant keys within ``tenant_budget + 1``,
      and the registry's materialised series bounded by the per-instrument
      budget rather than the tenant population;
    * **nothing lost** — the heaviest tenant is recovered through the
      shard-merged sketches at every point, and accounted request totals
      (admitted == settled + rejected narrative) hold;
    * optional **RSS ceiling** — every point's resident set below
      ``rss_ceiling_mb``.

    With ``isolate`` (the default) every point runs in a freshly spawned
    interpreter so neither allocator state nor RSS leaks between points
    (see :func:`_run_point_isolated`); tests drive small sweeps with
    ``isolate=False`` to stay fast.
    """
    counts = tuple(sorted(tenant_counts))
    if not counts:
        raise ValueError("need at least one tenant count")
    run_point = (
        _run_point_isolated if isolate else (lambda kw: run_scale_point(**kw))
    )
    points = [
        run_point(
            dict(
                tenants=count,
                requests=requests,
                tenant_budget=tenant_budget,
                top_k=top_k,
                max_resident=max_resident,
                zipf_s=zipf_s,
                seed=seed,
            )
        )
        for count in counts
    ]

    shards = 8  # AdmissionController default; per-shard cap rounds up
    resident_slack = max_resident + shards
    # drift-normalised overhead: each point's per-request cost is rescaled
    # by the machine-speed probe taken adjacent to its timed loop, so the
    # gate compares tenant-count scaling rather than which point happened
    # to run during a fast or slow stretch of a shared machine (points run
    # minutes apart in a full sweep).  Raw values stay in the point dicts.
    anchor_cal = points[0]["calibration_us"]
    for p in points:
        p["per_request_us_norm"] = (
            p["per_request_us"] * anchor_cal / p["calibration_us"]
        )
    overhead_ratio = (
        points[-1]["per_request_us_norm"] / points[0]["per_request_us_norm"]
    )
    bounded_ok = all(
        p["structures"]["admission_resident"] <= resident_slack
        and p["structures"]["rollup_tenant_keys"] <= tenant_budget + 1
        and p["structures"]["rollup_tracked"] <= tenant_budget
        for p in points
    )
    recovered_ok = all(p["top_recovered"] for p in points)
    rss_ok = rss_ceiling_mb is None or all(
        p["rss_mb"] <= rss_ceiling_mb for p in points
    )
    overhead_ok = overhead_ratio <= max_overhead_ratio
    return {
        "bench": "scale_soak",
        "config": {
            "tenant_counts": list(counts),
            "requests": requests,
            "tenant_budget": tenant_budget,
            "top_k": top_k,
            "max_resident": max_resident,
            "zipf_s": zipf_s,
            "seed": seed,
            "isolate": isolate,
        },
        "points": points,
        "gates": {
            "overhead_ratio": overhead_ratio,
            "max_overhead_ratio": max_overhead_ratio,
            "overhead_ok": overhead_ok,
            "bounded_ok": bounded_ok,
            "top_recovered_ok": recovered_ok,
            "rss_ceiling_mb": rss_ceiling_mb,
            "rss_ok": rss_ok,
        },
        "ok": overhead_ok and bounded_ok and recovered_ok and rss_ok,
    }
