"""Hierarchical tracing spans for the two-way sandbox and metering gateway.

A :class:`Tracer` records :class:`Span` trees — one span per protocol phase
(``instrument``, ``execute``, ``account``, ``gateway.request``, …) — with
monotonic nanosecond timestamps, parent/child links and attached attributes
(module hash, tenant, engine, cache hit/miss).  Finished traces export two
ways:

* :meth:`Tracer.to_json` — a plain JSON list of spans with explicit
  ``span_id``/``parent_id`` links, for programmatic consumers;
* :meth:`Tracer.to_chrome_trace` — Chrome ``trace_event`` format (``ph: X``
  complete events), loadable directly in ``about:tracing`` or Perfetto.

Tracing is **off by default**: :func:`span` returns a shared no-op span
unless :func:`enable_tracing` installed a tracer, so instrumented call sites
cost one module-global read plus a ``None`` check when disabled.  Span
nesting is tracked per thread; cross-thread children (a gateway request
settled on a pool callback thread) pass ``parent=`` explicitly.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field


def _json_safe(value):
    """Coerce an attribute value into something JSON-serialisable."""
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


@dataclass
class Span:
    """One timed operation. Usable as a context manager (ends on exit)."""

    name: str
    span_id: int
    parent_id: int | None
    start_ns: int
    end_ns: int | None = None
    attributes: dict = field(default_factory=dict)
    thread_id: int = 0
    #: The process that recorded the span.  Looked up at creation time (not
    #: module import — worker processes fork after import), so spans merged
    #: from a worker keep their origin pid and render on their own Perfetto
    #: process row instead of collapsing onto the gateway's.
    pid: int = 0
    detached: bool = False
    _tracer: "Tracer | None" = field(default=None, repr=False)

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = _json_safe(value)

    def set_attributes(self, **attributes) -> None:
        for key, value in attributes.items():
            self.attributes[key] = _json_safe(value)

    def end(self) -> None:
        """Close the span; idempotent."""
        if self.end_ns is None and self._tracer is not None:
            self._tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> bool:
        self.end()
        return False

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "thread_id": self.thread_id,
            "pid": self.pid,
            "attributes": dict(self.attributes),
        }


class _NullSpan:
    """The disabled-tracing span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attribute(self, key: str, value) -> None:
        pass

    def set_attributes(self, **attributes) -> None:
        pass

    def end(self) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans into per-request traces.

    Thread-safe: spans may start and finish on different threads than the
    tracer was created on; the per-thread span stack gives implicit
    parent/child nesting within a thread.
    """

    def __init__(self, service: str = "repro"):
        self.service = service
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._open: dict[int, Span] = {}
        self._next_id = 1
        self._local = threading.local()

    # -- recording ---------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(
        self,
        name: str,
        parent: Span | None = None,
        detached: bool = False,
        **attributes,
    ) -> Span:
        """Open a span; the caller closes it (``with`` or ``.end()``).

        ``detached`` spans are not pushed on the opening thread's stack —
        use it for spans that end on a *different* thread (e.g. a gateway
        request settled by a pool callback), which would otherwise pin the
        opener's stack; children then link via explicit ``parent=``.
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        if not isinstance(parent, Span):
            parent = None  # e.g. NULL_SPAN captured before tracing was enabled
        s = Span(
            name=name,
            span_id=0,
            parent_id=parent.span_id if parent is not None else None,
            start_ns=time.perf_counter_ns(),
            attributes={k: _json_safe(v) for k, v in attributes.items()},
            thread_id=threading.get_ident(),
            pid=os.getpid(),
            detached=detached,
            _tracer=self,
        )
        with self._lock:
            s.span_id = self._next_id
            self._next_id += 1
            self._open[s.span_id] = s
        if not detached:
            stack.append(s)
        return s

    def _finish(self, span: Span) -> None:
        end_ns = time.perf_counter_ns()
        with self._lock:
            # the open-set is the single finish arbiter: a span ended twice,
            # or ended concurrently with a truncating flush, records once
            if self._open.pop(span.span_id, None) is None:
                return
            span.end_ns = end_ns
            self._spans.append(span)
        stack = self._stack()
        if span in stack:
            # pop this span and anything opened after it on this thread
            # (abandoned children of an errored operation)
            del stack[stack.index(span) :]

    def flush_truncated(self) -> list[Span]:
        """Force-finish open *detached* spans, marking them ``truncated``.

        Detached spans end on whatever thread settles them; if the collector
        closes first (``disable_tracing``, end of a load test) they would
        otherwise vanish from the export with their timing silently lost.
        Flushing stamps ``truncated: true`` so consumers can tell a span cut
        short at collection from one that really finished.  Attached spans
        are left alone — they live on a thread's stack mid-operation and
        their owner will still end them.
        """
        end_ns = time.perf_counter_ns()
        flushed = []
        with self._lock:
            for span_id, span in list(self._open.items()):
                if not span.detached:
                    continue
                del self._open[span_id]
                span.attributes["truncated"] = True
                span.end_ns = end_ns
                self._spans.append(span)
                flushed.append(span)
        return flushed

    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- cross-process merge -----------------------------------------------------

    def ingest(
        self,
        spans: list[dict],
        parent: Span | None = None,
        pid: int = 0,
        trace_id: str | None = None,
    ) -> list[Span]:
        """Merge already-finished foreign spans (a worker's telemetry backhaul).

        Each wire record carries capture-local ``id``/``parent`` links; ids
        are remapped into this tracer's id space, intra-capture parent links
        are preserved, and capture roots are re-parented under ``parent``
        (the gateway-side request span) so the merged tree renders as one
        connected trace.  Spans keep their origin ``pid`` and thread id —
        Perfetto then shows one process row per worker.
        """
        id_map: dict[int, int] = {}
        merged: list[Span] = []
        parent_id = parent.span_id if isinstance(parent, Span) else None
        with self._lock:
            for record in spans:
                attributes = dict(record.get("attrs", ()))
                if trace_id is not None:
                    attributes.setdefault("trace_id", trace_id)
                local_parent = record.get("parent")
                s = Span(
                    name=record["name"],
                    span_id=self._next_id,
                    parent_id=id_map.get(local_parent, parent_id),
                    start_ns=int(record["start_ns"]),
                    end_ns=int(record["end_ns"]),
                    attributes=attributes,
                    thread_id=int(record.get("thread_id", 0)),
                    pid=int(record.get("pid", pid) or pid),
                    _tracer=self,
                )
                id_map[record["id"]] = self._next_id
                self._next_id += 1
                self._spans.append(s)
                merged.append(s)
        return merged

    # -- export ------------------------------------------------------------------

    def finished(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def to_json(self) -> list[dict]:
        return [s.to_json() for s in self.finished()]

    def to_chrome_trace(self) -> dict:
        """Chrome ``trace_event`` JSON object format (Perfetto-loadable).

        Each span renders under its *own* origin pid (merged worker spans
        get their worker's process row); spans recorded before pids were
        stamped fall back to the exporting process.
        """
        own_pid = os.getpid()
        events = []
        pids = set()
        for s in self.finished():
            args = dict(s.attributes)
            args["span_id"] = s.span_id
            if s.parent_id is not None:
                args["parent_id"] = s.parent_id
            pid = s.pid or own_pid
            pids.add(pid)
            events.append(
                {
                    "name": s.name,
                    "cat": self.service,
                    "ph": "X",
                    "ts": s.start_ns / 1000.0,  # microseconds
                    "dur": s.duration_ns / 1000.0,
                    "pid": pid,
                    "tid": s.thread_id % 2**31,
                    "args": args,
                }
            )
        # name the process rows so Perfetto labels gateway vs worker pids
        # (only when spans actually span processes — single-process traces
        # stay a plain list of X events)
        for pid in sorted(pids) if len(pids) > 1 else ():
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {
                        "name": (
                            f"{self.service} gateway ({pid})"
                            if pid == own_pid
                            else f"{self.service} worker ({pid})"
                        )
                    },
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"service": self.service},
        }

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=2)
            handle.write("\n")


# ---------------------------------------------------------------------------
# Module-level switch: off by default, one global read on the disabled path
# ---------------------------------------------------------------------------

_tracer: Tracer | None = None


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the process-wide tracer; spans record from now on."""
    global _tracer
    _tracer = tracer or Tracer()
    return _tracer


def disable_tracing() -> None:
    """Uninstall the process-wide tracer (closing the collector).

    Detached spans still open at close — e.g. ``gateway.request`` spans whose
    settling callback never ran — are flushed as explicitly-truncated spans
    rather than silently dropped, so the export stays complete.
    """
    global _tracer
    t, _tracer = _tracer, None
    if t is not None:
        t.flush_truncated()


def tracing_enabled() -> bool:
    return _tracer is not None


def get_tracer() -> Tracer | None:
    return _tracer


def span(name: str, parent: Span | None = None, detached: bool = False, **attributes):
    """Open a span on the active tracer, or a shared no-op when disabled."""
    t = _tracer
    if t is None:
        return NULL_SPAN
    return t.span(name, parent=parent, detached=detached, **attributes)
