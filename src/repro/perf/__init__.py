"""Deployment performance model.

Turns interpreter execution statistics into estimated runtimes for the
paper's deployment ladder — native, WASM, WASM-SGX in simulation mode,
WASM-SGX in hardware mode, and the instrumented variants — reproducing the
overhead *shape* of Figs. 6, 9 and 10 without the authors' Xeon testbed.
"""

from repro.perf.model import (
    Deployment,
    DeploymentReport,
    PerformanceModel,
    WorkloadRun,
    CLOCK_GHZ,
)

__all__ = [
    "Deployment",
    "DeploymentReport",
    "PerformanceModel",
    "WorkloadRun",
    "CLOCK_GHZ",
]
