"""Cycle-level performance model for the deployment ladder.

The model is mechanistic, not fitted per benchmark: every deployment's cost
is assembled from the same measured quantities (instruction visit counts,
cache behaviour, memory footprint, I/O volume) plus published per-component
costs (EPC paging, enclave transitions, memory-encryption overhead).

* **native** — the same instruction stream costed with a slightly cheaper
  per-category table (no bounds checks, better register allocation), giving
  the paper's ~1.1x average WASM-over-native overhead;
* **wasm** — the interpreter's cost-model cycles as measured;
* **wasm-sgx-sim** — SGX-LKL without hardware: LKL syscall servicing only
  (the paper finds this adds nothing for compute-bound work);
* **wasm-sgx-hw** — adds the memory-encryption-engine surcharge on LLC
  misses, enclave transitions for delegated syscalls, and EPC paging once
  the enclave footprint exceeds the 93 MiB usable EPC (the dominant effect
  in Fig. 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sgx.epc import EPCModel
from repro.sgx.lkl import EEXIT_EENTER_CYCLES
from repro.wasm.costmodel import CostModel, MemoryHierarchy
from repro.wasm.instructions import Category, INSTRUCTIONS_BY_NAME
from repro.wasm.interpreter import ExecutionStats, Instance
from repro.wasm.module import Module

#: Simulated clock of the paper's Xeon E3-1230 v5.
CLOCK_GHZ = 3.4

#: Native-over-wasm per-category cost discount: what an AOT native compile of
#: the same kernel saves relative to the Wasm execution contract (bounds
#: checks, stack-machine shuffles, call indirection).
_NATIVE_DISCOUNT: dict[Category, float] = {
    Category.CONTROL: 0.85,
    Category.PARAMETRIC: 0.70,
    Category.VARIABLE: 0.70,
    Category.MEMORY: 0.80,
    Category.CONST: 0.55,
    Category.COMPARISON: 0.90,
    Category.NUMERIC: 0.95,
    Category.CONVERSION: 0.95,
}

#: Extra DRAM latency factor under the SGX memory encryption engine.
_MEE_DRAM_FACTOR = 0.25


class Deployment(enum.Enum):
    NATIVE = "native"
    WASM = "wasm"
    WASM_SGX_SIM = "wasm-sgx-sim"
    WASM_SGX_HW = "wasm-sgx-hw"


@dataclass
class WorkloadRun:
    """One measured execution: stats plus the ambient memory facts."""

    stats: ExecutionStats
    hierarchy: MemoryHierarchy | None
    footprint_bytes: int
    locality: float = 0.7
    delegated_syscalls: int = 0

    @classmethod
    def measure(
        cls,
        module: Module,
        export: str,
        args: tuple = (),
        setup: list[tuple[str, tuple]] | None = None,
        footprint_bytes: int | None = None,
        locality: float = 0.7,
        imports: dict | None = None,
    ) -> tuple["WorkloadRun", object]:
        """Instantiate and run a module under the default cost model."""
        cost = CostModel.with_default_hierarchy()
        instance = Instance(module, imports=imports or {}, cost_model=cost)
        for name, call_args in setup or []:
            instance.invoke(name, *call_args)
        value = instance.invoke(export, *args)
        footprint = footprint_bytes
        if footprint is None:
            footprint = instance.memory.size_bytes if instance.memory else 0
        run = cls(
            stats=instance.stats,
            hierarchy=cost.hierarchy,
            footprint_bytes=footprint,
            locality=locality,
        )
        return run, value


@dataclass
class DeploymentReport:
    """Estimated cost of one run under one deployment."""

    deployment: Deployment
    cycles: float
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.cycles / (CLOCK_GHZ * 1e9)


class PerformanceModel:
    """Prices a :class:`WorkloadRun` under each deployment."""

    def __init__(self, epc: EPCModel | None = None):
        self.epc = epc or EPCModel()

    # -- per-deployment costing ---------------------------------------------------

    def native_cycles(self, run: WorkloadRun) -> float:
        compute = 0.0
        for name, count in run.stats.visits.items():
            info = INSTRUCTIONS_BY_NAME[name]
            weight = CostModel().instruction_cycles(name)
            compute += count * weight * _NATIVE_DISCOUNT[info.category]
        memory = run.hierarchy.total_cycles if run.hierarchy else 0.0
        return compute + memory

    def wasm_cycles(self, run: WorkloadRun) -> float:
        return run.stats.cycles

    def sgx_sim_cycles(self, run: WorkloadRun) -> float:
        # LKL services syscalls in-enclave; compute-bound work is unaffected
        lkl_service = run.stats.host_calls * 450.0
        return run.stats.cycles + lkl_service

    def sgx_hw_cycles(self, run: WorkloadRun) -> tuple[float, dict[str, float]]:
        base = self.sgx_sim_cycles(run)
        llc_misses = 0.0
        if run.hierarchy is not None:
            llc_misses = run.hierarchy.levels[-1].misses
        mee = llc_misses * run.hierarchy.dram_cycles * _MEE_DRAM_FACTOR if run.hierarchy else 0.0
        accesses = run.stats.loads + run.stats.stores
        paging = self.epc.paging_overhead_cycles(
            run.footprint_bytes, accesses, run.locality
        )
        transitions = run.delegated_syscalls * EEXIT_EENTER_CYCLES
        breakdown = {
            "base": base,
            "mee": mee,
            "epc_paging": paging,
            "transitions": transitions,
        }
        return base + mee + paging + transitions, breakdown

    def report(self, run: WorkloadRun, deployment: Deployment) -> DeploymentReport:
        if deployment is Deployment.NATIVE:
            return DeploymentReport(deployment, self.native_cycles(run))
        if deployment is Deployment.WASM:
            return DeploymentReport(deployment, self.wasm_cycles(run))
        if deployment is Deployment.WASM_SGX_SIM:
            return DeploymentReport(deployment, self.sgx_sim_cycles(run))
        cycles, breakdown = self.sgx_hw_cycles(run)
        return DeploymentReport(deployment, cycles, breakdown)

    def normalised_runtimes(self, run: WorkloadRun) -> dict[Deployment, float]:
        """Every deployment's runtime normalised to native (Fig. 6 y-axis)."""
        native = self.native_cycles(run)
        return {
            d: self.report(run, d).cycles / native
            for d in Deployment
        }
