"""The paper's three deployment scenarios built on the AccTEE core.

* :mod:`repro.scenarios.faas` — Function-as-a-Service with per-request
  isolation and billed resource accounting (Fig. 9);
* :mod:`repro.scenarios.volunteer` — BOINC-style volunteer computing with
  trusted credit instead of redundant execution (§2.1, Fig. 10 workloads);
* :mod:`repro.scenarios.paybycomputation` — trading computation for web
  content with enforced resource budgets (§2.1);
* :mod:`repro.scenarios.reimbursed` — a compute marketplace with escrowed,
  log-settled payments (§2.1, reimbursed computing).
"""

from repro.scenarios.faas import FaaSPlatform, FaaSSetup, ThroughputPoint
from repro.scenarios.volunteer import VolunteerProject, Volunteer, ProjectReport
from repro.scenarios.paybycomputation import ContentServer, BrowsingSession
from repro.scenarios.reimbursed import ComputeMarketplace, Job, Receipt, SettlementError

__all__ = [
    "FaaSPlatform",
    "FaaSSetup",
    "ThroughputPoint",
    "VolunteerProject",
    "Volunteer",
    "ProjectReport",
    "ContentServer",
    "BrowsingSession",
    "ComputeMarketplace",
    "Job",
    "Receipt",
    "SettlementError",
]
