"""Function-as-a-Service scenario: the Fig. 9 throughput experiment.

Models the paper's setup: an HTTP server that instantiates a fresh Wasm
module per incoming request (tenant isolation), executes the function, and
returns the response — under six deployments:

========================  =====================================================
``WASM``                  Node.js-style runtime, no SGX
``WASM-SGX SIM``          on SGX-LKL in simulation mode (software layers only)
``WASM-SGX HW``           real enclave: transitions, MEE, runtime EPC pressure
``WASM-SGX HW instr.``    + loop-based instrumentation
``WASM-SGX HW I/O``       + I/O accounting
``JS``                    pure-JavaScript implementation on OpenFaaS/Docker
========================  =====================================================

Service times are assembled mechanistically from measured Wasm execution
cycles plus per-layer software costs, then driven through the discrete-event
simulator with h2load's closed-loop 10-client model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.instrument import instrument_module
from repro.instrument.weights import UNIT_WEIGHTS
from repro.perf.model import CLOCK_GHZ
from repro.sgx.lkl import EEXIT_EENTER_CYCLES, ENCRYPTION_CYCLES_PER_BYTE
from repro.simnet import ClosedLoopLoadGenerator, NetworkLink, RequestServer, Simulator
from repro.wasm.costmodel import CostModel
from repro.wasm.runtime import HostEnvironment, IOChannel
from repro.workloads.imaging import ECHO, RESIZE, synthetic_image
from repro.workloads.spec import WorkloadSpec


class FaaSSetup(enum.Enum):
    """The six bars of Fig. 9."""

    WASM = "WASM"
    WASM_SGX_SIM = "WASM-SGX SIM"
    WASM_SGX_HW = "WASM-SGX HW"
    WASM_SGX_HW_INSTR = "WASM-SGX HW instr."
    WASM_SGX_HW_IO = "WASM-SGX HW I/O"
    JS = "JS"


#: Per-request software-layer costs (seconds), assembled from the layer
#: behaviour: HTTP parsing + glue, per-request module instantiation, and the
#: per-byte copy path in and out of the runtime.
_HTTP_BASE_S = {
    FaaSSetup.WASM: 0.0009,
    FaaSSetup.WASM_SGX_SIM: 0.0025,
    FaaSSetup.WASM_SGX_HW: 0.0040,
    FaaSSetup.WASM_SGX_HW_INSTR: 0.0040,
    FaaSSetup.WASM_SGX_HW_IO: 0.0040,
    FaaSSetup.JS: 0.068,  # OpenFaaS/Docker per-request dispatch
}

_INSTANTIATE_S = 0.0004  # compile+instantiate a cached side module

_PER_BYTE_S = {
    FaaSSetup.WASM: 18e-9,
    FaaSSetup.WASM_SGX_SIM: 92e-9,  # LKL network stack + user-level threading
    FaaSSetup.WASM_SGX_HW: 88e-9,  # slightly cheaper: fewer simulated traps
    FaaSSetup.WASM_SGX_HW_INSTR: 88e-9,
    FaaSSetup.WASM_SGX_HW_IO: 89e-9,
    FaaSSetup.JS: 24e-9,
}

#: Extra per-request cost of running Node+V8 in an enclave whose footprint
#: far exceeds the EPC (paging of the runtime heap).
_HW_RUNTIME_PAGING_S = 0.0006

#: The JS implementations of the functions are interpreted/JIT JavaScript
#: (JIMP does pixel math in JS objects): measured by the paper at up to 16x
#: slower than the Wasm build for resize.
_JS_COMPUTE_FACTOR = 9.0


def assemble_service_time(setup: FaaSSetup, exec_cycles: float, payload_bytes: int) -> float:
    """Assemble one request's modeled service time from its execution cycles.

    This is the paper's Fig. 9 service-time model factored into a pure
    function of ``(setup, cycles, payload)``, so it is pluggable wherever a
    per-request cost is needed: :class:`FaaSPlatform` feeds it into the
    discrete-event simulator, and the metering gateway's simulated backend
    (:class:`repro.service.backends.SimulatedFaaSBackend`) uses it to pace a
    *real* wall-clock serving loop without executing Wasm per request.
    """
    if setup is FaaSSetup.JS:
        compute_s = exec_cycles * _JS_COMPUTE_FACTOR / (CLOCK_GHZ * 1e9)
        return _HTTP_BASE_S[setup] + _PER_BYTE_S[setup] * payload_bytes + compute_s

    total = _HTTP_BASE_S[setup]
    total += _INSTANTIATE_S
    total += _PER_BYTE_S[setup] * payload_bytes
    total += exec_cycles / (CLOCK_GHZ * 1e9)
    if setup in (
        FaaSSetup.WASM_SGX_HW,
        FaaSSetup.WASM_SGX_HW_INSTR,
        FaaSSetup.WASM_SGX_HW_IO,
    ):
        total += _HW_RUNTIME_PAGING_S
        # enclave transitions for the request's delegated I/O syscalls
        chunks = max(1, payload_bytes // 16384) + 2
        total += chunks * EEXIT_EENTER_CYCLES / (CLOCK_GHZ * 1e9)
        total += payload_bytes * ENCRYPTION_CYCLES_PER_BYTE / (CLOCK_GHZ * 1e9)
    if setup is FaaSSetup.WASM_SGX_HW_IO:
        # the JavaScript-side byte counters on each io call
        total += payload_bytes * 1.2e-9
    return total


@dataclass
class ThroughputPoint:
    """One bar of Fig. 9."""

    function: str
    image_px: int
    payload_bytes: int
    setup: FaaSSetup
    throughput_rps: float
    mean_latency_s: float
    service_time_s: float


@dataclass
class FaaSPlatform:
    """Measures function throughput across the deployment ladder."""

    clients: int = 10
    measure_s: float = 4.0

    _exec_cache: dict = field(default_factory=dict)

    # -- wasm execution cost -------------------------------------------------------

    def _execution_cycles(self, spec: WorkloadSpec, payload: bytes, args: tuple, instrumented: bool) -> float:
        """Cycles one request's Wasm execution takes (measured, cached)."""
        key = (spec.name, len(payload), instrumented)
        if key in self._exec_cache:
            return self._exec_cache[key]
        module = spec.compile().clone()
        if instrumented:
            module = instrument_module(module, "loop-based", UNIT_WEIGHTS).module
        cost = CostModel.with_default_hierarchy()
        env = HostEnvironment(IOChannel(input_data=payload))
        instance = env.instantiate(module, cost_model=cost)
        instance.invoke(spec.run[0], *args)
        cycles = instance.stats.cycles
        self._exec_cache[key] = cycles
        return cycles

    # -- service time assembly -------------------------------------------------------

    def service_time(
        self, function: str, image_px: int, setup: FaaSSetup
    ) -> float:
        payload = image_px * image_px  # one byte per pixel
        spec, args = self._function(function, image_px)
        instrumented = setup in (FaaSSetup.WASM_SGX_HW_INSTR, FaaSSetup.WASM_SGX_HW_IO)
        exec_cycles = self._execution_cycles(
            spec, synthetic_image(image_px), args, instrumented
        )
        return assemble_service_time(setup, exec_cycles, payload)

    @staticmethod
    def _function(function: str, image_px: int) -> tuple[WorkloadSpec, tuple]:
        if function == "echo":
            return ECHO, ()
        if function == "resize":
            return RESIZE, (image_px,)
        raise ValueError(f"unknown FaaS function {function!r}")

    # -- throughput measurement ---------------------------------------------------------

    def measure(self, function: str, image_px: int, setup: FaaSSetup) -> ThroughputPoint:
        """Drive the closed-loop load generator and report throughput."""
        service = self.service_time(function, image_px, setup)
        sim = Simulator()
        server = RequestServer(sim, service_time=lambda _bytes: service, workers=1)
        payload = image_px * image_px
        response = payload if function == "echo" else 4096
        loadgen = ClosedLoopLoadGenerator(
            sim,
            server,
            link=NetworkLink(),
            clients=self.clients,
            payload_bytes=payload,
            response_bytes=response,
        )
        result = loadgen.run(warmup_s=0.25, measure_s=self.measure_s)
        return ThroughputPoint(
            function=function,
            image_px=image_px,
            payload_bytes=payload,
            setup=setup,
            throughput_rps=result.throughput_rps,
            mean_latency_s=result.mean_latency_s,
            service_time_s=service,
        )

    def sweep(
        self,
        function: str,
        sizes: tuple[int, ...] = (64, 128, 512, 1024),
        setups: tuple[FaaSSetup, ...] = tuple(FaaSSetup),
    ) -> list[ThroughputPoint]:
        """The full Fig. 9 grid for one function."""
        return [
            self.measure(function, px, setup)
            for px in sizes
            for setup in setups
        ]
