"""Pay-by-computation scenario: trading computation for web content (§2.1).

A content server replaces advertising with short-lived compute tasks: a
visitor's browser runs a task inside the two-way sandbox, the sandbox's
signed resource log proves how much computation was donated, and the server
unlocks the article once the account covers its price.  The sandbox also
*limits* resource consumption (the paper's "two-way sandbox limits the
overall resource consumption") via the execution instruction budget, so a
malicious task cannot burn the visitor's machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.policy import PricingPolicy
from repro.core.sandbox import SandboxConfig, TwoWaySandbox
from repro.sgx.enclave import SGXPlatform
from repro.workloads.spec import WorkloadSpec


@dataclass
class Article:
    """One piece of gated content with a compute price."""

    slug: str
    title: str
    price_instructions: int  # weighted instructions required to unlock


@dataclass
class TaskAssignment:
    """A compute task the server hands to a visiting browser."""

    spec: WorkloadSpec
    args: tuple
    budget_instructions: int  # sandbox-enforced upper bound


class PaymentRejected(Exception):
    """The server refused a proof of computation."""


class ContentServer:
    """Publishes articles and verifies computation receipts."""

    def __init__(self, tasks: list[TaskAssignment], articles: list[Article]):
        self.tasks = tasks
        self.articles = {a.slug: a for a in articles}
        self._next_task = 0
        self.collected_results: list[object] = []

    def assign_task(self) -> TaskAssignment:
        task = self.tasks[self._next_task % len(self.tasks)]
        self._next_task += 1
        return task

    def redeem(self, session: "BrowsingSession", slug: str) -> str:
        """Verify the session's accumulated log and unlock the article."""
        article = self.articles[slug]
        if not session.sandbox.verify_log():
            raise PaymentRejected("resource log failed verification")
        balance = session.sandbox.totals().weighted_instructions - session.spent
        if balance < article.price_instructions:
            raise PaymentRejected(
                f"insufficient computation: have {balance}, "
                f"need {article.price_instructions}"
            )
        session.spent += article.price_instructions
        return f"<article:{article.title}>"


@dataclass
class BrowsingSession:
    """A visitor's browser session: its sandbox plus the spent-credit cursor."""

    sandbox: TwoWaySandbox
    spent: int = 0
    completed_tasks: int = 0

    @classmethod
    def open(cls, budget_instructions: int | None = None, seed: int = 0) -> "BrowsingSession":
        config = SandboxConfig(max_instructions=budget_instructions)
        platform = SGXPlatform(platform_id=f"browser-{seed}", seed=seed)
        return cls(sandbox=TwoWaySandbox.deploy(config, platform=platform))

    def run_task(self, task: TaskAssignment) -> object:
        """Execute one assigned task inside the sandbox; returns its value."""
        workload = self.sandbox.submit_module(task.spec.compile().clone())
        for name, args in task.spec.setup:
            workload.invoke(name, *args, label="setup")
        result = workload.invoke(task.spec.run[0], *task.args, label=task.spec.name)
        self.completed_tasks += 1
        return result.value

    @property
    def balance(self) -> int:
        return self.sandbox.totals().weighted_instructions - self.spent
