"""Reimbursed computing: the commercialisation of volunteer computing (§2.1).

Anyone with spare hardware registers as a provider on a marketplace;
workload providers post jobs with a per-instruction price; the marketplace
escrows the payment, dispatches jobs into the provider's attested two-way
sandbox, verifies the signed resource log, and settles.

The trust problems the paper lists map to concrete checks here:

* providers are unknown and possibly malicious — payouts require a log
  signed by a key bound to an attested accounting-enclave identity;
* providers must not collect reimbursement for unassigned resources —
  the escrowed amount caps the payout and the log's workload hash must
  match the assigned job;
* workload providers must not underpay — settlement is computed from the
  verified log, not from the workload provider's own claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.resource_log import ResourceUsageLog
from repro.core.sandbox import SandboxConfig, TwoWaySandbox
from repro.sgx.enclave import SGXPlatform
from repro.tcrypto.hashing import sha256
from repro.wasm.binary import encode_module
from repro.workloads.spec import WorkloadSpec


class SettlementError(Exception):
    """A payout was refused (bad log, wrong job, over-cap claim)."""


@dataclass
class Job:
    """A posted unit of work with an escrowed budget."""

    job_id: int
    spec: WorkloadSpec
    args: tuple
    price_per_mega_instruction: float
    escrow: float  # maximum payout, locked at posting time
    max_instructions: int


@dataclass
class Receipt:
    """What a provider submits to get paid."""

    job_id: int
    provider: str
    value: object
    log: ResourceUsageLog
    log_public_key: object
    expected_ae_measurement: bytes


@dataclass
class ProviderAccount:
    name: str
    balance: float = 0.0
    completed_jobs: int = 0
    rejected_receipts: int = 0


class ComputeMarketplace:
    """Escrow, dispatch and settlement for reimbursed computing."""

    def __init__(self) -> None:
        self._jobs: dict[int, Job] = {}
        self._next_job = 0
        self.accounts: dict[str, ProviderAccount] = {}
        self.escrow_pool = 0.0

    # -- workload provider side --------------------------------------------------

    def post_job(
        self,
        spec: WorkloadSpec,
        args: tuple,
        price_per_mega_instruction: float = 50.0,
        max_instructions: int = 50_000_000,
    ) -> Job:
        """Post a job; the maximum possible payout is escrowed immediately."""
        escrow = price_per_mega_instruction * max_instructions / 1e6
        job = Job(
            job_id=self._next_job,
            spec=spec,
            args=args,
            price_per_mega_instruction=price_per_mega_instruction,
            escrow=escrow,
            max_instructions=max_instructions,
        )
        self._next_job += 1
        self._jobs[job.job_id] = job
        self.escrow_pool += escrow
        return job

    # -- provider side ---------------------------------------------------------------

    def register(self, name: str) -> ProviderAccount:
        account = ProviderAccount(name)
        self.accounts[name] = account
        return account

    def execute(self, provider: str, job: Job, platform: SGXPlatform | None = None) -> Receipt:
        """Run the job in the provider's attested sandbox and build a receipt."""
        platform = platform or SGXPlatform(platform_id=f"provider-{provider}")
        sandbox = TwoWaySandbox.deploy(
            SandboxConfig(max_instructions=job.max_instructions), platform=platform
        )
        workload = sandbox.submit_module(job.spec.compile().clone())
        for name, setup_args in job.spec.setup:
            workload.invoke(name, *setup_args, label="setup")
        result = workload.invoke(job.spec.run[0], *job.args, label=f"job-{job.job_id}")
        return Receipt(
            job_id=job.job_id,
            provider=provider,
            value=result.value,
            log=sandbox.log,
            log_public_key=sandbox.ae.log_public_key,
            expected_ae_measurement=sandbox.ae.mrenclave,
        )

    # -- settlement --------------------------------------------------------------------

    def settle(self, receipt: Receipt, trusted_ae_measurement: bytes) -> float:
        """Verify a receipt and pay the provider from escrow.

        ``trusted_ae_measurement`` is the AE build hash both parties audited;
        a receipt from any other enclave identity is worthless regardless of
        its internal consistency.
        """
        account = self.accounts.get(receipt.provider)
        if account is None:
            raise SettlementError(f"unknown provider {receipt.provider!r}")
        job = self._jobs.get(receipt.job_id)
        if job is None:
            raise SettlementError(f"unknown job {receipt.job_id}")

        def reject(reason: str) -> SettlementError:
            account.rejected_receipts += 1
            return SettlementError(reason)

        if receipt.expected_ae_measurement != trusted_ae_measurement:
            raise reject("receipt from an unaudited enclave build")
        if not receipt.log.entries:
            raise reject("empty resource log")
        if not receipt.log.verify(receipt.log_public_key):
            raise reject("resource log failed verification")
        expected_hash = _instrumented_hash(job)
        billed = [e for e in receipt.log.entries if e.vector.label == f"job-{job.job_id}"]
        if not billed:
            raise reject("log contains no entry for this job")
        for entry in billed:
            if entry.workload_hash != expected_hash:
                raise reject("log entry covers a different workload")

        instructions = sum(e.vector.weighted_instructions for e in billed)
        payout = job.price_per_mega_instruction * instructions / 1e6
        if payout > job.escrow:
            raise reject("claim exceeds the escrowed budget")

        self.escrow_pool -= payout
        refund = job.escrow - payout
        self.escrow_pool -= refund  # returned to the workload provider
        del self._jobs[receipt.job_id]
        account.balance += payout
        account.completed_jobs += 1
        return payout


def _instrumented_hash(job: Job) -> bytes:
    """The workload hash the AE logs: the *instrumented* module's bytes.

    Settlement recomputes it independently through the same deterministic
    IE configuration, so a provider cannot bill for a different module.
    """
    from repro.core.instrumentation_enclave import InstrumentationEnclave

    ie = InstrumentationEnclave()
    result, _ = ie.instrument(job.spec.compile().clone())
    return sha256(encode_module(result.module))
