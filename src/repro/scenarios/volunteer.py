"""Volunteer computing scenario: BOINC-style projects on AccTEE (§2.1).

Compares the two operating modes the paper contrasts:

* **redundant mode** (today's BOINC practice): every work unit is executed
  by a quorum of volunteers; results are cross-checked; credit is whatever
  CPU time the volunteer *claims* — so cheaters can inflate their claims or
  submit bogus results that cost a redundant execution to catch;
* **acctee mode**: each work unit runs once inside a volunteer's two-way
  sandbox; the result is integrity-protected and credit comes from the
  signed resource usage log — forged claims fail signature/chain
  verification, and redundancy is unnecessary.

The report quantifies exactly what the paper argues: the duplicated-work
saving and the elimination of credit cheating.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.sandbox import SandboxConfig, TwoWaySandbox
from repro.core.resource_log import ResourceUsageLog
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import SGXPlatform
from repro.workloads.spec import WorkloadSpec


@dataclass
class WorkUnit:
    """One task: a workload plus its input arguments."""

    unit_id: int
    spec: WorkloadSpec
    args: tuple


@dataclass
class SubmittedResult:
    unit_id: int
    volunteer: str
    value: object
    claimed_credit: float  # what the volunteer asks for
    log: ResourceUsageLog | None  # signed log in acctee mode
    log_key  : object | None = None


@dataclass
class Volunteer:
    """A participant machine; ``cheat`` controls misbehaviour.

    ``cheat="credit"`` inflates the claimed CPU time 10x; ``cheat="result"``
    submits a bogus result without doing the work (both behaviours the
    BOINC literature documents).  In acctee mode volunteers run a real
    two-way sandbox; cheaters try to tamper with the log and fail.
    """

    name: str
    speed: float = 1.0  # relative CPU speed (heterogeneous hardware)
    cheat: str = "none"  # "none" | "credit" | "result"

    def execute_redundant(self, unit: WorkUnit, rng: random.Random) -> SubmittedResult:
        """Legacy mode: run natively (or pretend to) and claim CPU seconds."""
        if self.cheat == "result":
            return SubmittedResult(unit.unit_id, self.name, rng.randrange(1 << 30), 20.0, None)
        value, visits = _reference_run(unit)
        cpu_seconds = visits / (1e9 * self.speed)  # platform-dependent!
        claimed = cpu_seconds * (10.0 if self.cheat == "credit" else 1.0)
        return SubmittedResult(unit.unit_id, self.name, value, claimed, None)

    def execute_acctee(self, unit: WorkUnit, rng: random.Random) -> SubmittedResult:
        """AccTEE mode: run inside an attested two-way sandbox."""
        platform = SGXPlatform(platform_id=f"volunteer-{self.name}", seed=hash(self.name) & 0xFFFF)
        sandbox = TwoWaySandbox.deploy(SandboxConfig(), platform=platform)
        workload = sandbox.submit_module(unit.spec.compile().clone())
        result = workload.invoke(unit.spec.run[0], *unit.args, label=f"unit-{unit.unit_id}")
        value = result.value
        log = sandbox.log
        if self.cheat == "credit":
            # attempt to tamper: inflate the top entry's instruction count.
            # The entry body is signed by the AE, and the cheater has no key
            # that the server's attestation pinned — verification will fail.
            from dataclasses import replace as _replace

            forged = ResourceUsageLog(signing_key=None)
            forged.entries = list(log.entries)
            top = forged.entries[-1]
            forged.entries[-1] = _replace(
                top,
                vector=_replace(
                    top.vector,
                    weighted_instructions=top.vector.weighted_instructions * 10,
                ),
            )
            log = forged
        if self.cheat == "result":
            value = rng.randrange(1 << 30)  # outside the enclave they cannot
            # actually alter the enclave-produced result; model as a tampered
            # submission that integrity checking catches.
        return SubmittedResult(
            unit.unit_id,
            self.name,
            value,
            claimed_credit=float(log.totals().weighted_instructions),
            log=log,
            log_key=sandbox.ae.log_public_key,
        )


def _reference_run(unit: WorkUnit) -> tuple[object, int]:
    from repro.wasm.interpreter import Instance

    instance = Instance(unit.spec.compile().clone())
    for name, args in unit.spec.setup:
        instance.invoke(name, *args)
    value = instance.invoke(unit.spec.run[0], *unit.args)
    return value, instance.stats.total_visits


@dataclass
class ProjectReport:
    """Aggregate outcome of running a project in one mode."""

    mode: str
    executions: int  # total workload executions performed
    units_completed: int
    credits: dict[str, float] = field(default_factory=dict)
    cheaters_detected: list[str] = field(default_factory=list)
    wasted_executions: int = 0


class VolunteerProject:
    """A project server distributing work units to volunteers."""

    def __init__(self, volunteers: list[Volunteer], quorum: int = 2, seed: int = 7):
        if quorum < 2:
            raise ValueError("redundant mode needs a quorum of at least 2")
        self.volunteers = volunteers
        self.quorum = quorum
        self.rng = random.Random(seed)

    # -- legacy redundant mode -----------------------------------------------------

    def run_redundant(self, units: list[WorkUnit]) -> ProjectReport:
        report = ProjectReport(mode="redundant", executions=0, units_completed=0)
        for unit in units:
            chosen = self.rng.sample(self.volunteers, self.quorum)
            submissions = [v.execute_redundant(unit, self.rng) for v in chosen]
            report.executions += len(submissions)
            values = [s.value for s in submissions]
            if len(set(map(repr, values))) == 1:
                report.units_completed += 1
                for s in submissions:
                    report.credits[s.volunteer] = (
                        report.credits.get(s.volunteer, 0.0) + s.claimed_credit
                    )
            else:
                # disagreement: need a tie-breaking third execution
                referee = self.rng.choice(
                    [v for v in self.volunteers if v not in chosen]
                )
                tie = referee.execute_redundant(unit, self.rng)
                report.executions += 1
                report.wasted_executions += 1
                majority = [s for s in submissions if repr(s.value) == repr(tie.value)]
                for s in majority + [tie]:
                    report.credits[s.volunteer] = (
                        report.credits.get(s.volunteer, 0.0) + s.claimed_credit
                    )
                losers = [s for s in submissions if repr(s.value) != repr(tie.value)]
                report.cheaters_detected.extend(s.volunteer for s in losers)
                report.units_completed += 1
        return report

    # -- acctee mode -------------------------------------------------------------------

    def run_acctee(self, units: list[WorkUnit]) -> ProjectReport:
        report = ProjectReport(mode="acctee", executions=0, units_completed=0)
        expected: dict[int, object] = {}
        for unit in units:
            volunteer = self.rng.choice(self.volunteers)
            submission = volunteer.execute_acctee(unit, self.rng)
            report.executions += 1
            # 1. verify the signed log before granting any credit
            log_ok = (
                submission.log is not None
                and submission.log.entries
                and submission.log.verify(submission.log_key)
            )
            if not log_ok:
                report.cheaters_detected.append(submission.volunteer)
                continue
            # 2. integrity: enclave-produced results need no quorum; we spot-
            # check against a reference here to *demonstrate* they match
            if unit.unit_id not in expected:
                expected[unit.unit_id], _ = _reference_run(unit)
            if repr(submission.value) != repr(expected[unit.unit_id]):
                report.cheaters_detected.append(submission.volunteer)
                continue
            report.units_completed += 1
            report.credits[submission.volunteer] = (
                report.credits.get(submission.volunteer, 0.0) + submission.claimed_credit
            )
        return report
