"""Timed volunteer-computing simulation: makespan and donated CPU time.

The functional comparison in :mod:`repro.scenarios.volunteer` shows *what*
each mode computes; this module adds the *when*: work units are dispatched
over a network to volunteers with heterogeneous CPU speeds, and the
discrete-event simulator measures project makespan and total donated CPU
seconds under the redundant-quorum scheme vs AccTEE's single-execution
scheme.

The per-unit CPU cost comes from real instruction counts of the workload
(measured once), scaled by each volunteer's speed — so the simulation's
"CPU seconds" are grounded in the same metering the rest of the repo uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.model import CLOCK_GHZ
from repro.simnet.kernel import Simulator
from repro.simnet.network import NetworkLink
from repro.wasm.interpreter import Instance
from repro.workloads.spec import WorkloadSpec


@dataclass
class SimVolunteer:
    """A volunteer machine in the timed simulation."""

    name: str
    speed: float = 1.0  # relative to the reference 3.4 GHz core
    busy_until: float = 0.0
    cpu_seconds_donated: float = 0.0
    units_executed: int = 0


@dataclass
class SimOutcome:
    """Timing results for one scheduling mode."""

    mode: str
    makespan_s: float
    total_cpu_seconds: float
    executions: int
    per_volunteer: dict[str, float] = field(default_factory=dict)


class TimedVolunteerProject:
    """Schedules work units onto volunteers and measures completion times."""

    def __init__(
        self,
        volunteers: list[SimVolunteer],
        spec: WorkloadSpec,
        unit_args: list[tuple],
        quorum: int = 2,
        sandbox_overhead: float = 1.15,  # WASM+SGX multiplier vs native (Fig. 6)
    ):
        self.volunteers = volunteers
        self.spec = spec
        self.unit_args = unit_args
        self.quorum = quorum
        self.sandbox_overhead = sandbox_overhead
        self._unit_instructions = [
            self._measure_instructions(args) for args in unit_args
        ]
        self.link = NetworkLink()

    def _measure_instructions(self, args: tuple) -> int:
        instance = Instance(self.spec.compile().clone())
        for name, setup_args in self.spec.setup:
            instance.invoke(name, *setup_args)
        instance.invoke(self.spec.run[0], *args)
        return instance.stats.total_visits

    def _execution_seconds(self, instructions: int, volunteer: SimVolunteer, sandboxed: bool) -> float:
        # ~3 simulated cycles per Wasm instruction on the reference machine
        cycles = instructions * 3.0
        if sandboxed:
            cycles *= self.sandbox_overhead
        return cycles / (CLOCK_GHZ * 1e9 * volunteer.speed)

    def _run(self, replicas: int, sandboxed: bool, mode: str) -> SimOutcome:
        for volunteer in self.volunteers:
            volunteer.busy_until = 0.0
            volunteer.cpu_seconds_donated = 0.0
            volunteer.units_executed = 0
        sim = Simulator()
        completion = [0.0]

        assignments: list[tuple[int, SimVolunteer]] = []
        for unit_index in range(len(self.unit_args)):
            # round-robin over the least-busy volunteers, replicas times
            chosen = sorted(self.volunteers, key=lambda v: v.busy_until)[:replicas]
            for volunteer in chosen:
                assignments.append((unit_index, volunteer))
                duration = self._execution_seconds(
                    self._unit_instructions[unit_index], volunteer, sandboxed
                )
                dispatch = self.link.transfer_time(sim.now, 64 * 1024)
                start = max(volunteer.busy_until, dispatch)
                volunteer.busy_until = start + duration
                volunteer.cpu_seconds_donated += duration
                volunteer.units_executed += 1

                def finish(at=volunteer.busy_until) -> None:
                    completion[0] = max(completion[0], at)

                sim.schedule(volunteer.busy_until, finish)
        sim.run()
        return SimOutcome(
            mode=mode,
            makespan_s=completion[0],
            total_cpu_seconds=sum(v.cpu_seconds_donated for v in self.volunteers),
            executions=len(assignments),
            per_volunteer={v.name: v.cpu_seconds_donated for v in self.volunteers},
        )

    def run_redundant(self) -> SimOutcome:
        """Today's practice: every unit executed by a quorum, natively."""
        return self._run(replicas=self.quorum, sandboxed=False, mode="redundant")

    def run_acctee(self) -> SimOutcome:
        """AccTEE: one sandboxed execution per unit."""
        return self._run(replicas=1, sandboxed=True, mode="acctee")

    def savings(self) -> float:
        """Fraction of donated CPU time AccTEE saves over the quorum scheme."""
        redundant = self.run_redundant()
        acctee = self.run_acctee()
        return 1.0 - acctee.total_cpu_seconds / redundant.total_cpu_seconds
