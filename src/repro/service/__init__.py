"""The multi-tenant metering gateway (the paper's §3.5 FaaS provider, live).

Where :mod:`repro.core.sandbox` runs one workload for one pair of parties,
this package is the *serving* layer an infrastructure provider actually
operates: many mutually-distrusting tenants, concurrent wall-clock
execution on a worker pool, per-tenant admission control, and a billing
ledger that seals signed receipts into Merkle-rooted epochs any tenant can
audit offline.

Layers (each usable on its own):

* :mod:`repro.service.quota`   — admission control: typed rejections with
  retry-after hints, token-bucket rate limiting, instruction budgets;
* :mod:`repro.service.worker`  — the execution pool: process-based
  parallelism with a threaded fallback, per-process module caches;
* :mod:`repro.service.ledger`  — receipts, epoch seals (Merkle root over
  per-tenant hash chains) and the offline :func:`verify_epoch` auditor;
* :mod:`repro.service.backends`— pluggable execution backends (real Wasm, or
  the FaaS service-time model from :mod:`repro.scenarios.faas`);
* :mod:`repro.service.sharding`— deterministic tenant-hash shard routing for
  admission/ledger state and shard-tagged request-id minting;
* :mod:`repro.service.faults`  — failure semantics: typed request failures,
  deadline/retry/backoff policy, worker-result sanity validation, and the
  deterministic fault-injection plans behind ``repro loadtest --faults``;
* :mod:`repro.service.gateway` — the façade tying it all together, plus the
  load-test driver behind ``repro loadtest``.
"""

from repro.service.backends import ExecutionBackend, WasmBackend
from repro.service.faults import (
    DeadlineExceeded,
    FaultPlan,
    GatewayFailure,
    ResiliencePolicy,
    ResultRejected,
    RetriesExhausted,
    WorkerCrashed,
    validate_raw,
)
from repro.service.gateway import GatewayResponse, MeteringGateway, run_loadtest
from repro.service.ledger import (
    BillingLedger,
    DuplicateReceipt,
    EpochSeal,
    EpochVerification,
    Receipt,
    verify_epoch,
)
from repro.service.quota import (
    AdmissionController,
    AdmissionError,
    InstructionBudgetExhausted,
    MemoryCapExceeded,
    QueueFull,
    RateLimited,
    TenantQuota,
    UnknownTenant,
)
from repro.service.sharding import DEFAULT_SHARDS, shard_index_for, shard_of_request
from repro.service.worker import ExecutionTask, WorkerPool

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "BillingLedger",
    "DEFAULT_SHARDS",
    "DeadlineExceeded",
    "DuplicateReceipt",
    "EpochSeal",
    "EpochVerification",
    "ExecutionBackend",
    "ExecutionTask",
    "FaultPlan",
    "GatewayFailure",
    "GatewayResponse",
    "InstructionBudgetExhausted",
    "MemoryCapExceeded",
    "MeteringGateway",
    "QueueFull",
    "RateLimited",
    "Receipt",
    "ResiliencePolicy",
    "ResultRejected",
    "RetriesExhausted",
    "TenantQuota",
    "UnknownTenant",
    "WasmBackend",
    "WorkerCrashed",
    "WorkerPool",
    "run_loadtest",
    "shard_index_for",
    "shard_of_request",
    "validate_raw",
    "verify_epoch",
]
