"""Pluggable execution backends for the metering gateway.

A backend answers one question: *how does an admitted request turn into raw
meter readings?*  Two implementations ship:

* :class:`WasmBackend` — the real thing: execute the instrumented module on
  the worker pool (process or thread workers).  This is the only backend
  whose receipts are trustworthy — it is what ``repro loadtest`` measures.
* :class:`SimulatedFaaSBackend` — the paper's Fig. 9 service-time model
  (:func:`repro.scenarios.faas.assemble_service_time`) as a backend: it
  executes each distinct module *once* to calibrate, then serves subsequent
  requests by pacing the calibrated raw readings at the modeled service
  time.  Useful for exercising the gateway/ledger machinery under request
  volumes the interpreter could not execute for real.

Both expose ``submit(task) -> Future[WorkerResult]`` so the gateway does
not care which one it drives.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import replace
from typing import Protocol

from repro.service.faults import InjectedCrash, corrupt_raw
from repro.service.worker import ExecutionTask, WorkerPool, WorkerResult, execute_task


class ExecutionBackend(Protocol):
    """Structural interface every backend satisfies."""

    @property
    def kind(self) -> str: ...

    def submit(self, task: ExecutionTask) -> Future: ...

    def shutdown(self, wait: bool = True) -> None: ...


class WasmBackend:
    """Execute requests for real on a :class:`WorkerPool`."""

    def __init__(self, pool: WorkerPool):
        self.pool = pool

    @property
    def kind(self) -> str:
        # live, not cached: a broken process pool may degrade to threads
        return f"wasm-{self.pool.kind}"

    def submit(self, task: ExecutionTask) -> Future:
        return self.pool.submit(task)

    def shutdown(self, wait: bool = True) -> None:
        self.pool.shutdown(wait=wait)


class SimulatedFaaSBackend:
    """Serve requests at the Fig. 9 model's pace instead of executing them.

    The first request for each module hash runs for real (in-process) to
    obtain calibrated meter readings; the weighted-instruction counter then
    stands in for execution cycles when assembling the modeled service
    time, exactly as the FaaS scenario derives service times from measured
    cycles.  ``time_scale`` compresses modeled time (0 disables sleeping —
    tests use that).
    """

    def __init__(self, setup=None, workers: int = 4, time_scale: float = 1.0):
        from repro.scenarios.faas import FaaSSetup

        self.setup = setup or FaaSSetup.WASM_SGX_HW_IO
        self.time_scale = time_scale
        self.kind = f"simulated-{self.setup.value}"
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="sim-worker"
        )
        self._calibrated: dict[bytes, WorkerResult] = {}
        self._lock = threading.Lock()

    def _serve(self, task: ExecutionTask) -> WorkerResult:
        from repro.scenarios.faas import assemble_service_time

        fault = task.fault
        if fault is not None:
            # act out injected faults here (there is no real worker to
            # crash), and never let a faulted task poison the calibration
            if fault == "crash":
                raise InjectedCrash("injected worker crash (simulated backend)")
            if fault in ("hang", "slow") and task.fault_arg > 0:
                time.sleep(task.fault_arg)
            task = replace(task, fault=None, fault_arg=0.0)
        with self._lock:
            calibrated = self._calibrated.get(task.module_hash)
        if calibrated is None:
            calibrated = execute_task(task)
            with self._lock:
                self._calibrated.setdefault(task.module_hash, calibrated)
        service_s = assemble_service_time(
            self.setup,
            exec_cycles=float(calibrated.raw.counter_value),
            payload_bytes=len(task.input_data),
        )
        if self.time_scale > 0:
            time.sleep(service_s * self.time_scale)
        raw = corrupt_raw(calibrated.raw) if fault == "corrupt" else calibrated.raw
        return WorkerResult(raw=raw, exec_wall_s=service_s)

    def submit(self, task: ExecutionTask) -> Future:
        return self._executor.submit(self._serve, task)

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)
