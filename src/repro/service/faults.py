"""Fault injection and failure semantics for the metering gateway.

The paper's deployment targets (§4.3: FaaS providers, volunteer computing)
assume workers crash, hang and lie.  This module gives the gateway the
vocabulary to survive that:

* a **typed failure taxonomy** (:class:`GatewayFailure` and subclasses) so
  callers can distinguish "your request timed out" from "the worker lied
  about its meter readings" — the serving-layer analogue of the typed
  :class:`~repro.service.quota.AdmissionError` hierarchy;
* a :class:`ResiliencePolicy` — per-request wall-clock deadlines, bounded
  retries with exponential backoff and *deterministic* jitter (seeded, so
  chaos runs replay exactly);
* :func:`validate_raw` — sanity checks on worker-reported meter readings
  before the accounting enclave signs them (S-FaaS-style: never turn an
  implausible reading into a receipt);
* a :class:`FaultPlan` — a seedable, per-Nth-request fault schedule
  (``crash`` / ``hang`` / ``corrupt`` / ``slow``) that the gateway stamps
  onto outgoing :class:`~repro.service.worker.ExecutionTask`\\ s and the
  worker acts out, wired into ``repro loadtest --faults``.

Determinism is deliberate throughout: the same spec + seed injects the same
faults into the same request ids, and backoff jitter is a hash, not a PRNG —
a failing chaos run can be replayed bit-for-bit.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, replace

from repro.obs.context import worker_event
from repro.obs.events import emit as emit_event
from repro.tcrypto.hashing import sha256
from repro.wasm.memory import PAGE_SIZE

#: Fault kinds a :class:`FaultPlan` can inject, in the order rules are matched.
FAULT_KINDS = ("crash", "hang", "corrupt", "slow")


# -- typed failure taxonomy ----------------------------------------------------


class GatewayFailure(Exception):
    """Base class for typed request failures (the post-admission analogue of
    :class:`~repro.service.quota.AdmissionError`)."""

    code = "failure"

    def to_json(self) -> dict:
        return {"code": self.code, "message": str(self)}


class DeadlineExceeded(GatewayFailure):
    """The request's wall-clock deadline elapsed before a worker result
    settled; its admission slot has been released and nothing was billed."""

    code = "deadline-exceeded"


class WorkerCrashed(GatewayFailure):
    """A worker died (process killed, pool broken) while the request was
    queued or running.  Transient: the gateway retries these."""

    code = "worker-crashed"


class RetriesExhausted(GatewayFailure):
    """Transient failures persisted past the retry budget."""

    code = "retries-exhausted"


class ResultRejected(GatewayFailure):
    """The worker's meter readings failed sanity validation; the accounting
    enclave never signed them.  Terminal: a lying worker is not retried."""

    code = "result-rejected"


class InjectedCrash(RuntimeError):
    """Raised worker-side by the ``crash`` fault when the worker shares the
    gateway process (threaded pool) — killing it for real would take the
    gateway down with it.  Classified as transient, like a real crash."""


#: Exception types the retry layer treats as transient worker failures.
#: ``BrokenExecutor`` covers the stdlib's broken-process-pool error.
def is_transient(exc: BaseException) -> bool:
    from concurrent.futures import BrokenExecutor

    return isinstance(exc, (BrokenExecutor, InjectedCrash, WorkerCrashed))


# -- resilience policy ---------------------------------------------------------


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the gateway behaves when workers fail.

    The defaults change nothing observable on the happy path: retries only
    trigger on transient failures, and no deadline means no watchdog — a
    fault-free run stays byte-identical to a gateway without any policy.
    """

    deadline_s: float | None = None  # per-request wall clock, watchdog-enforced
    max_retries: int = 2  # re-dispatches after the first attempt
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter_seed: int = 0
    #: Sanity-validate worker meter readings before the AE signs them.  Only
    #: ever disable this to *demonstrate* what validation prevents — the
    #: billing-drift auditor must then catch the implausible signed receipt
    #: (``repro loadtest --faults corrupt:… --no-validate --slo``).
    validate_results: bool = True

    def backoff_s(self, request_id: int, attempt: int) -> float:
        """Exponential backoff with deterministic jitter in [0.5x, 1.0x].

        The jitter is a hash of ``(seed, request_id, attempt)`` — two
        requests retrying after one pool break spread out, yet every replay
        of the same run waits exactly as long.
        """
        base = min(self.backoff_cap_s, self.backoff_base_s * (2.0**attempt))
        digest = sha256(
            f"backoff:{self.jitter_seed}:{request_id}:{attempt}".encode()
        )
        frac = int.from_bytes(digest[:4], "big") / 2**32
        return base * (0.5 + 0.5 * frac)


# -- worker-result sanity validation -------------------------------------------


def validate_raw(raw, max_instructions: int | None = None) -> list[str]:
    """Sanity-check worker-reported meter readings before accounting.

    Returns human-readable problems (empty = plausible).  A reading that
    fails here must never reach :meth:`AccountingEnclave.account` — signing
    it would turn a worker's lie into a cryptographic receipt.  Checks are
    necessarily one-sided (a worker under-reporting a counter is caught by
    attestation + instrumentation, not here): the counter must be a
    non-negative number the configured limit allows, and the memory story
    (initial pages, grow history, peak) must be self-consistent, exploiting
    that linear memory never shrinks.
    """
    problems: list[str] = []
    if raw.counter_value < 0:
        problems.append(f"counter is negative ({raw.counter_value})")
    if max_instructions is not None and raw.counter_value > max_instructions:
        problems.append(
            f"counter {raw.counter_value} exceeds the execution limit "
            f"{max_instructions}"
        )
    if raw.io_bytes_in < 0 or raw.io_bytes_out < 0:
        problems.append("negative I/O byte counts")
    if raw.initial_pages < 0:
        problems.append("negative initial page count")
    if raw.initial_pages > 0 and raw.peak_memory_bytes < raw.initial_pages * PAGE_SIZE:
        problems.append(
            f"peak memory {raw.peak_memory_bytes} B below the initial "
            f"{raw.initial_pages} pages"
        )
    last_at, last_pages = -1, raw.initial_pages
    for at, pages in raw.grow_history:
        if at < last_at:
            problems.append("grow history instruction indices go backwards")
            break
        if pages < last_pages:
            problems.append("grow history shrinks linear memory")
            break
        last_at, last_pages = at, pages
    if raw.grow_history and raw.peak_memory_bytes < last_pages * PAGE_SIZE:
        problems.append(
            f"peak memory {raw.peak_memory_bytes} B below the final grown "
            f"size of {last_pages} pages"
        )
    if problems:
        emit_event("meter_invalid", problems=problems, counter=raw.counter_value)
    return problems


# -- fault plans ---------------------------------------------------------------


@dataclass(frozen=True)
class FaultRule:
    """Inject ``kind`` into every ``every``-th request, phase-shifted by a
    seed-derived offset so independent rules don't all pile onto request 0."""

    kind: str
    every: int
    phase: int

    def fires(self, request_id: int) -> bool:
        return request_id % self.every == self.phase


class FaultPlan:
    """A deterministic schedule of injected faults, keyed by request id.

    Build one from a spec string like ``"crash:7,hang:13"`` (inject a crash
    into every 7th request and a hang into every 13th).  The first matching
    rule wins when several fire on the same request.  ``seed`` shifts which
    residue class each rule hits — same spec + seed ⇒ identical schedule.
    """

    def __init__(
        self,
        rules: tuple[FaultRule, ...],
        seed: int = 0,
        hang_s: float = 3.0,
        slow_s: float = 0.2,
    ):
        self.rules = rules
        self.seed = seed
        self.hang_s = hang_s
        self.slow_s = slow_s

    @classmethod
    def parse(
        cls, spec: str, seed: int = 0, hang_s: float = 3.0, slow_s: float = 0.2
    ) -> "FaultPlan":
        """Parse ``"kind:N[,kind:N...]"`` into a plan."""
        rules = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            kind, _, every_text = part.partition(":")
            kind = kind.strip()
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} (choose from {', '.join(FAULT_KINDS)})"
                )
            try:
                every = int(every_text)
            except ValueError:
                raise ValueError(f"fault {part!r} needs an integer period, e.g. crash:7")
            if every < 1:
                raise ValueError(f"fault period must be >= 1, got {every}")
            digest = sha256(f"fault:{kind}:{seed}".encode())
            phase = int.from_bytes(digest[:4], "big") % every
            rules.append(FaultRule(kind=kind, every=every, phase=phase))
        if not rules:
            raise ValueError("empty fault spec")
        return cls(tuple(rules), seed=seed, hang_s=hang_s, slow_s=slow_s)

    def fault_for(self, request_id: int) -> str | None:
        """The fault to inject into this request (None = run clean)."""
        for rule in self.rules:
            if rule.fires(request_id):
                return rule.kind
        return None

    def fault_arg(self, kind: str) -> float:
        """The numeric argument shipped with a fault (sleep seconds)."""
        if kind == "hang":
            return self.hang_s
        if kind == "slow":
            return self.slow_s
        return 0.0

    def describe(self) -> dict:
        return {
            "seed": self.seed,
            "hang_s": self.hang_s,
            "slow_s": self.slow_s,
            "rules": [
                {"kind": r.kind, "every": r.every, "phase": r.phase}
                for r in self.rules
            ],
        }


# -- worker-side fault actuation -----------------------------------------------


def perform_pre_fault(kind: str | None, arg: float) -> None:
    """Act out a pre-execution fault inside the worker.

    ``crash`` kills the worker process outright when it really is a child
    process (breaking the pool, as a segfaulting worker would) and raises
    :class:`InjectedCrash` when the worker is a thread of the gateway
    process.  ``hang`` and ``slow`` sleep for the shipped duration —
    distinguished only by whether the gateway's deadline outlasts them.
    """
    worker_event("fault_performed", fault=kind, arg=arg)
    if kind == "crash":
        if multiprocessing.parent_process() is not None:
            os._exit(13)
        raise InjectedCrash("injected worker crash")
    if kind in ("hang", "slow") and arg > 0:
        time.sleep(arg)


def corrupt_raw(raw):
    """The ``corrupt`` fault: return meter readings no honest run produces
    (a negative counter), which :func:`validate_raw` must reject."""
    return replace(raw, counter_value=-raw.counter_value - 1)
