"""The metering gateway façade: many tenants, one attested platform.

One :class:`MeteringGateway` is what the paper's infrastructure provider
runs: a single SGX platform hosting one instrumentation enclave (shared,
with its instrumented-module cache) and **one accounting enclave per
tenant**, so every tenant's receipts carry their own attested signing key
and no tenant can be billed for another's work.  Requests fan out to an
execution backend (worker processes by default) and come back as raw meter
readings; the tenant's AE signs each into a receipt, and the billing ledger
seals receipts into Merkle-rooted epochs.

The module also houses the wall-clock load-test driver behind
``repro loadtest`` — the serving-layer counterpart of the Fig. 9 throughput
experiment, measured for real instead of simulated.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace

from repro.core.accounting_enclave import AccountingEnclave, WorkloadResult
from repro.core.cache import InstrumentationCache
from repro.core.instrumentation_enclave import InstrumentationEnclave
from repro.core.resource_log import ResourceUsageLog, ResourceVector
from repro.core.sandbox import SandboxConfig
from repro.obs.context import TraceContext, env_sample_rate, trace_id_for
from repro.obs.events import (
    EventLog,
    disable_events,
    enable_events,
    events_enabled,
    get_event_log,
)
from repro.obs.events import emit as emit_event
from repro.obs.instruments import (
    GATEWAY_DEADLINE_EXCEEDED,
    GATEWAY_REQUEST_LATENCY,
    GATEWAY_REQUESTS,
    GATEWAY_RESULTS_REJECTED,
    GATEWAY_RETRIES,
    TRACE_BACKHAUL_BYTES,
    TRACE_SPANS_DROPPED,
    TRACES_SAMPLED_TOTAL,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    tracing_enabled,
)
from repro.obs.trace import span as obs_span
from repro.service.backends import ExecutionBackend, WasmBackend
from repro.service.faults import (
    DeadlineExceeded,
    FaultPlan,
    GatewayFailure,
    ResiliencePolicy,
    ResultRejected,
    RetriesExhausted,
    is_transient,
    validate_raw,
)
from repro.service.ledger import (
    BillingLedger,
    EpochSeal,
    EpochVerification,
    Receipt,
    verify_epoch,
)
from repro.service.quota import (
    AdmissionController,
    AdmissionError,
    TenantQuota,
    UnknownTenant,
)
from repro.service.sharding import DEFAULT_SHARDS, shard_index_for
from repro.service.worker import (
    ExecutionTask,
    WorkerPool,
    WorkerResult,
    cores_available,
)
from repro.sgx.attestation import (
    AttestationError,
    AttestationService,
    QuotingEnclave,
    remote_attest,
    verify_service_report,
)
from repro.sgx.enclave import SGXPlatform
from repro.tcrypto.hashing import sha256
from repro.wasm.binary import encode_module
from repro.wasm.interpreter import ExecutionLimits
from repro.wasm.memory import PAGE_SIZE
from repro.wasm.module import Module


@dataclass
class _Tenant:
    tenant_id: str
    ae: AccountingEnclave
    module_bytes: bytes
    module_hash: bytes
    counter_index: int
    memory_required_bytes: int
    shard: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


@dataclass
class GatewayResponse:
    """What a tenant gets back for one request."""

    tenant_id: str
    request_id: int
    result: WorkloadResult
    receipt: Receipt
    latency_s: float
    exec_wall_s: float


@dataclass
class _RequestState:
    """One admitted request's lifecycle, owned by its serving coroutine.

    ``finalized`` is the exactly-once gate: whichever of {worker result,
    deadline, terminal failure} claims it first settles the admission slot,
    ends the span and resolves the future — and only the claimant may sign
    a receipt, so a result arriving after its deadline is dropped unbilled.
    The whole lifecycle runs on the front-end event loop, so the claim is
    a belt-and-braces invariant rather than a race arbiter.
    """

    request_id: int
    tenant: "_Tenant"
    label: str
    response: "Future[GatewayResponse]"
    span: object
    submitted: float
    #: absolute wall-clock deadline (``perf_counter`` domain), or None
    deadline: float | None = None
    lock: threading.Lock = field(default_factory=threading.Lock)
    finalized: bool = False
    #: preemption bookkeeping: checkpoint receipts signed so far, and the
    #: (counter, io_in, io_out) totals they billed — the final receipt
    #: bills only the delta past this baseline (both mutated under the
    #: tenant lock, alongside the checkpoint signing they describe)
    checkpoints: int = 0
    billed: tuple = (0, 0, 0)
    #: distributed-trace context for this request (``None`` when neither
    #: tracing nor events are on); re-minted to the next hop on every
    #: checkpoint re-dispatch and retry, always on the single serving
    #: coroutine for the request, so no extra locking is needed
    trace: "TraceContext | None" = None

    def claim(self) -> bool:
        with self.lock:
            if self.finalized:
                return False
            self.finalized = True
            return True

    def remaining(self) -> float | None:
        if self.deadline is None:
            return None
        return self.deadline - time.perf_counter()


# gateway ids are minted once per gateway construction — cold path, unlike
# request ids, which are minted per shard on the submit hot path
_GATEWAY_SEQ = 0
_GATEWAY_SEQ_LOCK = threading.Lock()


def _next_gateway_id() -> str:
    global _GATEWAY_SEQ
    with _GATEWAY_SEQ_LOCK:
        _GATEWAY_SEQ += 1
        return f"gw-{_GATEWAY_SEQ}"


class _AsyncFrontend:
    """The gateway's event loop, run on one daemon thread.

    Admission stays synchronous in the caller's thread; everything after —
    dispatch, deadline watch, retry backoff, checkpoint re-dispatch,
    accounting — is one coroutine per request on this loop.  Replaces the
    two-timers-per-request scheme (a ``threading.Timer`` watchdog plus
    backoff timers), whose thread churn was part of the multi-worker cliff.
    """

    def __init__(self, name: str):
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        # coroutines enqueued but not yet scheduled on the loop: waking the
        # loop costs a self-pipe write per call, so bursts of submits share
        # one wake-up (the scheduled drain empties the whole queue)
        self._pending: list = []
        self._pending_lock = threading.Lock()
        self._drain_scheduled = False
        self._thread.start()
        self._started.wait()
        self.closed = False

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        self._loop.run_forever()

    def spawn(self, coro) -> None:
        """Schedule one request-serving coroutine from any thread."""
        self._enqueue(coro)

    def post(self, fn) -> None:
        """Run a plain callable on the loop, sharing the batched wake-up."""
        self._enqueue(fn)

    def bridge(self, inner: Future) -> "asyncio.Future":
        """An asyncio future (on this loop) resolved when ``inner`` completes.

        Replaces :func:`asyncio.wrap_future` on the hot path: the pool's
        done-callback goes through the batched wake queue instead of
        paying one self-pipe write per completion.  The bridged future
        carries no result or exception — callers classify the outcome via
        the pool future itself — so an abandoned (post-deadline) waiter
        never triggers "exception was never retrieved".  Must be called
        from the loop thread.
        """
        fut = self._loop.create_future()

        def _resolve() -> None:
            if not fut.done():
                fut.set_result(None)

        inner.add_done_callback(lambda _f: self.post(_resolve))
        return fut

    def _enqueue(self, item) -> None:
        if self.closed:  # pragma: no cover - late completion after shutdown
            return
        with self._pending_lock:
            self._pending.append(item)
            wake = not self._drain_scheduled
            if wake:
                self._drain_scheduled = True
        if wake:
            try:
                self._loop.call_soon_threadsafe(self._drain)
            except RuntimeError:  # pragma: no cover - loop closed mid-enqueue
                pass

    def _drain(self) -> None:
        while True:
            with self._pending_lock:
                pending, self._pending = self._pending, []
                if not pending:
                    self._drain_scheduled = False
                    return
            for item in pending:
                if callable(item):  # coroutine objects are not callable
                    item()
                else:
                    self._loop.create_task(item)

    def shutdown(self) -> None:
        if self.closed:
            return
        self.closed = True
        with self._pending_lock:
            pending, self._pending = self._pending, []
        for item in pending:  # pragma: no cover - shutdown race
            if not callable(item):
                item.close()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        if not self._thread.is_alive():
            self._loop.close()


class MeteringGateway:
    """A live multi-tenant metering service over the two-way sandbox."""

    def __init__(
        self,
        workers: int = 1,
        pool: str = "process",
        config: SandboxConfig | None = None,
        backend: ExecutionBackend | None = None,
        cache_entries: int | None = 256,
        resilience: ResiliencePolicy | None = None,
        fault_plan: FaultPlan | None = None,
        preempt_after: int | None = None,
        warm_pool: bool = False,
        trace_sample: float | None = None,
        seal_window: int | None = None,
        shards: int = DEFAULT_SHARDS,
        adaptive: bool = True,
    ):
        if seal_window is not None and seal_window < 1:
            raise ValueError("seal_window must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.config = config or SandboxConfig()
        #: Batched receipt sealing: with ``seal_window=N`` each tenant's AE
        #: signs one Merkle root per N receipts (flushed at epoch seals)
        #: instead of one RSA op per request; ``None`` keeps the paper's
        #: per-receipt signing byte-identical to previous behaviour.
        self.seal_window = seal_window
        #: Tenant-hash shard count for admission state, the ledger, and
        #: request-id minting (see :mod:`repro.service.sharding`).
        self.shards = shards
        #: Head-sampling rate for the worker telemetry backhaul, in [0, 1].
        #: Defaults to ``REPRO_TRACE_SAMPLE`` (1.0 when unset).  Sampling
        #: gates only the backhaul: trace ids are minted (and stamped onto
        #: receipts/events) for every request once tracing or events are on.
        self.trace_sample = (
            env_sample_rate()
            if trace_sample is None
            else min(1.0, max(0.0, trace_sample))
        )
        #: Budget-boundary preemption: when set, every dispatched slice
        #: suspends after this many further executed instructions; the
        #: gateway signs a checkpoint receipt for the consumed delta and
        #: re-dispatches the snapshot (possibly onto another worker).
        self.preempt_after = preempt_after
        #: Serve requests from per-worker warm pools (instantiate once,
        #: reset a pooled instance per request) instead of instantiating
        #: per request.
        self.warm_pool = warm_pool
        #: Process-unique telemetry identity: every event this gateway (and
        #: its ledger) emits is stamped ``gateway=<id>``, so a shared event
        #: log can be sliced per gateway — e.g. one drift audit per sweep
        #: point of a multi-gateway load test.
        self.gateway_id = _next_gateway_id()
        #: Failure-handling policy.  The default retries transient worker
        #: crashes a couple of times and enforces no deadline — fault-free
        #: behaviour (and its signed vectors) is byte-identical to a gateway
        #: with no policy at all.
        self.resilience = resilience or ResiliencePolicy()
        #: Chaos-testing hook: when set, outgoing tasks are stamped with the
        #: plan's fault for their request id (``repro loadtest --faults``).
        self.fault_plan = fault_plan
        self._resilience_lock = threading.Lock()
        self._retries = 0
        self._deadline_exceeded = 0
        self._results_rejected = 0
        self._preemptions = 0
        self._faults_injected: dict[str, int] = {}
        self.platform = SGXPlatform(platform_id="gateway-0")
        self.attestation_service = AttestationService()
        weight_table = self.config.weight_table()
        self.ie = InstrumentationEnclave(weight_table=weight_table, level=self.config.level)
        self.platform.launch(self.ie)
        self.qe = QuotingEnclave()
        self.platform.launch(self.qe)
        self.attestation_service.provision(self.qe)
        self.cache = InstrumentationCache(self.ie, max_entries=cache_entries)
        #: Adaptive worker sizing: a process pool is shrunk to the cores
        #: actually available — oversubscription is the other half of the
        #: multi-worker cliff (4 CPU-bound workers on 1 core run slower
        #: than 1).  The requested count stays visible in :meth:`stats`.
        self.requested_workers = workers
        self.backend: ExecutionBackend = backend or WasmBackend(
            WorkerPool(workers=workers, kind=pool, adaptive=adaptive)
        )
        inner_pool = getattr(self.backend, "pool", None)
        self.effective_workers = getattr(inner_pool, "workers", workers)
        self.admission = AdmissionController(shards=shards)
        self.ledger = BillingLedger(owner=self.gateway_id, shards=shards)
        self._tenants: dict[str, _Tenant] = {}
        # per-shard request-id minting: shard s hands out s+1, s+1+shards,
        # s+1+2*shards, … — globally unique ints with no cross-shard lock
        self._id_counters = [0] * shards
        self._id_locks = [threading.Lock() for _ in range(shards)]
        self._frontend = _AsyncFrontend(name=f"{self.gateway_id}-frontend")

    # -- tenant lifecycle --------------------------------------------------------

    def register_tenant(
        self,
        tenant_id: str,
        module: Module | None = None,
        minic: str | None = None,
        wat: str | None = None,
        quota: TenantQuota | None = None,
    ) -> None:
        """Admit a tenant: instrument their module (cached), launch and
        attest their accounting enclave, and open their ledger chain."""
        if tenant_id in self._tenants:
            raise ValueError(f"tenant {tenant_id!r} already registered")
        if module is None:
            if minic is not None:
                from repro.minic import compile_source

                module = compile_source(minic)
            elif wat is not None:
                from repro.wasm.wat_parser import parse_wat

                module = parse_wat(wat)
            else:
                raise ValueError("register_tenant needs a module, minic= or wat=")

        with obs_span("gateway.register_tenant", tenant=tenant_id):
            self._register_tenant(tenant_id, module, quota)

    def _register_tenant(
        self, tenant_id: str, module: Module, quota: TenantQuota | None
    ) -> None:
        instrumented, evidence, _counter_export = self.cache.instrument(module)
        ae = AccountingEnclave(
            ie_public_key=self.ie.evidence_public_key,
            ie_measurement=self.ie.mrenclave,
            weight_table=self.config.weight_table(),
            memory_policy=self.config.memory_policy,
            key_seed=self._tenant_key_seed(tenant_id),
            limits=ExecutionLimits(max_instructions=self.config.max_instructions),
            engine=self.config.engine,
            batch_window=self.seal_window,
        )
        self.platform.launch(ae)
        self._attest(ae, tenant_id)
        ae.load_workload(instrumented, evidence)

        module_bytes = encode_module(instrumented)
        if instrumented.memories:
            limits = instrumented.memories[0].limits
            pages = limits.maximum if limits.maximum is not None else limits.minimum
        else:
            pages = 0
        tenant = _Tenant(
            tenant_id=tenant_id,
            ae=ae,
            module_bytes=module_bytes,
            module_hash=sha256(module_bytes),
            counter_index=evidence.counter_global_index,
            memory_required_bytes=pages * PAGE_SIZE,
            shard=shard_index_for(tenant_id, self.shards),
        )
        self._tenants[tenant_id] = tenant
        self.admission.register(tenant_id, quota or TenantQuota())
        self.ledger.register_tenant(tenant_id, ae.log_public_key)

    @staticmethod
    def _tenant_key_seed(tenant_id: str) -> int:
        # deterministic but tenant-unique AE signing keys
        return int.from_bytes(sha256(b"tenant-ae:" + tenant_id.encode())[:6], "big") | 1

    def _attest(self, ae: AccountingEnclave, tenant_id: str) -> None:
        nonce = sha256(b"gateway-attest:" + tenant_id.encode())[:16]
        user_data = ae.report_data_binding()
        verdict = remote_attest(ae, self.qe, self.attestation_service, nonce, user_data)
        ok = (
            verdict.ok
            and verify_service_report(self.attestation_service.public_key, verdict)
            and verdict.quote.mrenclave == ae.mrenclave
            and sha256(sha256(nonce + user_data)) == sha256(verdict.quote.report_data)
        )
        if not ok:
            raise AttestationError(
                f"accounting enclave for tenant {tenant_id!r} failed attestation"
            )

    # -- request path ------------------------------------------------------------

    def _mint_request_id(self, shard: int) -> int:
        with self._id_locks[shard]:
            n = self._id_counters[shard]
            self._id_counters[shard] = n + 1
        return n * self.shards + shard + 1

    @property
    def _requests(self) -> int:
        """Requests admitted so far (sum over the shard counters)."""
        return sum(self._id_counters)

    def submit(
        self,
        tenant_id: str,
        export: str,
        *args,
        input_data: bytes = b"",
        label: str = "",
    ) -> "Future[GatewayResponse]":
        """Admit and dispatch one request; resolves to a signed response.

        Raises a typed :class:`~repro.service.quota.AdmissionError`
        *synchronously* when the tenant is over quota — rejected requests
        never reach the pool.  Everything after admission is one coroutine
        on the gateway's event loop: post-admission failures resolve the
        future to a typed :class:`~repro.service.faults.GatewayFailure`,
        transient worker crashes are retried (same ``request_id``,
        exponential backoff with deterministic jitter) within
        :attr:`resilience`'s budget, a wall-clock deadline is enforced by
        the serving coroutine (a late worker result is dropped unbilled),
        and meter readings are sanity-validated before the tenant's
        accounting enclave signs them.  Whatever happens, the request is
        billed at most once and its admission slot is settled exactly once.
        """
        if self._frontend.closed:
            raise RuntimeError("gateway is shut down")
        req_span = obs_span(
            "gateway.request", detached=True, tenant=tenant_id, export=export
        )
        try:
            tenant = self._tenants.get(tenant_id)
            if tenant is None:
                raise UnknownTenant(f"tenant {tenant_id!r} is not registered")
            with obs_span("gateway.admit", parent=req_span, tenant=tenant_id):
                self.admission.admit(tenant_id, tenant.memory_required_bytes)
        except AdmissionError as exc:
            GATEWAY_REQUESTS.inc(tenant=tenant_id, outcome=f"rejected:{exc.code}")
            emit_event(
                "reject", gateway=self.gateway_id, tenant=tenant_id, code=exc.code
            )
            req_span.set_attribute("outcome", f"rejected:{exc.code}")
            req_span.end()
            raise
        except BaseException:
            req_span.end()
            raise
        request_id = self._mint_request_id(tenant.shard)
        req_span.set_attribute("request_id", request_id)
        # trace identity: minted once per admitted request whenever anyone
        # is watching (tracer or event log); obs-off runs skip it entirely
        ctx: TraceContext | None = None
        if tracing_enabled() or events_enabled():
            ctx = TraceContext.mint(
                self.gateway_id,
                request_id,
                sample_rate=self.trace_sample,
                parent_span_id=getattr(req_span, "span_id", 0),
            )
            TRACES_SAMPLED_TOTAL.inc(
                decision="sampled" if ctx.sampled else "unsampled"
            )
            req_span.set_attribute("trace_id", ctx.trace_id)
        emit_event(
            "admit",
            gateway=self.gateway_id,
            tenant=tenant_id,
            request_id=request_id,
            trace_id=ctx.trace_id if ctx is not None else None,
        )
        task = ExecutionTask(
            module_bytes=tenant.module_bytes,
            module_hash=tenant.module_hash,
            counter_global_index=tenant.counter_index,
            export=export,
            args=args,
            input_data=input_data,
            engine=self.config.engine,
            max_instructions=self.config.max_instructions,
            snapshot_at=self.preempt_after,
            warm=self.warm_pool,
            trace=ctx.to_wire() if ctx is not None and ctx.sampled else None,
        )
        if self.fault_plan is not None:
            fault = self.fault_plan.fault_for(request_id)
            if fault is not None:
                task = replace(
                    task, fault=fault, fault_arg=self.fault_plan.fault_arg(fault)
                )
                req_span.set_attribute("injected_fault", fault)
                with self._resilience_lock:
                    self._faults_injected[fault] = (
                        self._faults_injected.get(fault, 0) + 1
                    )
                emit_event(
                    "fault_injected",
                    gateway=self.gateway_id,
                    tenant=tenant_id,
                    request_id=request_id,
                    fault=fault,
                    trace_id=ctx.trace_id if ctx is not None else None,
                )
        response: Future[GatewayResponse] = Future()
        submitted = time.perf_counter()
        state = _RequestState(
            request_id=request_id,
            tenant=tenant,
            label=label or export,
            response=response,
            span=req_span,
            submitted=submitted,
            deadline=(
                submitted + self.resilience.deadline_s
                if self.resilience.deadline_s is not None
                else None
            ),
            trace=ctx,
        )
        self._frontend.spawn(self._serve(state, task))
        return response

    # -- the resilient serving coroutine -----------------------------------------

    async def _serve(self, state: _RequestState, task: ExecutionTask) -> None:
        """One request's whole post-admission lifecycle as a coroutine.

        Dispatch, the deadline watch, retry backoff, checkpoint
        re-dispatch and final accounting all run here, on the front-end
        loop — workers stay processes (or threads), and their results come
        back through the pool future the coroutine awaits.
        """
        attempt = 0
        try:
            while True:
                remaining = state.remaining()
                if remaining is not None and remaining <= 0:
                    self._deadline_exceeded_now(state)
                    return
                try:
                    inner = self.backend.submit(task)
                except BaseException as exc:  # noqa: BLE001 - classified below
                    retry = await self._task_failed(state, task, attempt, exc)
                    if retry is None:
                        return
                    task, attempt = retry
                    continue
                if not await self._await_result(inner, remaining):
                    # the deadline landed first: the late result (or hang)
                    # is abandoned, never accounted, never billed
                    self._deadline_exceeded_now(state)
                    return
                exc = inner.exception()
                if exc is not None:
                    retry = await self._task_failed(state, task, attempt, exc)
                    if retry is None:
                        return
                    task, attempt = retry
                    continue
                worker_result = inner.result()
                if worker_result.telemetry:
                    self._merge_telemetry(state, worker_result.telemetry)
                if worker_result.snapshot is not None:
                    resumed = self._checkpoint(state, task, worker_result)
                    if resumed is None:
                        return
                    task, attempt = resumed
                    continue
                self._account(state, worker_result)
                return
        except BaseException as exc:  # noqa: BLE001 - never strand the future
            self._finalize_failure(state, exc)

    async def _await_result(self, inner: Future, remaining: float | None) -> bool:
        """Await the pool future; False when the deadline expires first.

        Uses :func:`asyncio.wait` rather than ``wait_for`` so a timeout
        never cancels the pool future — the worker may still be running,
        and pool bookkeeping (slot release, backlog drain) must proceed;
        the result is simply dropped, exactly as the old watchdog did.
        """
        if inner.done():  # fast workers beat the coroutine here
            return True
        waiter = self._frontend.bridge(inner)
        if remaining is None:
            # no deadline: a bare await skips asyncio.wait's task setup;
            # the caller classifies failures via inner.exception()
            await waiter
            return True
        done, _pending = await asyncio.wait({waiter}, timeout=remaining)
        return bool(done)

    def _merge_telemetry(self, state: _RequestState, telemetry: dict) -> None:
        """Fold one worker capture into the gateway's tracer/log/registry.

        Spans keep their origin pid and land re-parented under the request
        span (one stitched trace per request, however many workers served
        its hops).  Worker events re-emit through the gateway log — fresh,
        strictly monotonic ``seq``; the worker's own clock and pid ride
        along as fields — so JSONL replay order stays deterministic.
        Metric deltas are applied only when the capture crossed a process
        boundary: a thread-pool worker's direct increments already landed
        in the shared registry, and replaying them would double-count.
        """
        trace_id = telemetry.get("trace_id")
        origin_pid = int(telemetry.get("pid", 0))
        TRACE_BACKHAUL_BYTES.observe(float(len(json.dumps(telemetry, default=str))))
        dropped = int(telemetry.get("spans_dropped", 0)) + int(
            telemetry.get("events_dropped", 0)
        )
        if dropped:
            TRACE_SPANS_DROPPED.inc(dropped)
        tracer = get_tracer()
        if tracer is not None and telemetry.get("spans"):
            parent = state.span if isinstance(state.span, Span) else None
            tracer.ingest(
                telemetry["spans"], parent=parent, pid=origin_pid, trace_id=trace_id
            )
        for record in telemetry.get("events", ()):
            fields = dict(record.get("fields", ()))
            fields.update(
                gateway=self.gateway_id,
                request_id=state.request_id,
                trace_id=trace_id,
                origin_pid=origin_pid,
                worker_ts_s=record.get("ts_s"),
            )
            emit_event(record["kind"], **fields)
        if origin_pid != os.getpid():
            registry = get_registry()
            for delta in telemetry.get("metrics", ()):
                name, kind, value, labels = delta
                metric = registry.get(name)
                if metric is None:
                    continue
                if kind == "histogram":
                    metric.observe(value, **dict(labels))
                else:
                    metric.inc(value, **dict(labels))

    async def _task_failed(
        self,
        state: _RequestState,
        task: ExecutionTask,
        attempt: int,
        exc: BaseException,
    ) -> "tuple[ExecutionTask, int] | None":
        """Classify one failure; returns the retry ``(task, attempt)`` after
        awaiting its backoff, or ``None`` once the request is finalized."""
        if is_transient(exc) and attempt < self.resilience.max_retries:
            tenant_id = state.tenant.tenant_id
            GATEWAY_RETRIES.inc(tenant=tenant_id)
            with self._resilience_lock:
                self._retries += 1
            emit_event(
                "retry",
                gateway=self.gateway_id,
                tenant=tenant_id,
                request_id=state.request_id,
                attempt=attempt + 1,
                trace_id=state.trace.trace_id if state.trace is not None else None,
            )
            state.span.set_attribute("attempts", attempt + 2)
            # retries reuse the request id (exactly-once billing) but never
            # re-inject the fault: the crash already happened
            clean = replace(task, fault=None, fault_arg=0.0)
            if state.trace is not None:
                state.trace = state.trace.next_hop()
                if state.trace.sampled:
                    clean = replace(clean, trace=state.trace.to_wire())
            delay = self.resilience.backoff_s(state.request_id, attempt)
            remaining = state.remaining()
            if remaining is not None and delay >= remaining:
                # the deadline lands before the retry could dispatch
                if remaining > 0:
                    await asyncio.sleep(remaining)
                self._deadline_exceeded_now(state)
                return None
            await asyncio.sleep(delay)
            return clean, attempt + 1
        if is_transient(exc):
            exc = RetriesExhausted(
                f"request {state.request_id} failed after {attempt + 1} attempts; "
                f"last error: {exc}"
            )
        self._finalize_failure(state, exc)
        return None

    def _checkpoint(
        self, state: _RequestState, task: ExecutionTask, worker_result: WorkerResult
    ) -> "tuple[ExecutionTask, int] | None":
        """Bill a preempted slice with a checkpoint receipt.

        The worker suspended at the slice budget and shipped a snapshot back.
        The tenant's AE signs a checkpoint receipt for the *delta* consumed
        since the last checkpoint (so the sum of a request's receipts equals
        the uninterrupted vector componentwise) under a derived request id
        ``<id>#cpN`` — the ledger's exactly-once layer still dedups each
        checkpoint individually, and the final receipt keeps the bare id.
        Returns the resumed task for the serving coroutine to re-dispatch
        (free to land on any worker), or ``None`` if the request was
        finalized as a failure here.
        """
        tenant = state.tenant
        problems = (
            validate_raw(worker_result.raw, self.config.max_instructions)
            if self.resilience.validate_results
            else []
        )
        if problems:
            GATEWAY_RESULTS_REJECTED.inc(tenant=tenant.tenant_id)
            with self._resilience_lock:
                self._results_rejected += 1
            self._finalize_failure(
                state, ResultRejected("implausible meter readings: " + "; ".join(problems))
            )
            return None
        trace_id = state.trace.trace_id if state.trace is not None else None
        try:
            with obs_span(
                "gateway.checkpoint",
                parent=state.span,
                tenant=tenant.tenant_id,
                checkpoint=state.checkpoints + 1,
                trace_id=trace_id,
            ):
                with tenant.lock:
                    tenant.ae.account_span(
                        worker_result.raw,
                        label=state.label,
                        baseline=state.billed,
                        final=False,
                        trace_id=trace_id,
                    )
                    self.ledger.record(
                        tenant.tenant_id,
                        tenant.ae.log.entries[-1],
                        request_id=f"{state.request_id}#cp{state.checkpoints + 1}",
                        trace_id=trace_id,
                    )
                    for batch in tenant.ae.log.drain_batches():
                        self.ledger.record_batch(tenant.tenant_id, batch)
                    state.checkpoints += 1
                    state.billed = (
                        worker_result.raw.counter_value,
                        worker_result.raw.io_bytes_in,
                        worker_result.raw.io_bytes_out,
                    )
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            self._finalize_failure(state, exc)
            return None
        with self._resilience_lock:
            self._preemptions += 1
        emit_event(
            "checkpoint",
            gateway=self.gateway_id,
            tenant=tenant.tenant_id,
            request_id=state.request_id,
            checkpoint=state.checkpoints,
            snapshot_bytes=len(worker_result.snapshot),
            trace_id=trace_id,
        )
        state.span.set_attribute("checkpoints", state.checkpoints)
        # the resumed slice carries the snapshot; never re-inject the fault
        resumed = replace(
            task, snapshot=worker_result.snapshot, fault=None, fault_arg=0.0
        )
        if state.trace is not None:
            state.trace = state.trace.next_hop()
            if state.trace.sampled:
                resumed = replace(resumed, trace=state.trace.to_wire())
        return resumed, 0

    def _account(self, state: _RequestState, worker_result: WorkerResult) -> None:
        tenant = state.tenant
        problems = (
            validate_raw(worker_result.raw, self.config.max_instructions)
            if self.resilience.validate_results
            else []
        )
        if problems:
            # a lying worker, not a failing one: reject, never sign, no retry
            GATEWAY_RESULTS_REJECTED.inc(tenant=tenant.tenant_id)
            with self._resilience_lock:
                self._results_rejected += 1
            self._finalize_failure(
                state, ResultRejected("implausible meter readings: " + "; ".join(problems))
            )
            return
        if not state.claim():
            return  # already finalized (belt and braces): drop, unbilled
        trace_id = state.trace.trace_id if state.trace is not None else None
        try:
            with obs_span(
                "gateway.account", parent=state.span, tenant=tenant.tenant_id
            ):
                # narrow critical section: only the AE signing and the
                # chain append are under the tenant lock — settling the
                # admission slot, metrics, events and resolving the future
                # all happen outside it
                with tenant.lock:
                    if state.checkpoints:
                        # preempted request: the final receipt bills only the
                        # delta past the checkpoints already sealed
                        result = tenant.ae.account_span(
                            worker_result.raw,
                            label=state.label,
                            baseline=state.billed,
                            final=True,
                            trace_id=trace_id,
                        )
                    else:
                        result = tenant.ae.account(
                            worker_result.raw, label=state.label, trace_id=trace_id
                        )
                    receipt = self.ledger.record(
                        tenant.tenant_id,
                        tenant.ae.log.entries[-1],
                        request_id=state.request_id,
                        trace_id=trace_id,
                    )
                    for batch in tenant.ae.log.drain_batches():
                        self.ledger.record_batch(tenant.tenant_id, batch)
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            self._fail_finalized(state, exc)
            return
        # settle the slot for the request's full consumption: the final
        # receipt's delta plus everything the checkpoint receipts billed
        self.admission.settle(
            tenant.tenant_id,
            result.vector.weighted_instructions + state.billed[0],
        )
        latency_s = time.perf_counter() - state.submitted
        GATEWAY_REQUESTS.inc(tenant=tenant.tenant_id, outcome="ok")
        # the exemplar links this latency bucket to the request's trace
        GATEWAY_REQUEST_LATENCY.observe(
            latency_s, exemplar=trace_id, tenant=tenant.tenant_id
        )
        emit_event(
            "settled",
            gateway=self.gateway_id,
            tenant=tenant.tenant_id,
            request_id=state.request_id,
            outcome="ok",
            latency_s=latency_s,
            trace_id=trace_id,
        )
        state.span.set_attribute("outcome", "ok")
        state.span.end()
        state.response.set_result(
            GatewayResponse(
                tenant_id=tenant.tenant_id,
                request_id=state.request_id,
                result=result,
                receipt=receipt,
                latency_s=latency_s,
                exec_wall_s=worker_result.exec_wall_s,
            )
        )

    def _deadline_exceeded_now(self, state: _RequestState) -> None:
        if not state.claim():
            return
        tenant_id = state.tenant.tenant_id
        GATEWAY_DEADLINE_EXCEEDED.inc(tenant=tenant_id)
        with self._resilience_lock:
            self._deadline_exceeded += 1
        self._fail_finalized(
            state,
            DeadlineExceeded(
                f"request {state.request_id} exceeded its "
                f"{self.resilience.deadline_s}s deadline"
            ),
        )

    def _finalize_failure(self, state: _RequestState, exc: BaseException) -> None:
        if not state.claim():
            return
        self._fail_finalized(state, exc)

    def _fail_finalized(self, state: _RequestState, exc: BaseException) -> None:
        """Failure bookkeeping once the state is claimed: settle the slot,
        end the span, resolve the future — each exactly once."""
        self.admission.settle(state.tenant.tenant_id, 0)
        outcome = exc.code if isinstance(exc, GatewayFailure) else "error"
        GATEWAY_REQUESTS.inc(tenant=state.tenant.tenant_id, outcome=outcome)
        emit_event(
            "settled",
            gateway=self.gateway_id,
            tenant=state.tenant.tenant_id,
            request_id=state.request_id,
            outcome=outcome,
            latency_s=time.perf_counter() - state.submitted,
            trace_id=state.trace.trace_id if state.trace is not None else None,
        )
        state.span.set_attribute("outcome", outcome)
        state.span.end()
        state.response.set_exception(exc)

    def resilience_stats(self) -> dict:
        """Counters for the failure-containment layer (chaos-run report)."""
        with self._resilience_lock:
            stats = {
                "retries": self._retries,
                "deadline_exceeded": self._deadline_exceeded,
                "results_rejected": self._results_rejected,
                "preemptions": self._preemptions,
                "faults_injected": dict(self._faults_injected),
            }
        pool = getattr(self.backend, "pool", None)
        stats["pool_rebuilds"] = getattr(pool, "rebuilds", 0)
        stats["backend_kind"] = self.backend.kind
        return stats

    def execute(
        self,
        tenant_id: str,
        export: str,
        *args,
        input_data: bytes = b"",
        label: str = "",
    ) -> GatewayResponse:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(
            tenant_id, export, *args, input_data=input_data, label=label
        ).result()

    # -- billing -----------------------------------------------------------------

    def seal_epoch(self) -> EpochSeal:
        """Seal all outstanding receipts; instruction budgets reset.

        In batched-sealing mode every tenant's pending receipt window is
        flushed first (one short batch each), so AE batches never straddle
        an epoch boundary and the sealed epoch verifies offline from the
        receipts plus the recorded batches alone.
        """
        with obs_span("gateway.seal_epoch"):
            if self.seal_window is not None:
                for tenant in self._tenants.values():
                    with tenant.lock:
                        tenant.ae.log.flush()
                        for batch in tenant.ae.log.drain_batches():
                            self.ledger.record_batch(tenant.tenant_id, batch)
            seal = self.ledger.seal_epoch()
            self.admission.reset_epoch()
            return seal

    def verify_epoch(self, seal: EpochSeal | None = None) -> EpochVerification:
        """Offline audit of an epoch (defaults to the most recent seal)."""
        if seal is None:
            if not self.ledger.seals:
                raise ValueError("no epoch sealed yet")
            seal = self.ledger.seals[-1]
        receipts = {
            span.tenant_id: self.ledger.epoch_receipts(seal, span.tenant_id)
            for span in seal.spans
        }
        keys = {span.tenant_id: self.ledger.ae_key(span.tenant_id) for span in seal.spans}
        batches = {
            span.tenant_id: self.ledger.batches(span.tenant_id) for span in seal.spans
        }
        previous = self.ledger.seals[seal.epoch - 1] if seal.epoch > 0 else None
        verdict = verify_epoch(
            seal,
            receipts,
            keys,
            self.ledger.public_key,
            previous_seal=previous,
            batches_by_tenant=batches,
        )
        emit_event(
            "epoch_audit",
            gateway=self.gateway_id,
            epoch=verdict.epoch,
            outcome="ok" if verdict.ok else "failed",
            receipts_checked=verdict.receipts_checked,
            errors=len(verdict.errors),
        )
        return verdict

    def totals(self, tenant_id: str | None = None) -> ResourceVector:
        """Aggregate usage — one tenant's, or across the whole gateway."""
        if tenant_id is not None:
            return self.ledger.totals(tenant_id)
        log = ResourceUsageLog(signing_key=None)
        log.entries = [
            receipt.entry
            for tid in sorted(self._tenants)
            for receipt in self.ledger.receipts(tid)
        ]
        return log.totals()

    # -- operations --------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "backend": self.backend.kind,
            "tenants": len(self._tenants),
            "requests": self._requests,
            "epochs_sealed": len(self.ledger.seals),
            "shards": self.shards,
            "seal_window": self.seal_window,
            "workers": {
                "requested": self.requested_workers,
                "effective": self.effective_workers,
                "cores_available": cores_available(),
            },
            "cache": self.cache.stats(),
            "resilience": self.resilience_stats(),
            "admission": {
                tid: self.admission.stats(tid) for tid in sorted(self._tenants)
            },
        }

    def shutdown(self) -> None:
        self.backend.shutdown()
        self._frontend.shutdown()

    def __enter__(self) -> "MeteringGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# -- synthetic tenant mixes and the load-test driver ---------------------------


def polybench_tenant_mix(
    kernels: tuple[str, ...] = (), tenants: int | None = None
) -> list[tuple[str, Module, tuple[str, tuple]]]:
    """A mixed-tenant workload: one tenant per PolyBench kernel.

    Returns ``(tenant_id, module, (export, args))`` triples.  The default
    mix spans linear algebra, solvers and a stencil — small enough to load
    quickly, varied enough that request service times differ by ~10x.

    ``tenants`` fans the mix out to that many distinct tenants, cycling the
    kernels (``tenant-atax-000``, ``tenant-bicg-001``, …) — the same
    workload shapes under many more tenant identities, for exercising
    admission sharding and telemetry cardinality through the *real*
    gateway.  Each registered tenant mints an attested AE (an RSA keypair,
    ~1 s of pure-python keygen apiece), so real-gateway fan-out is for
    tens-to-hundreds of tenants; the million-tenant scale soak
    (:mod:`repro.obs.soak`) models the backend instead.
    """
    from repro.workloads.polybench import POLYBENCH_KERNELS

    names = kernels or ("atax", "bicg", "mvt", "trisolv", "gesummv", "jacobi-1d")
    mix = []
    if tenants is None:
        for name in names:
            spec = POLYBENCH_KERNELS[name]
            mix.append((f"tenant-{name}", spec.compile().clone(), spec.run))
        return mix
    if tenants < 1:
        raise ValueError("tenants must be >= 1")
    # compile each kernel once; clone per tenant so instances stay isolated
    compiled = {name: POLYBENCH_KERNELS[name].compile() for name in names}
    for i in range(tenants):
        name = names[i % len(names)]
        mix.append(
            (
                f"tenant-{name}-{i:03d}",
                compiled[name].clone(),
                POLYBENCH_KERNELS[name].run,
            )
        )
    return mix


#: The quota-probe tenant every load test carries: its instruction budget is
#: below one request's cost, so its second request must come back as a typed
#: ``instruction-budget-exhausted`` rejection — exercising admission control
#: under load on every run.
_PROBE_KERNEL = "trisolv"
_PROBE_BUDGET = 1000


def _request_schedule(
    mix: list[tuple[str, Module, tuple[str, tuple]]], requests: int
) -> list[tuple[str, str, tuple]]:
    """Round-robin ``(tenant_id, export, args)`` list for one sweep point."""
    schedule = []
    for i in range(requests):
        tenant_id, _module, (export, args) = mix[i % len(mix)]
        schedule.append((tenant_id, export, args))
    return schedule


def serial_baseline_totals(
    mix: list[tuple[str, Module, tuple[str, tuple]]],
    schedule: list[tuple[str, str, tuple]],
    engine: str | None = None,
) -> ResourceVector:
    """Run the exact same requests serially through a single two-way sandbox.

    The ground truth for the gateway's aggregate accounting: whatever the
    worker pool does, totals must come out byte-identical to this.
    """
    from repro.core.sandbox import TwoWaySandbox

    sandbox = TwoWaySandbox.deploy(SandboxConfig(engine=engine))
    modules = {tenant_id: module for tenant_id, module, _run in mix}
    for tenant_id, export, args in schedule:
        workload = sandbox.submit_module(modules[tenant_id].clone())
        workload.invoke(export, *args)
    return sandbox.totals()


def run_loadtest(
    worker_counts: tuple[int, ...] = (1, 2, 4),
    requests: int = 60,
    pool: str = "process",
    engine: str | None = None,
    kernels: tuple[str, ...] = (),
    backend: str = "wasm",
    time_scale: float = 1.0,
    verify_serial: bool = True,
    quota_probe: bool = True,
    faults: "str | FaultPlan | None" = None,
    fault_seed: int = 0,
    deadline_s: float | None = None,
    hang_s: float = 3.0,
    max_retries: int | None = None,
    events_out: str | None = None,
    slo_rules: str | None = None,
    validate_results: bool = True,
    pipeline: bool | None = None,
    preempt_after: int | None = None,
    warm_pool: bool = False,
    trace_out: str | None = None,
    seal_window: int | None = 16,
    adaptive: bool = True,
    tenants: int | None = None,
) -> dict:
    """Drive the gateway at each worker count and report wall-clock numbers.

    Each sweep point serves ``requests`` requests round-robin across the
    PolyBench tenant mix, seals the epoch, audits it offline, and records
    throughput plus latency percentiles.  With ``quota_probe`` a tenant with
    a too-small instruction budget rides along and must be rejected with a
    typed error; with ``verify_serial`` the same requests are re-run
    serially through one :class:`TwoWaySandbox` and the aggregate resource
    totals must match byte-for-byte.  The result feeds
    ``BENCH_service.json``.

    ``backend="wasm"`` executes every request for real on the worker pool —
    throughput then scales with *physical* cores.  ``backend="modeled"``
    paces requests with the Fig. 9 FaaS service-time model instead
    (:class:`~repro.service.backends.SimulatedFaaSBackend`), which measures
    the gateway/ledger serving overhead itself and scales with workers even
    on a single core (modeled service time is waiting, not CPU).

    The telemetry pipeline rides along when asked: ``events_out`` records
    the structured event stream to JSONL, ``slo_rules`` evaluates a
    declarative rule file over it (via the same replay path ``repro alerts``
    uses offline), and either one also runs the per-tenant billing-drift
    audit after each sweep point's epoch seals.  ``pipeline`` forces the
    event log on (or off) independently of the two outputs — the overhead
    benchmark uses it to measure the pipeline's cost without touching disk.
    The gate verdict lands in ``result["telemetry"]["ok"]``:
    ``repro loadtest --slo`` exits non-zero when it is false.

    ``validate_results=False`` disables worker meter-reading validation —
    only useful to demonstrate that the drift auditor catches what
    validation normally prevents (a ``corrupt`` fault's implausible reading
    signed into a receipt).

    ``faults`` turns the run into a *chaos loadtest*: a
    :class:`~repro.service.faults.FaultPlan` (or spec string like
    ``"crash:7,hang:13"``) injects deterministic worker failures while the
    resilience layer (deadline watchdog, bounded retries, pool rebuilds)
    keeps the gateway serving.  Chaos runs drop the serial-equivalence and
    quota-probe checks (failed requests have no serial counterpart) and
    instead report the failure-containment invariants: the epoch still
    audits clean, and billing is exactly-once — receipt count == distinct
    billed request ids == successful responses.

    ``trace_out`` turns on distributed tracing for the run and writes the
    stitched Chrome/Perfetto trace there: every request's gateway-side
    spans, backhauled worker spans (origin pids intact) and AE signing
    spans render as one connected timeline, and each sweep point gains a
    ``trace`` stitch report — per completed request, the span tree must be
    connected and every one of its receipts must carry the recomputable
    ``trace_id``.  The aggregate verdict lands in ``result["trace_ok"]``.

    ``seal_window`` (default 16) runs the gateway with batched receipt
    sealing: per tenant, one AE signature over a Merkle root of N receipt
    bodies per flush window instead of one RSA op per request.  Pass
    ``None`` for the paper's per-receipt signing.  ``adaptive`` (default
    on) shrinks process pools to the cores actually available — points
    record both requested and effective worker counts, and the
    ``speedup_gate`` entry marks the 4-vs-1 comparison *advisory* when the
    box has fewer cores than the widest sweep point (a 1-core runner
    cannot demonstrate a parallelism cliff, only scheduler thrash).

    ``tenants`` fans the kernel mix out to that many distinct tenant
    identities (see :func:`polybench_tenant_mix`) — useful for driving
    admission sharding and telemetry cardinality through the real gateway
    at tens-to-hundreds of tenants.  Per-tenant AE keygen makes larger
    fan-outs impractical here; the synthetic scale soak
    (``repro soak`` / :mod:`repro.obs.soak`) covers 10^3..10^6 tenants
    with a modeled backend instead.

    ``preempt_after`` turns on budget-boundary preemption: every request is
    suspended after that many executed instructions per slice, checkpoint-
    billed, and re-dispatched from its snapshot.  Aggregate billing must be
    unaffected — the serial-equivalence gate stays on, comparing the *sum*
    of each request's receipts.  ``warm_pool`` serves requests from the
    workers' per-module warm pools instead of instantiating per request.
    Both require the real ``wasm`` backend (the modeled backend never
    executes, so it can neither suspend nor clone).
    """
    if backend == "modeled" and (preempt_after is not None or warm_pool):
        raise ValueError(
            "preemption and warm pools need backend='wasm': the modeled "
            "backend does not execute requests"
        )
    mix = polybench_tenant_mix(kernels, tenants=tenants)
    schedule = _request_schedule(mix, requests)
    plan: FaultPlan | None = None
    if faults is not None:
        plan = (
            faults
            if isinstance(faults, FaultPlan)
            else FaultPlan.parse(faults, seed=fault_seed, hang_s=hang_s)
        )
        if deadline_s is None:
            deadline_s = 2.0  # must outlast honest requests, not the hangs
        verify_serial = False  # failed requests have no serial counterpart
        quota_probe = False  # a fault on the probe would invalidate its assertion
    policy = ResiliencePolicy(
        deadline_s=deadline_s,
        max_retries=(4 if plan is not None else 2) if max_retries is None else max_retries,
        backoff_base_s=0.05,
        backoff_cap_s=0.5,
        jitter_seed=fault_seed,
        validate_results=validate_results,
    )
    probe_spec = None
    if quota_probe:
        from repro.workloads.polybench import POLYBENCH_KERNELS

        probe_spec = POLYBENCH_KERNELS[_PROBE_KERNEL]

    pipeline_on = (
        pipeline
        if pipeline is not None
        else (events_out is not None or slo_rules is not None)
    )
    previous_log = get_event_log()
    event_log: EventLog | None = None
    if pipeline_on:
        event_log = enable_events(EventLog())
    previous_tracer = get_tracer()
    tracer: Tracer | None = None
    if trace_out is not None:
        tracer = enable_tracing(Tracer())

    sweep = []
    try:
        sweep.extend(
            _run_sweep_point(
                workers=workers,
                pool=pool,
                engine=engine,
                backend=backend,
                time_scale=time_scale,
                mix=mix,
                schedule=schedule,
                policy=policy,
                plan=plan,
                probe_spec=probe_spec,
                verify_serial=verify_serial,
                event_log=event_log,
                preempt_after=preempt_after,
                warm_pool=warm_pool,
                seal_window=seal_window,
                adaptive=adaptive,
            )
            for workers in worker_counts
        )
    finally:
        if pipeline_on:
            if previous_log is not None:
                enable_events(previous_log)
            else:
                disable_events()
        if trace_out is not None:
            if tracer is not None:
                tracer.flush_truncated()
                tracer.write_chrome_trace(trace_out)
            if previous_tracer is not None:
                enable_tracing(previous_tracer)
            else:
                disable_tracing()
    cores = cores_available()
    result = {
        "benchmark": "metering-gateway-loadtest",
        "mix": [tenant_id for tenant_id, _m, _r in mix],
        "requests_per_point": requests,
        "pool": pool,
        "engine": engine or "default",
        "execution_backend": backend,
        "cores_available": cores,
        "seal_window": seal_window,
        "sweep": sweep,
    }
    if preempt_after is not None:
        result["preempt_after"] = preempt_after
    if warm_pool:
        result["warm_pool"] = True
    if trace_out is not None:
        result["trace_out"] = trace_out
        result["trace_ok"] = all(
            point.get("trace", {}).get("ok", True) for point in sweep
        )
    if plan is not None:
        result["fault_plan"] = plan.describe()
        result["deadline_s"] = deadline_s
    if verify_serial:
        serial = serial_baseline_totals(mix, schedule, engine=engine).to_json()
        result["serial_totals"] = serial
        result["serial_totals_match"] = all(
            point.get("gateway_totals") == serial for point in sweep
        )
    by_workers = {point["workers"]: point for point in sweep}
    if 1 in by_workers and 4 in by_workers:
        result["speedup_4_over_1"] = (
            by_workers[4]["throughput_rps"] / by_workers[1]["throughput_rps"]
        )
    # the 4-vs-1 gate is only meaningful where 4 workers can actually run
    # in parallel: on an undersized box the number measures scheduler
    # thrash (or, with adaptive sizing, nothing at all), not a cliff
    max_workers = max(worker_counts) if worker_counts else 1
    result["speedup_gate"] = {
        "cores_available": cores,
        "max_workers": max_workers,
        "advisory": cores < max_workers,
    }
    if event_log is not None:
        telemetry: dict = {"events": event_log.stats(), "events_path": events_out}
        if events_out is not None:
            telemetry["events_meta"] = event_log.write_jsonl(events_out)
        drift_ok = all(point.get("drift", {}).get("ok", True) for point in sweep)
        telemetry["drift_ok"] = drift_ok
        engine = None
        if slo_rules is not None:
            from repro.obs.slo import load_rules
            from repro.obs.slo import replay as replay_slo

            engine, _agg = replay_slo(event_log.events(), load_rules(slo_rules))
            telemetry["slo_rules"] = slo_rules
            telemetry["slo"] = engine.report()
        telemetry["ok"] = drift_ok and (engine is None or not engine.gating_alerts())
        result["telemetry"] = telemetry
    return result


def _run_sweep_point(
    workers: int,
    pool: str,
    engine: str | None,
    backend: str,
    time_scale: float,
    mix: list,
    schedule: list,
    policy: ResiliencePolicy,
    plan: "FaultPlan | None",
    probe_spec,
    verify_serial: bool,
    event_log: "EventLog | None",
    preempt_after: int | None = None,
    warm_pool: bool = False,
    seal_window: int | None = None,
    adaptive: bool = True,
) -> dict:
    """One worker-count sweep point of :func:`run_loadtest`."""
    config = SandboxConfig(engine=engine)
    if backend == "modeled":
        from repro.service.backends import SimulatedFaaSBackend

        gw_backend: ExecutionBackend | None = SimulatedFaaSBackend(
            workers=workers, time_scale=time_scale
        )
    elif backend == "wasm":
        gw_backend = None
    else:
        raise ValueError(f"unknown loadtest backend {backend!r}")
    with MeteringGateway(
        workers=workers,
        pool=pool,
        config=config,
        backend=gw_backend,
        resilience=policy,
        fault_plan=plan,
        preempt_after=preempt_after,
        warm_pool=warm_pool,
        seal_window=seal_window,
        adaptive=adaptive,
    ) as gw:
        for tenant_id, module, _run in mix:
            gw.register_tenant(tenant_id, module=module.clone())
        rejection = None
        if probe_spec is not None:
            gw.register_tenant(
                "tenant-overquota",
                module=probe_spec.compile().clone(),
                quota=TenantQuota(instruction_budget=_PROBE_BUDGET),
            )
            export, args = probe_spec.run
            gw.execute("tenant-overquota", export, *args)  # spends the budget
            try:
                gw.execute("tenant-overquota", export, *args)
            except AdmissionError as exc:
                rejection = exc.to_json()
                rejection["tenant"] = "tenant-overquota"

        started = time.perf_counter()
        futures = [
            gw.submit(tenant_id, export, *args)
            for tenant_id, export, args in schedule
        ]
        responses = []
        failures: dict[str, int] = {}
        for future in futures:
            try:
                responses.append(future.result())
            except GatewayFailure as exc:
                failures[exc.code] = failures.get(exc.code, 0) + 1
        wall_s = time.perf_counter() - started
        seal = gw.seal_epoch()
        verdict = gw.verify_epoch(seal)
        latencies = sorted(r.latency_s for r in responses) or [0.0]

        def pct(q: float) -> float:
            return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

        # signatures-per-request: the batched-sealing win in one number.
        # Per-receipt mode signs every entry; batched mode signs one Merkle
        # root per flush window (plus per-entry checkpoint receipts keep
        # their own signatures only when unbatched).
        ledger_tenants = gw.ledger.tenants()
        all_entries = [
            receipt.entry
            for tenant_id in ledger_tenants
            for receipt in gw.ledger.receipts(tenant_id)
        ]
        per_receipt_sigs = sum(1 for entry in all_entries if entry.signature)
        batch_seals = sum(
            len(gw.ledger.batches(tenant_id)) for tenant_id in ledger_tenants
        )
        point = {
            "workers": workers,
            "workers_effective": gw.effective_workers,
            "backend": gw.backend.kind,
            "requests": len(responses),
            "wall_s": wall_s,
            "throughput_rps": len(responses) / wall_s,
            "latency_s": {
                "p50": pct(0.50),
                "p95": pct(0.95),
                "p99": pct(0.99),
                "mean": sum(latencies) / len(latencies),
            },
            "epoch_ok": verdict.ok,
            "epoch_errors": list(verdict.errors),
            "receipts_checked": verdict.receipts_checked,
            "quota_rejection": rejection,
            "cache": gw.cache.stats(),
            "signatures": {
                "receipts": len(all_entries),
                "per_receipt": per_receipt_sigs,
                "batch_seals": batch_seals,
                "per_request": (
                    (per_receipt_sigs + batch_seals) / len(all_entries)
                    if all_entries
                    else 0.0
                ),
            },
        }
        if preempt_after is not None or warm_pool:
            point["preemption"] = {
                "preempt_after": preempt_after,
                "warm_pool": warm_pool,
                "preemptions": gw.resilience_stats()["preemptions"],
            }
        if plan is not None:
            all_receipts = [
                receipt
                for tenant_id, _module, _run in mix
                for receipt in gw.ledger.receipts(tenant_id)
            ]
            # checkpoint receipts bill under derived ids ("<id>#cpN"); each
            # request still gets exactly one *final* receipt under its bare id
            final_receipts = sum(
                1 for receipt in all_receipts if isinstance(receipt.request_id, int)
            )
            billed = gw.ledger.billed_requests()
            point["faults"] = dict(gw.resilience_stats(), failures=failures)
            point["billing"] = {
                "receipts": len(all_receipts),
                "final_receipts": final_receipts,
                "distinct_requests_billed": billed,
                "ok_responses": len(responses),
                "exactly_once": (
                    len(all_receipts) == billed
                    and final_receipts == len(responses)
                ),
            }
        if event_log is not None:
            from repro.obs.audit import audit_billing

            drift = audit_billing(
                gw.ledger,
                gw.admission,
                events=event_log.events(),
                gateway_id=gw.gateway_id,
            )
            point["drift"] = drift.to_json()
        tracer = get_tracer()
        if tracer is not None:
            point["trace"] = _stitch_report(gw, tracer, responses)
        if verify_serial:
            # totals over the scheduled mix only — the probe tenant's
            # served request is not part of the serial baseline
            mix_totals = ResourceUsageLog(signing_key=None)
            mix_totals.entries = [
                receipt.entry
                for tenant_id, _module, _run in mix
                for receipt in gw.ledger.receipts(tenant_id)
            ]
            point["gateway_totals"] = mix_totals.totals().to_json()
        return point


def _stitch_report(
    gw: MeteringGateway, tracer: Tracer, responses: list[GatewayResponse]
) -> dict:
    """Verify, per completed request, that its trace stitched end to end.

    Three properties, all recomputable offline because trace ids are a pure
    function of (gateway id, request id):

    * **connected** — every span carrying the request's trace id reaches
      the ``gateway.request`` root by walking parent links (worker spans
      were re-parented at merge; checkpoint hops all hang under one root);
    * **origin pids** — merged worker spans keep the pid of the process
      that recorded them (distinct from the gateway's on a process pool);
    * **receipt linkage** — every AE receipt the request produced (final
      and every ``#cpN`` checkpoint) carries the same trace id.
    """
    spans = tracer.finished()
    by_id = {s.span_id: s for s in spans}
    own_pid = os.getpid()
    worker_pids: set[int] = set()
    stitched = 0
    unlinked_receipts = 0

    def _reaches(span: Span, root: Span) -> bool:
        seen: set[int] = set()
        current: Span | None = span
        while current is not None and current.span_id not in seen:
            if current.span_id == root.span_id:
                return True
            seen.add(current.span_id)
            current = (
                by_id.get(current.parent_id)
                if current.parent_id is not None
                else None
            )
        return False

    for response in responses:
        tid = trace_id_for(gw.gateway_id, response.request_id)
        root = next(
            (
                s
                for s in spans
                if s.name == "gateway.request"
                and s.attributes.get("trace_id") == tid
            ),
            None,
        )
        members = [
            s
            for s in spans
            if s.attributes.get("trace_id") == tid and s is not root
        ]
        connected = root is not None and all(_reaches(s, root) for s in members)
        worker_pids |= {
            s.pid for s in members if s.pid and s.pid != own_pid
        }
        receipts = [
            r
            for r in gw.ledger.receipts(response.tenant_id)
            if r.request_id == response.request_id
            or (
                isinstance(r.request_id, str)
                and r.request_id.startswith(f"{response.request_id}#cp")
            )
        ]
        linked = bool(receipts) and all(r.trace_id == tid for r in receipts)
        if not linked:
            unlinked_receipts += 1
        if connected and linked:
            stitched += 1
    return {
        "requests_checked": len(responses),
        "stitched": stitched,
        "unlinked_receipts": unlinked_receipts,
        "worker_pids": sorted(worker_pids),
        "ok": stitched == len(responses),
    }
