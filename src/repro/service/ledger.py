"""The billing ledger: signed receipts sealed into auditable epochs.

Every request the gateway serves yields a *receipt* — the log entry the
tenant's accounting enclave signed.  Receipts for one tenant form a hash
chain (the AE's :class:`~repro.core.resource_log.ResourceUsageLog`); the
ledger periodically *seals an epoch* by committing, for every tenant, the
chain segment served since the previous seal, and publishing one Merkle
root over all segments (S-FaaS-style aggregation: one commitment covers
every tenant's bill).

The offline :func:`verify_epoch` auditor re-derives everything from the
receipts alone and catches the three receipt-level attacks the paper's
threat model cares about:

* **tampered** receipts — a signature or entry hash no longer verifies;
* **reordered** receipts — sequence numbers or ``previous_hash`` links break;
* **dropped** receipts — interior drops break the chain, and a truncated
  *tail* (which a bare hash chain cannot see) contradicts the sealed
  segment-end hash.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

from contextlib import ExitStack

from repro.core.resource_log import (
    LogBatch,
    LogEntry,
    ResourceUsageLog,
    ResourceVector,
    verify_log_batches,
)
from repro.obs.events import emit as emit_event
from repro.obs.instruments import (
    LEDGER_BATCH_SEALS,
    LEDGER_RECEIPTS,
    LEDGER_SEAL_DURATION,
)
from repro.obs.trace import span as obs_span
from repro.service.sharding import DEFAULT_SHARDS, shard_index_for
from repro.tcrypto.hashing import sha256
from repro.tcrypto.merkle import MerkleProof, MerkleTree, verify_proof
from repro.tcrypto.rsa import RSAKeyPair, RSAPublicKey, rsa_generate, rsa_sign, rsa_verify


class DuplicateReceipt(ValueError):
    """A second receipt arrived for a request id already billed — the
    exactly-once invariant caught a double-billing attempt (e.g. a retry
    racing its own first attempt)."""


@dataclass(frozen=True)
class Receipt:
    """One request's signed accounting entry, attributed to a tenant.

    ``request_id`` ties the receipt to the gateway request it bills
    (retries reuse the id, so at most one receipt ever carries it);
    ``None`` for receipts recorded outside a gateway request path.
    Checkpoint receipts for a preempted request bill under the derived
    string id ``"<id>#cpN"`` — the bare integer id stays reserved for the
    request's single final receipt.

    ``trace_id`` is billing provenance, *outside* the signed body: it links
    the receipt to the distributed trace of the execution that produced it
    (every ``#cpN`` checkpoint of a preempted request carries the same id).
    Keeping it off :class:`~repro.core.resource_log.LogEntry` preserves the
    obs-on/off byte-identical signed-vector guarantee.
    """

    tenant_id: str
    entry: LogEntry
    request_id: int | str | None = None
    trace_id: str | None = None


@dataclass(frozen=True)
class TenantSpan:
    """One tenant's chain segment inside an epoch: entries
    ``[start_sequence, end_sequence)`` linking ``start_hash`` → ``end_hash``."""

    tenant_id: str
    start_sequence: int
    end_sequence: int
    start_hash: bytes
    end_hash: bytes
    ae_key_fingerprint: bytes

    def leaf(self) -> bytes:
        payload = {
            "tenant_id": self.tenant_id,
            "start_sequence": self.start_sequence,
            "end_sequence": self.end_sequence,
            "start_hash": self.start_hash.hex(),
            "end_hash": self.end_hash.hex(),
            "ae_key_fingerprint": self.ae_key_fingerprint.hex(),
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")


@dataclass(frozen=True)
class EpochSeal:
    """The ledger's public commitment to one epoch, signed by the gateway."""

    epoch: int
    previous_seal_hash: bytes
    merkle_root: bytes
    spans: tuple[TenantSpan, ...]
    signature: bytes

    def body(self) -> bytes:
        payload = {
            "epoch": self.epoch,
            "previous_seal_hash": self.previous_seal_hash.hex(),
            "merkle_root": self.merkle_root.hex(),
            "spans": [span.leaf().decode("utf-8") for span in self.spans],
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def seal_hash(self) -> bytes:
        return sha256(self.body())

    def span_for(self, tenant_id: str) -> TenantSpan | None:
        for span in self.spans:
            if span.tenant_id == tenant_id:
                return span
        return None


@dataclass(frozen=True)
class EpochVerification:
    """Outcome of an offline epoch audit."""

    ok: bool
    epoch: int
    receipts_checked: int
    errors: tuple[str, ...] = ()


class BillingLedger:
    """Collects receipts per tenant and seals them into epochs.

    Internally sharded per tenant-hash: each tenant's chain appends under
    its shard's lock (:func:`~repro.service.sharding.shard_index_for`), so
    concurrent tenants on different shards never contend.  Sealing an
    epoch briefly takes every shard lock — a consistent cross-tenant cut,
    off the request hot path.
    """

    GENESIS = ResourceUsageLog.GENESIS

    def __init__(
        self,
        signing_key: RSAKeyPair | None = None,
        owner: str = "",
        shards: int = DEFAULT_SHARDS,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self._signing_key = signing_key or rsa_generate(512, seed=0x1ED6E5)
        #: Telemetry stamp: which gateway this ledger serves.  Events the
        #: ledger emits carry it, so a shared event log can be audited per
        #: gateway (``audit_billing(..., gateway_id=...)``).
        self.owner = owner
        self._shard_locks = [threading.Lock() for _ in range(shards)]
        # guards tenant registration (dict key insertion) and the seals list
        self._registry_lock = threading.Lock()
        self._receipts: dict[str, list[Receipt]] = {}
        self._ae_keys: dict[str, RSAPublicKey] = {}
        self._sealed_upto: dict[str, int] = {}  # sequence already in an epoch
        self._billed_requests: dict[str, set[int | str]] = {}  # request ids receipted
        self._batches: dict[str, list[LogBatch]] = {}  # batched AE seals per tenant
        self.seals: list[EpochSeal] = []

    @property
    def public_key(self) -> RSAPublicKey:
        return self._signing_key.public

    @property
    def shards(self) -> int:
        return len(self._shard_locks)

    def _shard_lock(self, tenant_id: str) -> threading.Lock:
        return self._shard_locks[shard_index_for(tenant_id, len(self._shard_locks))]

    def _all_locks(self, stack: ExitStack) -> None:
        """Acquire the registry lock plus every shard lock, in fixed order."""
        stack.enter_context(self._registry_lock)
        for lock in self._shard_locks:
            stack.enter_context(lock)

    def register_tenant(self, tenant_id: str, ae_public_key: RSAPublicKey) -> None:
        with self._registry_lock, self._shard_lock(tenant_id):
            self._receipts.setdefault(tenant_id, [])
            self._ae_keys[tenant_id] = ae_public_key
            self._sealed_upto.setdefault(tenant_id, 0)
            self._billed_requests.setdefault(tenant_id, set())
            self._batches.setdefault(tenant_id, [])

    def record(
        self,
        tenant_id: str,
        entry: LogEntry,
        request_id: int | str | None = None,
        trace_id: str | None = None,
    ) -> Receipt:
        """Append one signed receipt to a tenant's chain (arrival order).

        With ``request_id`` given, enforces exactly-once billing: a second
        receipt for an id already on the chain raises
        :class:`DuplicateReceipt` *before* anything is appended.
        """
        receipt = Receipt(
            tenant_id=tenant_id,
            entry=entry,
            request_id=request_id,
            trace_id=trace_id,
        )
        # narrow critical section: only the chain append and the billed-id
        # set are under the shard lock — metrics and events emit outside it
        with self._shard_lock(tenant_id):
            chain = self._receipts[tenant_id]
            if request_id is not None and request_id in self._billed_requests[tenant_id]:
                raise DuplicateReceipt(
                    f"request {request_id} already billed for {tenant_id!r}"
                )
            if entry.sequence != len(chain):
                raise ValueError(
                    f"receipt out of order for {tenant_id!r}: "
                    f"got sequence {entry.sequence}, expected {len(chain)}"
                )
            chain.append(receipt)
            if request_id is not None:
                self._billed_requests[tenant_id].add(request_id)
        LEDGER_RECEIPTS.inc(tenant=tenant_id)
        emit_event(
            "receipt",
            gateway=self.owner,
            tenant=tenant_id,
            request_id=request_id,
            sequence=entry.sequence,
            weighted_instructions=entry.vector.weighted_instructions,
            entry_hash=entry.entry_hash(),
            trace_id=trace_id,
        )
        return receipt

    def billed_requests(self, tenant_id: str | None = None) -> int:
        """Distinct request ids with a receipt — one tenant's, or all.

        The offline double-billing check compares this against the raw
        receipt count: they must be equal when every receipt carries an id.
        """
        if tenant_id is not None:
            with self._shard_lock(tenant_id):
                return len(self._billed_requests.get(tenant_id, ()))
        total = 0
        with self._registry_lock:
            tenant_ids = list(self._billed_requests)
        for tid in tenant_ids:
            with self._shard_lock(tid):
                total += len(self._billed_requests.get(tid, ()))
        return total

    def receipts(self, tenant_id: str) -> list[Receipt]:
        with self._shard_lock(tenant_id):
            return list(self._receipts[tenant_id])

    def tenants(self) -> list[str]:
        """Registered tenant ids, sorted (the drift auditor's iteration order)."""
        with self._registry_lock:
            return sorted(self._receipts)

    def sealed_upto(self, tenant_id: str) -> int:
        """How many of a tenant's receipts are already inside a sealed epoch."""
        with self._shard_lock(tenant_id):
            return self._sealed_upto.get(tenant_id, 0)

    # -- batched AE seals --------------------------------------------------------

    def record_batch(self, tenant_id: str, batch: LogBatch) -> None:
        """Record one AE batch seal covering a window of a tenant's receipts.

        Batches must arrive contiguously (each starting where the previous
        ended) and never past the recorded chain — the gateway drains them
        from the AE's log in order, under the tenant lock.
        """
        with self._shard_lock(tenant_id):
            batches = self._batches[tenant_id]
            expected = batches[-1].end_sequence if batches else 0
            if batch.start_sequence != expected:
                raise ValueError(
                    f"batch out of order for {tenant_id!r}: starts at "
                    f"{batch.start_sequence}, expected {expected}"
                )
            if batch.end_sequence > len(self._receipts[tenant_id]):
                raise ValueError(
                    f"batch for {tenant_id!r} covers receipts the ledger "
                    "has not recorded"
                )
            batches.append(batch)
        LEDGER_BATCH_SEALS.inc(tenant=tenant_id)
        emit_event(
            "batch_seal",
            gateway=self.owner,
            tenant=tenant_id,
            start_sequence=batch.start_sequence,
            end_sequence=batch.end_sequence,
            receipts=batch.end_sequence - batch.start_sequence,
        )

    def batches(self, tenant_id: str) -> list[LogBatch]:
        """The AE batch seals recorded for one tenant, in coverage order."""
        with self._shard_lock(tenant_id):
            return list(self._batches.get(tenant_id, ()))

    def ae_key(self, tenant_id: str) -> RSAPublicKey:
        return self._ae_keys[tenant_id]

    def totals(self, tenant_id: str) -> ResourceVector:
        """One tenant's aggregate usage across all recorded receipts."""
        log = ResourceUsageLog(signing_key=None)
        log.entries = [r.entry for r in self.receipts(tenant_id)]
        return log.totals()

    # -- epoch sealing -----------------------------------------------------------

    def seal_epoch(self) -> EpochSeal:
        """Seal all unsealed receipts into a new epoch.

        Tenants with no new receipts since the last seal are omitted; an
        epoch with no new receipts at all still seals (empty span list is
        rejected by the Merkle tree, so we commit a sentinel leaf).
        """
        sealed_at = time.perf_counter()
        with ExitStack() as stack:
            # a consistent cut across every tenant chain: all shard locks,
            # acquired in fixed order (sealing is rare and off the hot path)
            self._all_locks(stack)
            stack.enter_context(obs_span("ledger.seal_epoch", epoch=len(self.seals)))
            spans: list[TenantSpan] = []
            for tenant_id in sorted(self._receipts):
                chain = self._receipts[tenant_id]
                start = self._sealed_upto[tenant_id]
                if start >= len(chain):
                    continue
                start_hash = (
                    chain[start].entry.previous_hash if start < len(chain) else self.GENESIS
                )
                spans.append(
                    TenantSpan(
                        tenant_id=tenant_id,
                        start_sequence=start,
                        end_sequence=len(chain),
                        start_hash=start_hash,
                        end_hash=chain[-1].entry.entry_hash(),
                        ae_key_fingerprint=self._ae_keys[tenant_id].fingerprint(),
                    )
                )
                self._sealed_upto[tenant_id] = len(chain)
            leaves = [span.leaf() for span in spans] or [b"empty-epoch"]
            previous = self.seals[-1].seal_hash() if self.seals else self.GENESIS
            unsigned = EpochSeal(
                epoch=len(self.seals),
                previous_seal_hash=previous,
                merkle_root=MerkleTree(leaves).root,
                spans=tuple(spans),
                signature=b"",
            )
            seal = EpochSeal(
                epoch=unsigned.epoch,
                previous_seal_hash=unsigned.previous_seal_hash,
                merkle_root=unsigned.merkle_root,
                spans=unsigned.spans,
                signature=rsa_sign(self._signing_key, unsigned.body()),
            )
            self.seals.append(seal)
            duration_s = time.perf_counter() - sealed_at
            LEDGER_SEAL_DURATION.observe(duration_s)
            emit_event(
                "seal",
                gateway=self.owner,
                epoch=seal.epoch,
                spans=len(spans),
                receipts=sum(s.end_sequence - s.start_sequence for s in spans),
                duration_s=duration_s,
            )
            return seal

    def epoch_receipts(self, seal: EpochSeal, tenant_id: str) -> list[Receipt]:
        """The receipts a given seal covers for one tenant."""
        span = seal.span_for(tenant_id)
        if span is None:
            return []
        with self._shard_lock(tenant_id):
            return list(self._receipts[tenant_id][span.start_sequence : span.end_sequence])

    def inclusion_proof(self, seal: EpochSeal, tenant_id: str) -> MerkleProof:
        """Merkle proof that a tenant's span is committed under the seal."""
        for index, span in enumerate(seal.spans):
            if span.tenant_id == tenant_id:
                tree = MerkleTree([s.leaf() for s in seal.spans])
                return tree.proof(index)
        raise KeyError(f"tenant {tenant_id!r} has no span in epoch {seal.epoch}")


def _verify_span(
    span: TenantSpan,
    receipts: list[Receipt],
    ae_key: RSAPublicKey,
    errors: list[str],
    batches: list[LogBatch] = (),
) -> None:
    tid = span.tenant_id
    if ae_key.fingerprint() != span.ae_key_fingerprint:
        errors.append(f"{tid}: accounting key does not match the sealed fingerprint")
        return
    expected = span.end_sequence - span.start_sequence
    if len(receipts) != expected:
        errors.append(
            f"{tid}: {len(receipts)} receipts for a span of {expected} "
            "(dropped or extra receipts)"
        )
        return
    previous = span.start_hash
    batched = False
    for offset, receipt in enumerate(receipts):
        entry = receipt.entry
        seq = span.start_sequence + offset
        if entry.sequence != seq:
            errors.append(f"{tid}: receipt {offset} has sequence {entry.sequence}, expected {seq}")
            return
        if entry.previous_hash != previous:
            errors.append(f"{tid}: chain broken at sequence {seq} (reordered or dropped)")
            return
        if not entry.signature:
            batched = True  # covered by an AE batch seal, checked below
        elif not rsa_verify(ae_key, entry.body(), entry.signature):
            errors.append(f"{tid}: signature invalid at sequence {seq} (tampered)")
            return
        previous = entry.entry_hash()
    if previous != span.end_hash:
        errors.append(f"{tid}: chain head does not match the sealed end hash (truncated tail)")
        return
    if batched:
        # the epoch seal forced a flush, so the span must be fully covered
        # by verifying batches — one RSA verify per flush window
        relevant = [
            b
            for b in batches
            if span.start_sequence <= b.start_sequence
            and b.end_sequence <= span.end_sequence
        ]
        problems, pending = verify_log_batches(
            [r.entry for r in receipts], relevant, ae_key
        )
        for problem in problems:
            errors.append(f"{tid}: {problem}")
        if pending:
            errors.append(
                f"{tid}: {pending} batched receipts have no covering AE batch seal"
            )


def verify_epoch(
    seal: EpochSeal,
    receipts_by_tenant: dict[str, list[Receipt]],
    ae_keys: dict[str, RSAPublicKey],
    ledger_public_key: RSAPublicKey,
    previous_seal: EpochSeal | None = None,
    batches_by_tenant: dict[str, list[LogBatch]] | None = None,
) -> EpochVerification:
    """Offline audit of one epoch from first principles.

    ``receipts_by_tenant`` must hold, for each tenant with a span in the
    seal, exactly the receipts the span covers, in chain order.  Either
    party can run this: it needs only public keys and the receipts.
    ``batches_by_tenant`` supplies the AE batch seals for tenants whose
    receipts were signed in batched mode — the verifier recomputes each
    batch's Merkle root from the receipts themselves and checks one batch
    signature per flush window instead of one per receipt.
    """
    errors: list[str] = []
    checked = 0

    unsigned = EpochSeal(
        epoch=seal.epoch,
        previous_seal_hash=seal.previous_seal_hash,
        merkle_root=seal.merkle_root,
        spans=seal.spans,
        signature=b"",
    )
    if not rsa_verify(ledger_public_key, unsigned.body(), seal.signature):
        errors.append("epoch seal signature invalid")
    if previous_seal is not None and seal.previous_seal_hash != previous_seal.seal_hash():
        errors.append("epoch does not chain to the given previous seal")

    leaves = [span.leaf() for span in seal.spans] or [b"empty-epoch"]
    if MerkleTree(leaves).root != seal.merkle_root:
        errors.append("Merkle root does not match the sealed spans")

    for span in seal.spans:
        receipts = receipts_by_tenant.get(span.tenant_id)
        key = ae_keys.get(span.tenant_id)
        if receipts is None or key is None:
            errors.append(f"{span.tenant_id}: receipts or accounting key missing")
            continue
        checked += len(receipts)
        batches = (batches_by_tenant or {}).get(span.tenant_id, [])
        _verify_span(span, receipts, key, errors, batches=batches)

    return EpochVerification(
        ok=not errors,
        epoch=seal.epoch,
        receipts_checked=checked,
        errors=tuple(errors),
    )


def audit_tenant(
    seal: EpochSeal,
    proof: MerkleProof,
    span: TenantSpan,
    receipts: list[Receipt],
    ae_key: RSAPublicKey,
    ledger_public_key: RSAPublicKey,
    batches: list[LogBatch] = (),
) -> bool:
    """A single tenant's audit: my receipts, my span, one Merkle proof.

    Needs nothing about other tenants — the privacy-preserving audit path.
    Pass ``batches`` when the receipts were signed in batched mode.
    """
    unsigned = EpochSeal(
        epoch=seal.epoch,
        previous_seal_hash=seal.previous_seal_hash,
        merkle_root=seal.merkle_root,
        spans=seal.spans,
        signature=b"",
    )
    if not rsa_verify(ledger_public_key, unsigned.body(), seal.signature):
        return False
    if not verify_proof(span.leaf(), proof, seal.merkle_root):
        return False
    errors: list[str] = []
    _verify_span(span, receipts, ae_key, errors, batches=list(batches))
    return not errors
