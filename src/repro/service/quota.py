"""Per-tenant admission control for the metering gateway.

Quotas are enforced *before* dispatch — a rejected request never occupies a
worker, so one noisy tenant cannot starve the pool.  Every rejection is a
typed :class:`AdmissionError` carrying a machine-readable ``code`` and,
where the condition is transient, a ``retry_after_s`` hint (the HTTP 429 /
503 Retry-After analogue).

Four quota dimensions, mirroring what the paper's provider would sell:

* **instruction budget** — cumulative weighted instructions per epoch
  (resets when the billing ledger seals an epoch);
* **memory cap** — the workload's declared linear-memory requirement;
* **queue depth** — in-flight + queued requests per tenant;
* **request rate** — a token bucket (sustained rate plus burst).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.instruments import GATEWAY_QUEUE_DEPTH, GATEWAY_REJECTIONS
from repro.service.sharding import DEFAULT_SHARDS, shard_index_for


class AdmissionError(Exception):
    """Base class for typed admission rejections."""

    code = "rejected"

    def __init__(self, message: str, retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "message": str(self),
            "retry_after_s": self.retry_after_s,
        }


class UnknownTenant(AdmissionError):
    """Request names a tenant the gateway has never registered."""

    code = "unknown-tenant"


class QueueFull(AdmissionError):
    """The tenant's in-flight + queued request count is at its cap."""

    code = "queue-full"


class RateLimited(AdmissionError):
    """The tenant's token bucket is empty."""

    code = "rate-limited"


class InstructionBudgetExhausted(AdmissionError):
    """The tenant spent its per-epoch weighted-instruction budget."""

    code = "instruction-budget-exhausted"


class MemoryCapExceeded(AdmissionError):
    """The workload's declared memory requirement exceeds the tenant's cap."""

    code = "memory-cap-exceeded"


@dataclass(frozen=True)
class TenantQuota:
    """What one tenant bought.  ``None`` disables a dimension."""

    instruction_budget: int | None = None  # weighted instructions per epoch
    memory_cap_bytes: int | None = None
    max_queue_depth: int | None = None
    requests_per_second: float | None = None
    burst: int = 1  # token-bucket capacity when rate limiting is on


@dataclass
class _TenantState:
    quota: TenantQuota
    in_flight: int = 0
    spent_instructions: int = 0  # this epoch
    tokens: float = 0.0
    # None = never refilled; a plain 0.0 would be indistinguishable from a
    # legitimate clock reading of zero (injected test clocks, monotonic
    # clocks near process start) and silently skip the first refill interval
    last_refill: float | None = None
    admitted: int = 0
    rejected: int = 0
    settled: int = 0

    def __post_init__(self) -> None:
        self.tokens = float(self.quota.burst)


@dataclass
class _Shard:
    """One admission shard: its lock and the tenants routed to it."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    tenants: dict[str, _TenantState] = field(default_factory=dict)


class AdmissionController:
    """Tracks per-tenant consumption and decides admission.

    Thread-safe, and sharded per tenant-hash: each tenant's state lives on
    one of ``shards`` independently-locked shards
    (:func:`~repro.service.sharding.shard_index_for`), so heavy traffic
    from one tenant never serializes admission for tenants on other
    shards.  The gateway calls :meth:`admit` from submitting threads and
    :meth:`settle` from its front-end; ``clock`` is injectable so tests
    can drive the token bucket deterministically.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        shards: int = DEFAULT_SHARDS,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self._clock = clock
        self._shards = [_Shard() for _ in range(shards)]

    @property
    def shards(self) -> int:
        return len(self._shards)

    def _shard(self, tenant_id: str) -> _Shard:
        return self._shards[shard_index_for(tenant_id, len(self._shards))]

    def register(self, tenant_id: str, quota: TenantQuota) -> None:
        shard = self._shard(tenant_id)
        with shard.lock:
            shard.tenants[tenant_id] = _TenantState(quota=quota)

    def quota(self, tenant_id: str) -> TenantQuota:
        state = self._shard(tenant_id).tenants.get(tenant_id)
        if state is None:
            raise UnknownTenant(f"tenant {tenant_id!r} is not registered")
        return state.quota

    # -- admission ---------------------------------------------------------------

    def admit(self, tenant_id: str, memory_required_bytes: int = 0) -> None:
        """Admit one request or raise a typed :class:`AdmissionError`.

        On success the tenant's in-flight count is incremented; the caller
        must eventually :meth:`settle` the request (even if execution fails).
        """
        shard = self._shard(tenant_id)
        with shard.lock:
            state = shard.tenants.get(tenant_id)
            if state is None:
                GATEWAY_REJECTIONS.inc(tenant=tenant_id, reason=UnknownTenant.code)
                raise UnknownTenant(f"tenant {tenant_id!r} is not registered")
            quota = state.quota
            try:
                if (
                    quota.memory_cap_bytes is not None
                    and memory_required_bytes > quota.memory_cap_bytes
                ):
                    raise MemoryCapExceeded(
                        f"workload needs {memory_required_bytes} B, "
                        f"cap is {quota.memory_cap_bytes} B"
                    )
                if (
                    quota.instruction_budget is not None
                    and state.spent_instructions >= quota.instruction_budget
                ):
                    raise InstructionBudgetExhausted(
                        f"spent {state.spent_instructions} of "
                        f"{quota.instruction_budget} weighted instructions this epoch"
                    )
                if (
                    quota.max_queue_depth is not None
                    and state.in_flight >= quota.max_queue_depth
                ):
                    raise QueueFull(
                        f"{state.in_flight} requests already queued "
                        f"(cap {quota.max_queue_depth})",
                        retry_after_s=0.05,
                    )
                if quota.requests_per_second is not None:
                    self._refill(state)
                    if state.tokens < 1.0:
                        raise RateLimited(
                            f"rate cap {quota.requests_per_second}/s exceeded",
                            retry_after_s=(1.0 - state.tokens)
                            / quota.requests_per_second,
                        )
                    state.tokens -= 1.0
            except AdmissionError as exc:
                state.rejected += 1
                GATEWAY_REJECTIONS.inc(tenant=tenant_id, reason=exc.code)
                raise
            state.in_flight += 1
            state.admitted += 1
            GATEWAY_QUEUE_DEPTH.set(state.in_flight, tenant=tenant_id)

    def settle(self, tenant_id: str, weighted_instructions: int = 0) -> None:
        """Record one finished request: free its slot, charge its budget."""
        shard = self._shard(tenant_id)
        with shard.lock:
            state = shard.tenants.get(tenant_id)
            if state is None:
                raise UnknownTenant(f"tenant {tenant_id!r} is not registered")
            state.in_flight = max(0, state.in_flight - 1)
            state.spent_instructions += weighted_instructions
            state.settled += 1
            GATEWAY_QUEUE_DEPTH.set(state.in_flight, tenant=tenant_id)

    def reset_epoch(self) -> None:
        """Start a new accounting epoch: instruction budgets reset."""
        for shard in self._shards:
            with shard.lock:
                for state in shard.tenants.values():
                    state.spent_instructions = 0

    def _refill(self, state: _TenantState) -> None:
        now = self._clock()
        rate = state.quota.requests_per_second or 0.0
        if state.last_refill is not None:
            state.tokens = min(
                float(state.quota.burst),
                state.tokens + (now - state.last_refill) * rate,
            )
        state.last_refill = now

    # -- introspection -----------------------------------------------------------

    def stats(self, tenant_id: str) -> dict[str, int]:
        # snapshot under the shard lock: admit()/settle() mutate these
        # fields from other threads, and callers rely on the counters being
        # mutually consistent (admitted - in_flight == settled at all times)
        shard = self._shard(tenant_id)
        with shard.lock:
            state = shard.tenants.get(tenant_id)
            if state is None:
                raise UnknownTenant(f"tenant {tenant_id!r} is not registered")
            return {
                "admitted": state.admitted,
                "rejected": state.rejected,
                "in_flight": state.in_flight,
                "settled": state.settled,
                "spent_instructions": state.spent_instructions,
            }
