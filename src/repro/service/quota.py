"""Per-tenant admission control for the metering gateway.

Quotas are enforced *before* dispatch — a rejected request never occupies a
worker, so one noisy tenant cannot starve the pool.  Every rejection is a
typed :class:`AdmissionError` carrying a machine-readable ``code`` and,
where the condition is transient, a ``retry_after_s`` hint (the HTTP 429 /
503 Retry-After analogue).

Four quota dimensions, mirroring what the paper's provider would sell:

* **instruction budget** — cumulative weighted instructions per epoch
  (resets when the billing ledger seals an epoch);
* **memory cap** — the workload's declared linear-memory requirement;
* **queue depth** — in-flight + queued requests per tenant;
* **request rate** — a token bucket (sustained rate plus burst).

Tenant state is **lazy and bounded** when the controller is configured for
scale: with a ``default_quota``, unseen tenants are instantiated on first
admit instead of requiring up-front registration, and with ``max_resident``
the per-shard population is capped by evicting the least-recently-admitted
*idle* lazy tenant (``in_flight == 0``; explicitly registered tenants are
pinned and never evicted).  An evicted tenant that returns is re-admitted
under a fresh default-quota state — per-epoch spend tracking restarts for
it, which is the deliberate trade for O(active) rather than O(ever-seen)
memory; evictions are counted (``acctee_quota_evictions``) so the billing
auditor can see how much history was shed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.instruments import (
    GATEWAY_QUEUE_DEPTH,
    GATEWAY_REJECTIONS,
    QUOTA_EVICTIONS,
)
from repro.service.sharding import DEFAULT_SHARDS, shard_index_for


class AdmissionError(Exception):
    """Base class for typed admission rejections."""

    code = "rejected"

    def __init__(self, message: str, retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "message": str(self),
            "retry_after_s": self.retry_after_s,
        }


class UnknownTenant(AdmissionError):
    """Request names a tenant the gateway has never registered."""

    code = "unknown-tenant"


class QueueFull(AdmissionError):
    """The tenant's in-flight + queued request count is at its cap."""

    code = "queue-full"


class RateLimited(AdmissionError):
    """The tenant's token bucket is empty."""

    code = "rate-limited"


class InstructionBudgetExhausted(AdmissionError):
    """The tenant spent its per-epoch weighted-instruction budget."""

    code = "instruction-budget-exhausted"


class MemoryCapExceeded(AdmissionError):
    """The workload's declared memory requirement exceeds the tenant's cap."""

    code = "memory-cap-exceeded"


@dataclass(frozen=True)
class TenantQuota:
    """What one tenant bought.  ``None`` disables a dimension."""

    instruction_budget: int | None = None  # weighted instructions per epoch
    memory_cap_bytes: int | None = None
    max_queue_depth: int | None = None
    requests_per_second: float | None = None
    burst: int = 1  # token-bucket capacity when rate limiting is on


@dataclass(slots=True)
class _TenantState:
    # slots=True matters here: at scale these states are minted on the
    # admit hot path (lazy tenants churn through the resident cap), and a
    # slotted instance constructs measurably faster and ~3x smaller
    quota: TenantQuota
    in_flight: int = 0
    spent_instructions: int = 0  # this epoch
    tokens: float = 0.0
    # None = never refilled; a plain 0.0 would be indistinguishable from a
    # legitimate clock reading of zero (injected test clocks, monotonic
    # clocks near process start) and silently skip the first refill interval
    last_refill: float | None = None
    admitted: int = 0
    rejected: int = 0
    settled: int = 0
    # registered tenants are pinned (never evicted); lazily instantiated
    # default-quota tenants are fair game for the idle LRU
    pinned: bool = True

    def __post_init__(self) -> None:
        self.tokens = float(self.quota.burst)


@dataclass
class _Shard:
    """One admission shard: its lock and the tenants routed to it."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    tenants: dict[str, _TenantState] = field(default_factory=dict)


class AdmissionController:
    """Tracks per-tenant consumption and decides admission.

    Thread-safe, and sharded per tenant-hash: each tenant's state lives on
    one of ``shards`` independently-locked shards
    (:func:`~repro.service.sharding.shard_index_for`), so heavy traffic
    from one tenant never serializes admission for tenants on other
    shards.  The gateway calls :meth:`admit` from submitting threads and
    :meth:`settle` from its front-end; ``clock`` is injectable so tests
    can drive the token bucket deterministically.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        shards: int = DEFAULT_SHARDS,
        default_quota: TenantQuota | None = None,
        max_resident: int | None = None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if max_resident is not None and max_resident < shards:
            raise ValueError("max_resident must be >= shards (one slot per shard)")
        self._clock = clock
        self._shards = [_Shard() for _ in range(shards)]
        self.default_quota = default_quota
        self.max_resident = max_resident
        # per-shard slice of the global resident cap, rounded up so the sum
        # across shards is never below max_resident
        self._shard_cap = (
            None
            if max_resident is None
            else -(-max_resident // shards)
        )
        self.evictions = 0

    @property
    def shards(self) -> int:
        return len(self._shards)

    def _shard(self, tenant_id: str) -> _Shard:
        return self._shards[shard_index_for(tenant_id, len(self._shards))]

    def register(self, tenant_id: str, quota: TenantQuota) -> None:
        shard = self._shard(tenant_id)
        with shard.lock:
            shard.tenants[tenant_id] = _TenantState(quota=quota, pinned=True)

    def resident(self) -> int:
        """Tenant states currently held in memory, across all shards."""
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += len(shard.tenants)
        return total

    def _evict_idle(self, shard: _Shard, keep: str) -> None:
        """Shed the least-recently-admitted idle lazy tenant; holds the lock.

        Dict order is insertion order and :meth:`admit` re-inserts a lazy
        tenant's entry on every successful admission, so iteration order
        *is* recency order for evictable states.  Pinned or in-flight
        tenants are skipped; if everything is busy the shard temporarily
        exceeds its cap rather than rejecting traffic (in-flight counts
        are bounded by queue-depth quotas, so so is the excess).
        """
        if self._shard_cap is None or len(shard.tenants) <= self._shard_cap:
            return
        for tenant_id, state in shard.tenants.items():
            if tenant_id == keep or state.pinned or state.in_flight > 0:
                continue
            del shard.tenants[tenant_id]
            self.evictions += 1
            # the metric is reported in batches of 64: at scale an eviction
            # happens on nearly every tail-tenant admit, and a per-event
            # counter inc would be real hot-path overhead.  self.evictions
            # stays exact; the metric is at most a batch behind.
            if self.evictions % 64 == 0:
                QUOTA_EVICTIONS.inc(64)
            return

    def quota(self, tenant_id: str) -> TenantQuota:
        state = self._shard(tenant_id).tenants.get(tenant_id)
        if state is None:
            raise UnknownTenant(f"tenant {tenant_id!r} is not registered")
        return state.quota

    # -- admission ---------------------------------------------------------------

    def admit(self, tenant_id: str, memory_required_bytes: int = 0) -> None:
        """Admit one request or raise a typed :class:`AdmissionError`.

        On success the tenant's in-flight count is incremented; the caller
        must eventually :meth:`settle` the request (even if execution fails).
        """
        shard = self._shard(tenant_id)
        with shard.lock:
            fresh = False
            state = shard.tenants.get(tenant_id)
            if state is None:
                if self.default_quota is None:
                    GATEWAY_REJECTIONS.inc(tenant=tenant_id, reason=UnknownTenant.code)
                    raise UnknownTenant(f"tenant {tenant_id!r} is not registered")
                # lazy instantiation: first contact mints a default-quota
                # state instead of demanding up-front registration
                state = shard.tenants[tenant_id] = _TenantState(
                    quota=self.default_quota, pinned=False
                )
                fresh = True
                self._evict_idle(shard, keep=tenant_id)
            quota = state.quota
            try:
                if (
                    quota.memory_cap_bytes is not None
                    and memory_required_bytes > quota.memory_cap_bytes
                ):
                    raise MemoryCapExceeded(
                        f"workload needs {memory_required_bytes} B, "
                        f"cap is {quota.memory_cap_bytes} B"
                    )
                if (
                    quota.instruction_budget is not None
                    and state.spent_instructions >= quota.instruction_budget
                ):
                    raise InstructionBudgetExhausted(
                        f"spent {state.spent_instructions} of "
                        f"{quota.instruction_budget} weighted instructions this epoch"
                    )
                if (
                    quota.max_queue_depth is not None
                    and state.in_flight >= quota.max_queue_depth
                ):
                    raise QueueFull(
                        f"{state.in_flight} requests already queued "
                        f"(cap {quota.max_queue_depth})",
                        retry_after_s=0.05,
                    )
                if quota.requests_per_second is not None:
                    self._refill(state)
                    if state.tokens < 1.0:
                        raise RateLimited(
                            f"rate cap {quota.requests_per_second}/s exceeded",
                            retry_after_s=(1.0 - state.tokens)
                            / quota.requests_per_second,
                        )
                    state.tokens -= 1.0
            except AdmissionError as exc:
                state.rejected += 1
                GATEWAY_REJECTIONS.inc(tenant=tenant_id, reason=exc.code)
                raise
            state.in_flight += 1
            state.admitted += 1
            if self._shard_cap is not None and not state.pinned and not fresh:
                # re-insert so dict order tracks admission recency: the LRU
                # scan in _evict_idle reads insertion order as recency (a
                # freshly minted state is already last in dict order)
                del shard.tenants[tenant_id]
                shard.tenants[tenant_id] = state
            if state.pinned:
                # per-tenant queue depth is only published for registered
                # tenants: for lazily minted mass tenants the series would
                # all route to the __other__ overflow key, where last-write-
                # wins depth is meaningless — exactly the unbounded-
                # cardinality telemetry the governance layer exists to shed
                GATEWAY_QUEUE_DEPTH.set(state.in_flight, tenant=tenant_id)

    def settle(self, tenant_id: str, weighted_instructions: int = 0) -> None:
        """Record one finished request: free its slot, charge its budget."""
        shard = self._shard(tenant_id)
        with shard.lock:
            state = shard.tenants.get(tenant_id)
            if state is None:
                raise UnknownTenant(f"tenant {tenant_id!r} is not registered")
            state.in_flight = max(0, state.in_flight - 1)
            state.spent_instructions += weighted_instructions
            state.settled += 1
            if state.pinned:
                GATEWAY_QUEUE_DEPTH.set(state.in_flight, tenant=tenant_id)

    def reset_epoch(self) -> None:
        """Start a new accounting epoch: instruction budgets reset."""
        for shard in self._shards:
            with shard.lock:
                for state in shard.tenants.values():
                    state.spent_instructions = 0

    def _refill(self, state: _TenantState) -> None:
        now = self._clock()
        rate = state.quota.requests_per_second or 0.0
        if state.last_refill is not None:
            state.tokens = min(
                float(state.quota.burst),
                state.tokens + (now - state.last_refill) * rate,
            )
        state.last_refill = now

    # -- introspection -----------------------------------------------------------

    def stats(self, tenant_id: str) -> dict[str, int]:
        # snapshot under the shard lock: admit()/settle() mutate these
        # fields from other threads, and callers rely on the counters being
        # mutually consistent (admitted - in_flight == settled at all times)
        shard = self._shard(tenant_id)
        with shard.lock:
            state = shard.tenants.get(tenant_id)
            if state is None:
                raise UnknownTenant(f"tenant {tenant_id!r} is not registered")
            return {
                "admitted": state.admitted,
                "rejected": state.rejected,
                "in_flight": state.in_flight,
                "settled": state.settled,
                "spent_instructions": state.spent_instructions,
            }
