"""Tenant-hash shard routing for the gateway's serialized state.

The gateway's front-end state — admission counters, request-id minting,
ledger chains — used to sit behind single process-wide locks, which is
exactly the serialization that produced the multi-worker cliff
(``speedup_4_over_1 < 1`` on the real backend).  Sharding that state per
tenant-hash lets unrelated tenants proceed without contending.

Routing must be a *pure function* of the tenant id: the same tenant lands
on the same shard across gateway restarts and across processes, so
replayed request streams, fault plans keyed on request ids, and offline
audits all see a stable mapping.  SHA-256 over a domain-tagged tenant id
gives that (no dependence on ``hash()`` randomization or dict order).
"""

from __future__ import annotations

from functools import lru_cache

from repro.tcrypto.hashing import sha256

DEFAULT_SHARDS = 8


@lru_cache(maxsize=4096)
def shard_index_for(tenant_id: str, shards: int) -> int:
    """Deterministic tenant → shard routing, stable across restarts.

    Cached: admission, ledger, and request-mint paths all route the same
    few tenants on every request, and the digest never changes.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    digest = sha256(b"shard:" + tenant_id.encode("utf-8"))
    return int.from_bytes(digest[:8], "big") % shards


def shard_of_request(request_id: int, shards: int) -> int:
    """Recover the minting shard from a shard-tagged request id.

    Request ids stay plain integers (fault plans take ``id % every``, trace
    ids and receipts embed the bare id) but carry their shard in the low
    bits: shard ``s`` mints ``s+1, s+1+shards, s+1+2*shards, …`` — globally
    unique with no cross-shard lock.
    """
    return (request_id - 1) % shards
