"""Warm-start pools: instantiate + instrument once, snapshot, clone per request.

Per-request setup cost for an instrumented module is dominated by
instantiation — the predecode engine translates every function body at
``Instance()`` time, the compile engine parses and wires its template.  A
:class:`WarmPool` pays that cost once per pooled slot: it builds a template
instance, captures its pristine post-instantiation state as a warm-image
:class:`~repro.wasm.snapshot.Snapshot` (frames empty), and serves each
request by resetting a pooled live instance back to that image with
:func:`~repro.wasm.snapshot.apply_state` — an in-place memory/globals/
stats overwrite that is orders of magnitude cheaper than instantiating.
Requests then run at full engine speed; nothing about the warm path touches
the capture interpreter.

When constructed with an :class:`~repro.core.cache.InstrumentationCache`
and a *source* (uninstrumented) module, every slot build fetches the
instrumented module through the cache, so clone storms across pools and
threads share one IE pass and the cache's hit/miss/eviction counters stay
meaningful.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.obs.context import record_metric, worker_event, worker_span
from repro.obs.instruments import WARM_POOL_HITS
from repro.wasm.interpreter import ExecutionLimits, Instance
from repro.wasm.module import Module
from repro.wasm.runtime import HostEnvironment, IOAccount, IOChannel
from repro.wasm.snapshot import Snapshot, apply_state, capture_instance


@dataclass
class WarmHandle:
    """One pooled live instance, leased to exactly one request at a time."""

    instance: Instance
    env: HostEnvironment
    channel: IOChannel


@dataclass
class WarmPool:
    """A bounded pool of pre-instantiated instances of one module.

    Exactly one of ``module`` or (``cache`` + ``source``) must be provided:
    with a cache, each slot build runs the source module through it and
    instantiates the (shared, cached) instrumented result.
    """

    module: Module | None = None
    source: Module | None = None
    cache: object | None = None  # InstrumentationCache, kept untyped to avoid a cycle
    engine: str | None = None
    cost_model: object | None = None
    max_size: int = 4
    hits: int = 0
    builds: int = 0
    _idle: list[WarmHandle] = field(default_factory=list)
    _image: Snapshot | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self) -> None:
        if self.module is None and (self.cache is None or self.source is None):
            raise ValueError("WarmPool needs a module, or a cache plus a source module")
        if self.max_size < 1:
            raise ValueError("max_size must be >= 1")

    # -- building ----------------------------------------------------------------

    def _fetch_module(self) -> Module:
        if self.cache is not None and self.source is not None:
            instrumented, _evidence, _counter = self.cache.instrument(self.source)
            return instrumented
        return self.module

    def _build(self) -> WarmHandle:
        channel = IOChannel()
        env = HostEnvironment(channel=channel, account_io=True)
        instance = env.instantiate(
            self._fetch_module(),
            limits=ExecutionLimits(),
            cost_model=self.cost_model,
            engine=self.engine,
        )
        with self._lock:
            self.builds += 1
            if self._image is None:
                # the pristine post-instantiation state (start function
                # included) — every acquire resets a pooled instance to this
                self._image = capture_instance(instance)
        return WarmHandle(instance=instance, env=env, channel=channel)

    # -- leasing -----------------------------------------------------------------

    def acquire(
        self, input_data: bytes = b"", limits: ExecutionLimits | None = None
    ) -> WarmHandle:
        """Lease an instance reset to the warm image, ready to invoke."""
        with self._lock:
            handle = self._idle.pop() if self._idle else None
        if handle is None:
            with worker_span("warmpool.build"):
                handle = self._build()
            worker_event("warm_acquire", outcome="build")
        else:
            with self._lock:
                self.hits += 1
            WARM_POOL_HITS.inc()
            # backhaul copy: a process-pool worker's registry dies with it
            record_metric("acctee_warm_pool_hits", 1)
            worker_event("warm_acquire", outcome="hit")
        apply_state(handle.instance, self._image)
        handle.channel.reset(input_data)
        handle.env.account = IOAccount()
        handle.instance.limits = limits or ExecutionLimits()
        return handle

    def release(self, handle: WarmHandle) -> None:
        """Return a leased instance; surplus handles beyond ``max_size`` drop."""
        with self._lock:
            if len(self._idle) < self.max_size:
                self._idle.append(handle)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "builds": self.builds,
                "idle": len(self._idle),
                "max_size": self.max_size,
            }
