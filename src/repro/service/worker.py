"""The gateway's execution pool: run instrumented workloads concurrently.

Execution and accounting are deliberately split (see
:class:`repro.core.accounting_enclave.RawExecution`): workers — plain
processes, standing in for the per-request enclave instances of the paper's
FaaS deployment — execute the *already instrumented* module and return raw
meter readings; the tenant's accounting enclave back in the gateway process
turns those into signed receipts.  Workers therefore never hold signing
keys, and a compromised worker can at worst mis-execute its own tenant's
request — exactly the blast radius the two-way sandbox promises.

The default pool is a :class:`~concurrent.futures.ProcessPoolExecutor`
(real parallelism for the pure-Python interpreter); ``kind="thread"`` gives
a threaded fallback for platforms where subprocesses are unavailable, and is
also what the test suite uses for speed.  Each worker process keeps a small
module cache keyed by module hash, so per-request work is instantiate +
execute, matching the paper's cached-side-module FaaS setup (§4.3).

Workers are assumed to fail: a crashed worker process poisons the whole
``ProcessPoolExecutor`` (every later submit raises ``BrokenProcessPool``),
so :class:`WorkerPool` detects the break and rebuilds the executor in
place.  The pool never hands the executor more than ``workers`` tasks at a
time — the surplus waits in the pool's own backlog, outside the executor —
so on a break the backlog (provably never started) re-dispatches
transparently onto the replacement, while the few tasks that may have been
in flight surface as typed :class:`~repro.service.faults.WorkerCrashed`
errors for the gateway's bounded retry layer.  After ``max_rebuilds``
process-pool rebuilds the pool falls back to threads for the rest of its
life rather than fork-looping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, replace

from repro.core.accounting_enclave import RawExecution
from repro.obs.context import (
    TelemetryCapture,
    TraceContext,
    activate,
    worker_event,
    worker_span,
)
from repro.obs.events import emit as emit_event
from repro.obs.instruments import (
    POOL_EXEC_WALL,
    POOL_REBUILDS,
    POOL_TASKS,
    POOL_TASKS_IN_FLIGHT,
    POOL_UTILISATION,
)
from repro.service.faults import WorkerCrashed, corrupt_raw, perform_pre_fault
from repro.service.warmpool import WarmPool
from repro.wasm.binary import decode_module
from repro.wasm.interpreter import ExecutionLimits, SnapshotCaptured, Trap
from repro.wasm.module import Module
from repro.wasm.runtime import HostEnvironment, IOChannel
from repro.wasm.snapshot import (
    IOState,
    decode_snapshot,
    encode_snapshot,
    restore_instance,
    resume_invoke,
    with_io,
)

#: Worker-side decoded-module cache (per process; in the threaded pool all
#: workers share it, so every access goes through ``_MODULE_CACHE_LOCK`` —
#: decoded modules themselves are never mutated by instantiation, but the
#: dict bookkeeping is a classic check-then-act race without the lock).
#: Ordered, so eviction is true LRU: hits move the entry to the MRU end.
_MODULE_CACHE: "OrderedDict[bytes, Module]" = OrderedDict()
_MODULE_CACHE_MAX = 64
_MODULE_CACHE_LOCK = threading.Lock()


@dataclass(frozen=True)
class ExecutionTask:
    """Everything a worker needs to run one request — plain bytes and ints,
    so it pickles cheaply across the process boundary.

    ``fault`` is the chaos-testing hook: when the gateway's
    :class:`~repro.service.faults.FaultPlan` selects this request, the fault
    kind (and its numeric argument, e.g. a hang duration) ships with the
    task and the worker acts it out.  ``None`` — the default and the entire
    production path — executes normally.
    """

    module_bytes: bytes
    module_hash: bytes
    counter_global_index: int
    export: str
    args: tuple
    input_data: bytes = b""
    engine: str | None = None
    max_instructions: int | None = None
    fault: str | None = None
    fault_arg: float = 0.0
    #: preemption slice: suspend after this many *further* executed
    #: instructions (relative, so the gateway passes the same slice when
    #: re-dispatching a snapshot) and return the encoded snapshot
    snapshot_at: int | None = None
    #: resume payload: an encoded snapshot to restore and continue instead
    #: of invoking ``export`` fresh
    snapshot: bytes | None = None
    #: serve from this worker's warm pool (instantiate once per process,
    #: reset a pooled instance per request)
    warm: bool = False
    #: distributed-trace context (``TraceContext.to_wire()`` tuple), set by
    #: the gateway only when the request is head-sampled — its presence is
    #: what arms the worker-side telemetry capture
    trace: tuple | None = None


@dataclass(frozen=True)
class WorkerResult:
    """A finished task: raw meter readings plus the worker's own wall time.

    ``snapshot`` set means the task was *preempted*, not completed: ``raw``
    carries the meters as of the capture (for checkpoint billing) and the
    gateway re-dispatches the snapshot to continue the job.
    """

    raw: RawExecution
    exec_wall_s: float
    snapshot: bytes | None = None
    #: backhauled worker telemetry (``TelemetryCapture.to_wire()`` dict):
    #: spans, events and metric deltas recorded while the task's trace
    #: context was active, merged by the gateway with origin-pid tagging
    telemetry: dict | None = None


def _cached_module(task: ExecutionTask) -> Module:
    with _MODULE_CACHE_LOCK:
        module = _MODULE_CACHE.get(task.module_hash)
        if module is not None:
            _MODULE_CACHE.move_to_end(task.module_hash)
            worker_event("module_cache", outcome="hit")
            return module
    # decode outside the lock — it is the expensive part, and two threads
    # decoding the same module concurrently is wasteful but harmless
    worker_event("module_cache", outcome="decode")
    module = decode_module(task.module_bytes)
    with _MODULE_CACHE_LOCK:
        if task.module_hash not in _MODULE_CACHE:
            while len(_MODULE_CACHE) >= _MODULE_CACHE_MAX:
                _MODULE_CACHE.popitem(last=False)
            _MODULE_CACHE[task.module_hash] = module
        else:
            _MODULE_CACHE.move_to_end(task.module_hash)
        return _MODULE_CACHE[task.module_hash]


#: Per-process warm pools keyed by (module hash, engine) — in the threaded
#: pool all workers share them (WarmPool itself is lock-protected).
_WARM_POOLS: "dict[tuple[bytes, str | None], WarmPool]" = {}
_WARM_POOLS_LOCK = threading.Lock()


def _warm_pool(task: ExecutionTask) -> WarmPool:
    key = (task.module_hash, task.engine)
    with _WARM_POOLS_LOCK:
        pool = _WARM_POOLS.get(key)
        if pool is None:
            pool = WarmPool(
                module=_cached_module(task), engine=task.engine, max_size=8
            )
            _WARM_POOLS[key] = pool
    return pool


def _raw_reading(
    task: ExecutionTask,
    module: Module,
    instance,
    env: HostEnvironment,
    channel: IOChannel,
    value,
    trapped: bool,
    trap_message: str,
) -> RawExecution:
    memory = instance.memory
    return RawExecution(
        workload_hash=task.module_hash,
        counter_value=int(instance.globals[task.counter_global_index].value),
        peak_memory_bytes=memory.peak_bytes if memory is not None else 0,
        initial_pages=module.memories[0].limits.minimum if module.memories else 0,
        grow_history=tuple(instance.stats.grow_history),
        io_bytes_in=env.account.bytes_in,
        io_bytes_out=env.account.bytes_out,
        value=value,
        trapped=trapped,
        trap_message=trap_message,
        output=bytes(channel.output),
    )


def execute_task(task: ExecutionTask) -> WorkerResult:
    """Run one request in this process and return its raw meter readings.

    Mirrors :meth:`AccountingEnclave.invoke`'s execution half exactly — a
    fresh instance per request, counter starting at zero — so that a
    gateway run and a serial in-enclave run of the same requests produce
    byte-identical resource vectors.

    Three variants share this entry point: a fresh invocation (the default),
    a warm-pool invocation (``task.warm`` — reset a pooled instance instead
    of instantiating), and a resume (``task.snapshot`` — restore a snapshot
    and continue the suspended call stack).  With ``task.snapshot_at`` set,
    any variant may *preempt* instead of completing: the result then carries
    the encoded snapshot and meters-as-of-capture for checkpoint billing.

    When the task carries a trace context (``task.trace``, set only for
    head-sampled requests), a :class:`~repro.obs.context.TelemetryCapture`
    is activated thread-locally for the task's duration: worker-side spans,
    events and metric deltas record into it and ship home on the result.
    A worker that crashes mid-task loses its capture with the process —
    which is the truthful telemetry for that hop.
    """
    started = time.perf_counter()
    if task.trace is None:
        return _execute_any(task, started)
    ctx = TraceContext.from_wire(task.trace)
    capture = TelemetryCapture(ctx)
    with activate(capture):
        with capture.span(
            "worker.task",
            hop=ctx.hop,
            resume=task.snapshot is not None,
            warm=task.warm,
        ) as root:
            result = _execute_any(task, started)
            root.set_attribute("preempted", result.snapshot is not None)
    return replace(result, telemetry=capture.to_wire())


def _execute_any(task: ExecutionTask, started: float) -> WorkerResult:
    """Dispatch one task to its variant (fault act-out happens first)."""
    if task.fault is not None:
        perform_pre_fault(task.fault, task.fault_arg)
    if task.snapshot is not None:
        return _execute_resume(task, started)
    module = _cached_module(task)
    limits = ExecutionLimits(
        max_instructions=task.max_instructions, snapshot_at=task.snapshot_at
    )
    handle = None
    with worker_span("worker.instantiate", warm=task.warm, engine=task.engine or ""):
        if task.warm:
            pool = _warm_pool(task)
            handle = pool.acquire(task.input_data, limits=limits)
            instance, env, channel = handle.instance, handle.env, handle.channel
        else:
            channel = IOChannel(input_data=task.input_data)
            env = HostEnvironment(channel=channel, account_io=True)
            instance = env.instantiate(module, limits=limits, engine=task.engine)

    trapped = False
    trap_message = ""
    value: object = None
    snapshot_blob: bytes | None = None
    with worker_span("worker.invoke", export=task.export) as invoke_span:
        try:
            value = instance.invoke(task.export, *task.args)
        except SnapshotCaptured as exc:
            snapshot_blob = encode_snapshot(with_io(exc.snapshot, env, channel))
            invoke_span.set_attribute("preempted", True)
        except Trap as exc:
            trapped = True
            trap_message = str(exc)
            invoke_span.set_attribute("trapped", True)

    raw = _raw_reading(task, module, instance, env, channel, value, trapped, trap_message)
    if task.fault == "corrupt":
        raw = corrupt_raw(raw)
    if handle is not None:
        pool.release(handle)
    return WorkerResult(
        raw=raw, exec_wall_s=time.perf_counter() - started, snapshot=snapshot_blob
    )


def _execute_resume(task: ExecutionTask, started: float) -> WorkerResult:
    """Restore ``task.snapshot`` and continue where the capture left off.

    ``task.snapshot_at`` is interpreted *relative* to the snapshot's
    position, so a preempting gateway dispatches the same slice size on
    every hop of a job.
    """
    with worker_span(
        "worker.restore", snapshot_bytes=len(task.snapshot), engine=task.engine or ""
    ):
        module = _cached_module(task)
        snap = decode_snapshot(task.snapshot)
        io = snap.io or IOState()
        channel = IOChannel(input_data=task.input_data)
        channel._read_pos = io.read_pos
        channel.output[:] = io.output
        env = HostEnvironment(channel=channel, account_io=True)
        env.account.bytes_in = io.bytes_in
        env.account.bytes_out = io.bytes_out
        env.account.calls = io.calls
        limits = ExecutionLimits(
            max_instructions=task.max_instructions,
            snapshot_at=(
                snap.executed + task.snapshot_at
                if task.snapshot_at is not None
                else None
            ),
        )
        instance = restore_instance(
            snap, module, imports=env.imports(), limits=limits, engine=task.engine
        )
        env.bind(instance)

    trapped = False
    trap_message = ""
    value: object = None
    snapshot_blob: bytes | None = None
    with worker_span("worker.resume_invoke", export=task.export) as invoke_span:
        try:
            value = resume_invoke(instance, snap)
        except SnapshotCaptured as exc:
            snapshot_blob = encode_snapshot(with_io(exc.snapshot, env, channel))
            invoke_span.set_attribute("preempted", True)
        except Trap as exc:
            trapped = True
            trap_message = str(exc)
            invoke_span.set_attribute("trapped", True)

    raw = _raw_reading(task, module, instance, env, channel, value, trapped, trap_message)
    if task.fault == "corrupt":
        raw = corrupt_raw(raw)
    return WorkerResult(
        raw=raw, exec_wall_s=time.perf_counter() - started, snapshot=snapshot_blob
    )


def cores_available() -> int:
    """CPU cores actually schedulable for this process (affinity-aware)."""
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class WorkerPool:
    """A bounded, self-healing pool of execution workers.

    ``kind="process"`` (the default) runs tasks in subprocesses;
    ``kind="thread"`` in threads.  If the process pool cannot be created
    (no ``fork``/``spawn`` support, restricted environments) the pool
    silently falls back to threads and records that in :attr:`kind`.

    A crashed worker process permanently breaks a
    ``ProcessPoolExecutor``; this pool survives it.  At most ``workers``
    tasks are ever inside the executor — the surplus waits in the pool's
    own backlog, which the executor never sees.  When the executor breaks
    it is replaced in place (counted in :attr:`rebuilds`), the backlog —
    provably queued, never started — drains transparently onto the
    replacement, and only the ≤ ``workers`` tasks that may have been
    mid-execution fail, with a typed
    :class:`~repro.service.faults.WorkerCrashed`, so the caller can apply
    its own retry policy without ever double-executing work.  After
    ``max_rebuilds`` process-pool rebuilds the pool degrades to threads
    permanently.

    ``adaptive=True`` probes the cores actually available to this process
    (cgroup/affinity aware) and shrinks a *process* pool to that count:
    oversubscribing CPU-bound workers past physical parallelism only adds
    scheduler thrash — the multi-worker cliff.  Thread pools are left
    alone (their workers block on I/O-ish waits, not cores).  The
    requested size stays visible as :attr:`requested_workers`.
    """

    def __init__(
        self,
        workers: int = 1,
        kind: str = "process",
        max_rebuilds: int = 3,
        adaptive: bool = False,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if kind not in ("process", "thread"):
            raise ValueError(f"unknown pool kind {kind!r}")
        self.requested_workers = workers
        if adaptive and kind == "process":
            workers = max(1, min(workers, cores_available()))
        self.workers = workers
        self.max_rebuilds = max_rebuilds
        self.rebuilds = 0
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()
        # guards _executor, _active, _backlog, rebuilds, _shutdown; never
        # held across executor calls or callbacks
        self._lock = threading.Lock()
        self._active = 0  # tasks currently inside the executor (≤ workers)
        self._backlog: "deque[tuple[ExecutionTask, Future]]" = deque()
        self._shutdown = False
        self._executor: Executor
        if kind == "process":
            try:
                self._executor = ProcessPoolExecutor(max_workers=workers)
            except (OSError, ValueError, NotImplementedError):
                kind = "thread"
        if kind == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="metering-worker"
            )
        self.kind = kind

    def submit(self, task: ExecutionTask) -> Future:
        """Schedule one task; the future resolves to a :class:`WorkerResult`.

        The returned future is the pool's own, not the executor's: tasks
        beyond the worker count wait in the pool's backlog, so a pool
        rebuild can transparently re-dispatch them without the caller (or
        the broken executor) ever noticing.
        """
        POOL_TASKS.inc()
        with self._in_flight_lock:
            self._in_flight += 1
            self._publish_load()
        outer: Future = Future()
        outer.add_done_callback(self._task_done)
        with self._lock:
            if self._shutdown:
                closed = True
                dispatch_now = False
            elif self._active < self.workers:
                closed = False
                self._active += 1
                dispatch_now = True
            else:
                closed = False
                self._backlog.append((task, outer))
                dispatch_now = False
        if closed:
            outer.set_exception(RuntimeError("worker pool shut down"))
        elif dispatch_now:
            self._dispatch(task, outer)
        return outer

    # -- dispatch & recovery -----------------------------------------------------

    def _dispatch(self, task: ExecutionTask, outer: Future) -> None:
        """Hand one task to the executor (the caller holds an active slot)."""
        for attempt in (0, 1):
            with self._lock:
                executor = self._executor
            try:
                inner = executor.submit(execute_task, task)
            except BrokenExecutor:
                # the submit itself failed, so the task never reached the
                # broken executor — rebuild and try once on the replacement
                self._rebuild(executor)
                if attempt == 0:
                    continue
                self._release_slot()
                outer.set_exception(
                    WorkerCrashed("worker pool broke repeatedly while dispatching")
                )
                return
            except RuntimeError as exc:  # executor shut down
                self._release_slot()
                outer.set_exception(exc)
                return
            inner.add_done_callback(lambda f: self._relay(f, executor, outer))
            return

    def _relay(self, inner: Future, executor: Executor, outer: Future) -> None:
        exc = inner.exception()
        if isinstance(exc, BrokenExecutor):
            self._rebuild(executor)
        self._release_slot()
        if isinstance(exc, BrokenExecutor):
            # the executor cannot say whether this task was mid-execution
            # when the worker died, so never silently re-run it — surface a
            # typed crash and let the gateway's bounded retry layer decide
            outer.set_exception(WorkerCrashed(str(exc) or "worker process died"))
        elif exc is not None:
            outer.set_exception(exc)
        else:
            outer.set_result(inner.result())

    def _release_slot(self) -> None:
        """Free one executor slot, draining the backlog onto the (possibly
        rebuilt) executor first — backlogged tasks provably never started."""
        with self._lock:
            if self._backlog:
                task, outer = self._backlog.popleft()  # slot stays occupied
            else:
                self._active -= 1
                return
        self._dispatch(task, outer)

    def _rebuild(self, broken: Executor) -> None:
        """Replace a broken executor in place (at most once per breakage)."""
        with self._lock:
            if self._executor is not broken or self._shutdown:
                return  # another thread already rebuilt (or we are closing)
            self.rebuilds += 1
            POOL_REBUILDS.inc()
            if self.kind == "process" and self.rebuilds <= self.max_rebuilds:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            else:
                # repeated breakage: degrade to threads for good
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="metering-worker"
                )
                self.kind = "thread"
            emit_event("pool_rebuild", rebuilds=self.rebuilds, pool_kind=self.kind)
        broken.shutdown(wait=False)

    # -- bookkeeping -------------------------------------------------------------

    def _task_done(self, future: Future) -> None:
        with self._in_flight_lock:
            self._in_flight = max(0, self._in_flight - 1)
            self._publish_load()
        if not future.cancelled() and future.exception() is None:
            POOL_EXEC_WALL.observe(future.result().exec_wall_s)

    def _publish_load(self) -> None:
        # caller holds _in_flight_lock
        POOL_TASKS_IN_FLIGHT.set(self._in_flight)
        POOL_UTILISATION.set(min(1.0, self._in_flight / self.workers))

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._shutdown = True
            executor = self._executor
            stranded = list(self._backlog)
            self._backlog.clear()
        for _task, outer in stranded:
            # backlogged tasks never reached the executor; fail them rather
            # than leave their futures pending forever
            outer.set_exception(RuntimeError("worker pool shut down"))
        executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
