"""The gateway's execution pool: run instrumented workloads concurrently.

Execution and accounting are deliberately split (see
:class:`repro.core.accounting_enclave.RawExecution`): workers — plain
processes, standing in for the per-request enclave instances of the paper's
FaaS deployment — execute the *already instrumented* module and return raw
meter readings; the tenant's accounting enclave back in the gateway process
turns those into signed receipts.  Workers therefore never hold signing
keys, and a compromised worker can at worst mis-execute its own tenant's
request — exactly the blast radius the two-way sandbox promises.

The default pool is a :class:`~concurrent.futures.ProcessPoolExecutor`
(real parallelism for the pure-Python interpreter); ``kind="thread"`` gives
a threaded fallback for platforms where subprocesses are unavailable, and is
also what the test suite uses for speed.  Each worker process keeps a small
module cache keyed by module hash, so per-request work is instantiate +
execute, matching the paper's cached-side-module FaaS setup (§4.3).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.accounting_enclave import RawExecution
from repro.obs.instruments import (
    POOL_EXEC_WALL,
    POOL_TASKS,
    POOL_TASKS_IN_FLIGHT,
    POOL_UTILISATION,
)
from repro.wasm.binary import decode_module
from repro.wasm.interpreter import ExecutionLimits, Trap
from repro.wasm.module import Module
from repro.wasm.runtime import HostEnvironment, IOChannel

#: Worker-side decoded-module cache (per process; in the threaded pool all
#: workers share it, which is safe because decoded modules are never mutated
#: by instantiation).
_MODULE_CACHE: dict[bytes, Module] = {}
_MODULE_CACHE_MAX = 64


@dataclass(frozen=True)
class ExecutionTask:
    """Everything a worker needs to run one request — plain bytes and ints,
    so it pickles cheaply across the process boundary."""

    module_bytes: bytes
    module_hash: bytes
    counter_global_index: int
    export: str
    args: tuple
    input_data: bytes = b""
    engine: str | None = None
    max_instructions: int | None = None


@dataclass(frozen=True)
class WorkerResult:
    """A finished task: raw meter readings plus the worker's own wall time."""

    raw: RawExecution
    exec_wall_s: float


def _cached_module(task: ExecutionTask) -> Module:
    module = _MODULE_CACHE.get(task.module_hash)
    if module is None:
        module = decode_module(task.module_bytes)
        if len(_MODULE_CACHE) >= _MODULE_CACHE_MAX:
            _MODULE_CACHE.pop(next(iter(_MODULE_CACHE)))
        _MODULE_CACHE[task.module_hash] = module
    return module


def execute_task(task: ExecutionTask) -> WorkerResult:
    """Run one request in this process and return its raw meter readings.

    Mirrors :meth:`AccountingEnclave.invoke`'s execution half exactly — a
    fresh instance per request, counter starting at zero — so that a
    gateway run and a serial in-enclave run of the same requests produce
    byte-identical resource vectors.
    """
    started = time.perf_counter()
    module = _cached_module(task)
    channel = IOChannel(input_data=task.input_data)
    env = HostEnvironment(channel=channel, account_io=True)
    limits = ExecutionLimits(max_instructions=task.max_instructions)
    instance = env.instantiate(module, limits=limits, engine=task.engine)

    trapped = False
    trap_message = ""
    value: object = None
    try:
        value = instance.invoke(task.export, *task.args)
    except Trap as exc:
        trapped = True
        trap_message = str(exc)

    memory = instance.memory
    raw = RawExecution(
        workload_hash=task.module_hash,
        counter_value=int(instance.globals[task.counter_global_index].value),
        peak_memory_bytes=memory.peak_bytes if memory is not None else 0,
        initial_pages=module.memories[0].limits.minimum if module.memories else 0,
        grow_history=tuple(instance.stats.grow_history),
        io_bytes_in=env.account.bytes_in,
        io_bytes_out=env.account.bytes_out,
        value=value,
        trapped=trapped,
        trap_message=trap_message,
        output=bytes(channel.output),
    )
    return WorkerResult(raw=raw, exec_wall_s=time.perf_counter() - started)


class WorkerPool:
    """A bounded pool of execution workers.

    ``kind="process"`` (the default) runs tasks in subprocesses;
    ``kind="thread"`` in threads.  If the process pool cannot be created
    (no ``fork``/``spawn`` support, restricted environments) the pool
    silently falls back to threads and records that in :attr:`kind`.
    """

    def __init__(self, workers: int = 1, kind: str = "process"):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if kind not in ("process", "thread"):
            raise ValueError(f"unknown pool kind {kind!r}")
        self.workers = workers
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()
        self._executor: Executor
        if kind == "process":
            try:
                self._executor = ProcessPoolExecutor(max_workers=workers)
            except (OSError, ValueError, NotImplementedError):
                kind = "thread"
        if kind == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="metering-worker"
            )
        self.kind = kind

    def submit(self, task: ExecutionTask) -> Future:
        """Schedule one task; the future resolves to a :class:`WorkerResult`."""
        POOL_TASKS.inc()
        with self._in_flight_lock:
            self._in_flight += 1
            self._publish_load()
        future = self._executor.submit(execute_task, task)
        future.add_done_callback(self._task_done)
        return future

    def _task_done(self, future: Future) -> None:
        with self._in_flight_lock:
            self._in_flight = max(0, self._in_flight - 1)
            self._publish_load()
        if not future.cancelled() and future.exception() is None:
            POOL_EXEC_WALL.observe(future.result().exec_wall_s)

    def _publish_load(self) -> None:
        # caller holds _in_flight_lock
        POOL_TASKS_IN_FLIGHT.set(self._in_flight)
        POOL_UTILISATION.set(min(1.0, self._in_flight / self.workers))

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
