"""Software simulation of Intel SGX (paper §2.2).

Implements, at the protocol level, everything AccTEE relies on from SGX:

* **enclaves** with code measurements (MRENCLAVE analogue) and data sealing;
* the **EPC** (enclave page cache) with its 128 MiB/93 MiB-usable limit and
  the paging cost cliff applications hit beyond it (the dominant overhead in
  the paper's Fig. 6 hardware-mode numbers);
* **local attestation** (platform-keyed reports between enclaves on one
  machine) and **remote attestation** (quoting enclave + an IAS-like
  verification service with RSA signatures from :mod:`repro.tcrypto`);
* the **SGX-LKL** layer: a syscall table split into calls servable inside
  the enclave and calls delegated to the untrusted host, with the
  enclave-transition cost model that explains the echo-function overheads in
  Fig. 9.

Everything is deterministic and seedable; no hardware is required, and the
trust decisions (measurement comparison, signature verification) are
executed for real rather than assumed.
"""

from repro.sgx.epc import EPCModel, EPC_USABLE_BYTES
from repro.sgx.enclave import Enclave, Report, SGXPlatform
from repro.sgx.attestation import (
    AttestationError,
    AttestationService,
    Quote,
    QuotingEnclave,
    VerificationReport,
)
from repro.sgx.lkl import SGXLKL, SyscallClass, SyscallProfile

__all__ = [
    "EPCModel",
    "EPC_USABLE_BYTES",
    "Enclave",
    "Report",
    "SGXPlatform",
    "AttestationError",
    "AttestationService",
    "Quote",
    "QuotingEnclave",
    "VerificationReport",
    "SGXLKL",
    "SyscallClass",
    "SyscallProfile",
]
