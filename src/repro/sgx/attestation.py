"""Remote attestation: quoting enclave, quotes and the IAS-like verifier.

Protocol (paper §2.2): a challenger sends a nonce; the application enclave
embeds it (with any user data, e.g. a fresh public key) in a local report;
the *quoting enclave* on the same platform verifies the report and signs a
*quote* with its provisioned attestation key; the challenger submits the
quote to the attestation service, which checks that the key belongs to a
registered, up-to-date platform and returns a signed verification report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.sgx.enclave import Enclave, Report, SGXPlatform
from repro.tcrypto.hashing import sha256
from repro.tcrypto.rsa import RSAKeyPair, RSAPublicKey, rsa_generate, rsa_sign, rsa_verify


class AttestationError(Exception):
    """Raised when attestation verification fails."""


@dataclass(frozen=True)
class Quote:
    """A signed attestation quote covering an enclave report."""

    mrenclave: bytes
    report_data: bytes
    platform_id: bytes
    qe_key_fingerprint: bytes
    signature: bytes

    def signed_body(self) -> bytes:
        return b"||".join(
            (self.mrenclave, self.report_data, self.platform_id, self.qe_key_fingerprint)
        )


@dataclass(frozen=True)
class VerificationReport:
    """The attestation service's signed verdict on a quote (IAS report)."""

    quote: Quote
    ok: bool
    advisory: str
    timestamp: float
    signature: bytes

    def signed_body(self) -> bytes:
        return b"||".join(
            (
                self.quote.signed_body(),
                b"OK" if self.ok else b"INVALID",
                self.advisory.encode("utf-8"),
                repr(self.timestamp).encode("ascii"),
            )
        )


class QuotingEnclave(Enclave):
    """The architectural enclave that turns local reports into signed quotes."""

    CODE = (b"acctee-sim quoting enclave v1",)

    def __init__(self, key_bits: int = 512, seed: int = 1):
        super().__init__("quoting-enclave", self.CODE)
        self._attestation_key: RSAKeyPair = rsa_generate(key_bits, seed=seed)

    @property
    def attestation_public_key(self) -> RSAPublicKey:
        return self._attestation_key.public

    def quote(self, report: Report) -> Quote:
        """Verify a sibling enclave's report and sign a quote over it."""
        if not self.platform.verify_report(report):
            raise AttestationError("local report verification failed")
        quote = Quote(
            mrenclave=report.mrenclave,
            report_data=report.report_data,
            platform_id=report.platform_id,
            qe_key_fingerprint=self._attestation_key.public.fingerprint(),
            signature=b"",
        )
        signature = rsa_sign(self._attestation_key, quote.signed_body())
        return Quote(
            mrenclave=quote.mrenclave,
            report_data=quote.report_data,
            platform_id=quote.platform_id,
            qe_key_fingerprint=quote.qe_key_fingerprint,
            signature=signature,
        )


@dataclass
class _RegisteredPlatform:
    public_key: RSAPublicKey
    tcb_up_to_date: bool = True


class AttestationService:
    """The IAS analogue: registers platforms and verifies quotes.

    Workload providers trust this service's signing key (out of band, like
    Intel's IAS root certificate) and accept a quote only with a positively
    signed verification report.
    """

    def __init__(self, key_bits: int = 512, seed: int = 2, clock=time.time):
        self._service_key = rsa_generate(key_bits, seed=seed)
        self._platforms: dict[bytes, _RegisteredPlatform] = {}
        self._clock = clock

    @property
    def public_key(self) -> RSAPublicKey:
        return self._service_key.public

    def provision(self, qe: QuotingEnclave, tcb_up_to_date: bool = True) -> None:
        """Register a quoting enclave's attestation key (EPID provisioning)."""
        fingerprint = qe.attestation_public_key.fingerprint()
        self._platforms[fingerprint] = _RegisteredPlatform(
            qe.attestation_public_key, tcb_up_to_date
        )

    def revoke(self, qe: QuotingEnclave) -> None:
        self._platforms.pop(qe.attestation_public_key.fingerprint(), None)

    def mark_tcb_outdated(self, qe: QuotingEnclave) -> None:
        entry = self._platforms.get(qe.attestation_public_key.fingerprint())
        if entry is not None:
            entry.tcb_up_to_date = False

    def verify_quote(self, quote: Quote) -> VerificationReport:
        """Check a quote and return a signed verification report."""
        entry = self._platforms.get(quote.qe_key_fingerprint)
        if entry is None:
            ok, advisory = False, "UNKNOWN_PLATFORM"
        elif not rsa_verify(entry.public_key, quote.signed_body(), quote.signature):
            ok, advisory = False, "INVALID_SIGNATURE"
        elif not entry.tcb_up_to_date:
            ok, advisory = False, "GROUP_OUT_OF_DATE"
        else:
            ok, advisory = True, "OK"
        report = VerificationReport(
            quote=quote, ok=ok, advisory=advisory, timestamp=self._clock(), signature=b""
        )
        signature = rsa_sign(self._service_key, report.signed_body())
        return VerificationReport(
            quote=report.quote,
            ok=report.ok,
            advisory=report.advisory,
            timestamp=report.timestamp,
            signature=signature,
        )


def verify_service_report(
    service_public_key: RSAPublicKey, report: VerificationReport
) -> bool:
    """Challenger-side check of an attestation service verdict."""
    return rsa_verify(service_public_key, report.signed_body(), report.signature)


def remote_attest(
    enclave: Enclave,
    qe: QuotingEnclave,
    service: AttestationService,
    nonce: bytes,
    user_data: bytes = b"",
) -> VerificationReport:
    """Run the full remote-attestation round trip for ``enclave``.

    The nonce and user data are bound into the report data, so a verifier
    checking ``report_data == sha256(nonce || user_data)`` gets freshness and
    a channel binding in one step.
    """
    report_data = sha256(nonce + user_data)
    report = enclave.report(report_data)
    quote = qe.quote(report)
    return service.verify_quote(quote)
