"""Enclaves, measurements, local-attestation reports and sealing.

An :class:`Enclave` is identified by the measurement of its code parts (the
MRENCLAVE analogue).  A :class:`SGXPlatform` represents one machine: it holds
the symmetric platform key that backs local attestation (in real SGX, the
report key derived by EREPORT/EGETKEY) and the EPC model shared by all
enclaves on the machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sgx.epc import EPCModel
from repro.tcrypto.hashing import measurement as measure_parts, sha256
from repro.tcrypto.hmac import hmac_sha256, verify_hmac


@dataclass(frozen=True)
class Report:
    """A local-attestation report: enclave identity + user data, platform-MACed.

    Only enclaves on the same platform can produce or verify these (they
    share the platform key through EGETKEY in real SGX).
    """

    mrenclave: bytes
    report_data: bytes
    platform_id: bytes
    mac: bytes

    def body(self) -> bytes:
        return b"||".join((self.mrenclave, self.report_data, self.platform_id))


class SGXPlatform:
    """One SGX-capable machine: platform key, EPC, and its resident enclaves."""

    def __init__(self, platform_id: str = "machine-0", seed: int = 0):
        self.platform_id = platform_id.encode("utf-8")
        rng = random.Random(seed ^ 0x5347585F)
        self._platform_key = sha256(
            b"platform-report-key" + self.platform_id + rng.randbytes(32)
        )
        self.epc = EPCModel()
        self.enclaves: list["Enclave"] = []

    def launch(self, enclave: "Enclave") -> None:
        enclave._platform = self
        self.enclaves.append(enclave)

    # -- local attestation primitives (EREPORT / report-key verify) -------------

    def create_report(self, enclave: "Enclave", report_data: bytes) -> Report:
        if enclave._platform is not self:
            raise ValueError("enclave is not resident on this platform")
        body = b"||".join((enclave.mrenclave, report_data, self.platform_id))
        return Report(
            mrenclave=enclave.mrenclave,
            report_data=report_data,
            platform_id=self.platform_id,
            mac=hmac_sha256(self._platform_key, body),
        )

    def verify_report(self, report: Report) -> bool:
        if report.platform_id != self.platform_id:
            return False
        return verify_hmac(self._platform_key, report.body(), report.mac)


class Enclave:
    """A loaded enclave: measured code plus private in-enclave state.

    ``code_parts`` is whatever byte material defines the enclave's identity —
    for AccTEE's accounting enclave that is the runtime code plus its
    configuration; both parties can recompute the expected measurement from
    the published sources (paper §3.3).
    """

    def __init__(self, name: str, code_parts: tuple[bytes, ...]):
        self.name = name
        self.code_parts = tuple(code_parts)
        self.mrenclave = measure_parts(*self.code_parts)
        self._platform: SGXPlatform | None = None
        self._sealed_store: dict[str, bytes] = {}

    @property
    def platform(self) -> SGXPlatform:
        if self._platform is None:
            raise RuntimeError(f"enclave {self.name!r} has not been launched")
        return self._platform

    # -- local attestation -------------------------------------------------------

    def report(self, report_data: bytes = b"") -> Report:
        """EREPORT: produce a report this platform's enclaves can verify."""
        if len(report_data) > 64:
            report_data = sha256(report_data)
        return self.platform.create_report(self, report_data)

    def verify_local(self, report: Report, expected_mrenclave: bytes) -> bool:
        """Verify a report from a sibling enclave on the same platform."""
        return (
            self.platform.verify_report(report)
            and report.mrenclave == expected_mrenclave
        )

    # -- sealing -------------------------------------------------------------------

    def _seal_key(self) -> bytes:
        # MRENCLAVE-policy sealing: key bound to platform and enclave identity
        return sha256(
            b"seal" + self.platform._platform_key + self.mrenclave
        )

    def seal(self, label: str, data: bytes) -> bytes:
        """Seal data to this enclave identity on this platform.

        Returns the sealed blob (MAC || data); only the same enclave identity
        on the same platform can unseal it.
        """
        blob = hmac_sha256(self._seal_key(), label.encode() + data) + data
        self._sealed_store[label] = blob
        return blob

    def unseal(self, label: str, blob: bytes) -> bytes:
        mac, data = blob[:32], blob[32:]
        if not verify_hmac(self._seal_key(), label.encode() + data, mac):
            raise ValueError("sealed blob fails authentication")
        return data
