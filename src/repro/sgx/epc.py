"""Enclave page cache (EPC) model.

SGX v1 reserves 128 MiB of physical memory for enclave pages, of which about
93 MiB are usable (paper §2.2).  When an enclave's working set exceeds this,
pages are securely evicted and reloaded (EWB/ELDU) with re-encryption and
integrity verification — a cost the paper identifies as the main contributor
to its hardware-mode overheads ("for programs with a large increase in
overhead ... we identified EPC paging as the main contributor", §5.1).

The model charges a per-access paging probability derived from the footprint
ratio and an access-pattern locality factor: linear sweeps page predictably
(one fault per page's worth of accesses), random access faults at the
footprint-miss ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Total reserved EPC and the usable share after SGX metadata (paper §2.2).
EPC_TOTAL_BYTES = 128 * 1024 * 1024
EPC_USABLE_BYTES = 93 * 1024 * 1024

PAGE_BYTES = 4096

#: Cost of one EPC paging event (EWB + ELDU: encrypt, evict, reload, verify).
#: Order of ~6 microseconds at ~3.4 GHz.
PAGING_CYCLES = 20_000.0


@dataclass
class EPCModel:
    """Charges paging overhead for a given enclave memory footprint.

    Calibrated so that the PolyBench kernels whose LARGE datasets exceed the
    EPC (footprints of 100-180 MiB) land at the 2-4x hardware-mode slowdowns
    of the paper's Fig. 6, while everything EPC-resident pays nothing.
    """

    usable_bytes: int = EPC_USABLE_BYTES
    paging_cycles: float = PAGING_CYCLES

    def excess_ratio(self, footprint_bytes: int) -> float:
        """Fraction of the footprint that cannot be EPC-resident."""
        if footprint_bytes <= self.usable_bytes:
            return 0.0
        return (footprint_bytes - self.usable_bytes) / footprint_bytes

    def fault_probability(self, footprint_bytes: int, locality: float) -> float:
        """Per-memory-access probability of an EPC fault.

        ``locality`` in [0, 1]: a pure linear sweep (1.0) faults once per
        4 KiB page of non-resident data (one fault per ~512 8-byte
        accesses); low-locality access patterns fault more often as the
        page working set churns, but still far below once-per-access —
        victim pages hold many lines that get re-used before eviction.
        """
        excess = self.excess_ratio(footprint_bytes)
        if excess == 0.0:
            return 0.0
        accesses_per_page = PAGE_BYTES / 8.0  # 512 element accesses per page
        linear_rate = excess / accesses_per_page
        churn_rate = excess / 32.0
        return locality * linear_rate + (1.0 - locality) * churn_rate

    def paging_overhead_cycles(
        self, footprint_bytes: int, memory_accesses: int, locality: float = 0.7
    ) -> float:
        """Total extra cycles paging adds to a run."""
        return (
            self.fault_probability(footprint_bytes, locality)
            * memory_accesses
            * self.paging_cycles
        )
