"""SGX-LKL simulation: running a Linux userland inside an enclave (paper §3.4).

SGX-LKL links the Linux Kernel Library into the enclave so most syscalls are
served *inside* the enclave (threading, memory management, signals), while
syscalls needing real external resources (network and disk I/O) are delegated
to the untrusted host through enclave exits — each exit/re-entry pair costs
thousands of cycles, which is what makes I/O-bound workloads (the Fig. 9 echo
function) so much slower under SGX.

The layer also models LKL's block-device encryption: delegated disk I/O pays
an AES-ish per-byte cost inside the enclave before leaving it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SyscallClass(enum.Enum):
    """Where a syscall is served under SGX-LKL."""

    IN_ENCLAVE = "in-enclave"  # served by LKL without leaving the enclave
    DELEGATED = "delegated"  # requires an enclave exit to the host


#: Classification of the syscalls our workloads issue.
SYSCALL_TABLE: dict[str, SyscallClass] = {
    # memory & scheduling: handled by LKL inside the enclave
    "mmap": SyscallClass.IN_ENCLAVE,
    "munmap": SyscallClass.IN_ENCLAVE,
    "brk": SyscallClass.IN_ENCLAVE,
    "futex": SyscallClass.IN_ENCLAVE,
    "clock_gettime": SyscallClass.IN_ENCLAVE,
    "getpid": SyscallClass.IN_ENCLAVE,
    "sched_yield": SyscallClass.IN_ENCLAVE,
    "sigaction": SyscallClass.IN_ENCLAVE,
    # external resources: delegated to the untrusted host
    "read": SyscallClass.DELEGATED,
    "write": SyscallClass.DELEGATED,
    "open": SyscallClass.DELEGATED,
    "close": SyscallClass.DELEGATED,
    "socket": SyscallClass.DELEGATED,
    "connect": SyscallClass.DELEGATED,
    "accept": SyscallClass.DELEGATED,
    "send": SyscallClass.DELEGATED,
    "recv": SyscallClass.DELEGATED,
    "fsync": SyscallClass.DELEGATED,
}

#: Cycle costs of the transition machinery.
EEXIT_EENTER_CYCLES = 9_000.0  # one exit + re-entry round trip
IN_ENCLAVE_SYSCALL_CYCLES = 450.0  # LKL service cost without transition
ENCRYPTION_CYCLES_PER_BYTE = 1.3  # block-device / TLS encryption inside


@dataclass
class SyscallProfile:
    """Accumulated syscall activity of one run."""

    counts: dict[str, int] = field(default_factory=dict)
    delegated_calls: int = 0
    in_enclave_calls: int = 0
    bytes_encrypted: int = 0

    def record(self, name: str, payload_bytes: int = 0) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        if SYSCALL_TABLE.get(name, SyscallClass.DELEGATED) is SyscallClass.DELEGATED:
            self.delegated_calls += 1
            self.bytes_encrypted += payload_bytes
        else:
            self.in_enclave_calls += 1


@dataclass
class SGXLKL:
    """The library-OS layer: charges transition and encryption costs."""

    encrypt_io: bool = True
    profile: SyscallProfile = field(default_factory=SyscallProfile)

    def syscall(self, name: str, payload_bytes: int = 0) -> float:
        """Issue one syscall; returns its cycle cost."""
        self.profile.record(name, payload_bytes)
        sclass = SYSCALL_TABLE.get(name, SyscallClass.DELEGATED)
        if sclass is SyscallClass.IN_ENCLAVE:
            return IN_ENCLAVE_SYSCALL_CYCLES
        cycles = EEXIT_EENTER_CYCLES + IN_ENCLAVE_SYSCALL_CYCLES
        if self.encrypt_io and payload_bytes:
            cycles += ENCRYPTION_CYCLES_PER_BYTE * payload_bytes
        return cycles

    def transition_overhead_cycles(self) -> float:
        """Total cycles spent on enclave transitions so far."""
        return self.profile.delegated_calls * EEXIT_EENTER_CYCLES

    def request_io_cycles(self, request_bytes: int, response_bytes: int) -> float:
        """Cost of serving one network request/response pair through LKL.

        Models what a Node.js HTTP server on SGX-LKL does per request:
        accept, a few reads, a few writes, close — with payload encryption.
        """
        total = 0.0
        total += self.syscall("accept")
        read_chunks = max(1, (request_bytes + 16383) // 16384)
        for _ in range(read_chunks):
            total += self.syscall("read", min(request_bytes, 16384))
        write_chunks = max(1, (response_bytes + 16383) // 16384)
        for _ in range(write_chunks):
            total += self.syscall("write", min(response_bytes, 16384))
        total += self.syscall("close")
        return total
