"""Discrete-event simulation substrate.

Stands in for the paper's evaluation harness hardware (two Xeon machines on
a switched 10 Gbps network driven by h2load): an event-driven simulator with
processes, FIFO-served multi-worker servers, network links with latency and
bandwidth, and a closed-loop load generator matching h2load's concurrent-
clients model.
"""

from repro.simnet.kernel import Event, Simulator, Process
from repro.simnet.network import NetworkLink
from repro.simnet.server import RequestServer, ServedRequest
from repro.simnet.loadgen import ClosedLoopLoadGenerator, LoadResult

__all__ = [
    "Event",
    "Simulator",
    "Process",
    "NetworkLink",
    "RequestServer",
    "ServedRequest",
    "ClosedLoopLoadGenerator",
    "LoadResult",
]
