"""Event-driven simulation kernel: a time-ordered callback queue.

Minimal but complete: deterministic tie-breaking (FIFO within a timestamp),
cancellable events, and generator-based processes for code that reads more
naturally as sequential steps with waits.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generator


@dataclass(order=True)
class Event:
    """A scheduled callback; compare by (time, sequence) for determinism."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """The event loop: schedule callbacks, run until quiescence or a horizon."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self.processed_events = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        event = Event(self.now + delay, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        return self.schedule(time - self.now, callback)

    def run(self, until: float | None = None) -> None:
        """Process events in order until the queue drains or ``until`` passes."""
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.processed_events += 1
            event.callback()
        if until is not None and self.now < until:
            self.now = until

    def start_process(self, generator: Generator[float, None, None]) -> "Process":
        """Run a generator that yields wait durations between steps."""
        process = Process(self, generator)
        process._step()
        return process


class Process:
    """A generator-backed sequential activity inside the simulation."""

    def __init__(self, sim: Simulator, generator: Generator[float, None, None]):
        self.sim = sim
        self._generator = generator
        self.finished = False

    def _step(self) -> None:
        try:
            delay = next(self._generator)
        except StopIteration:
            self.finished = True
            return
        self.sim.schedule(delay, self._step)
