"""Closed-loop load generator: the h2load model used in the paper (§5.3).

``clients`` concurrent clients each keep exactly one request outstanding:
send, wait for the response, immediately send again.  Throughput is measured
over a window after a warm-up period.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnet.kernel import Simulator
from repro.simnet.network import NetworkLink
from repro.simnet.server import RequestServer, ServedRequest


@dataclass
class LoadResult:
    """Outcome of one load-generation run."""

    requests_completed: int
    duration_s: float
    mean_latency_s: float

    @property
    def throughput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.requests_completed / self.duration_s


class ClosedLoopLoadGenerator:
    """Drives a :class:`RequestServer` with N always-on clients."""

    def __init__(
        self,
        sim: Simulator,
        server: RequestServer,
        link: NetworkLink | None = None,
        clients: int = 10,
        payload_bytes: int = 1024,
        response_bytes: int | None = None,
    ):
        self.sim = sim
        self.server = server
        self.link = link or NetworkLink()
        self.clients = clients
        self.payload_bytes = payload_bytes
        self.response_bytes = response_bytes if response_bytes is not None else payload_bytes
        self._measuring = False
        self._completed = 0
        self._latency_sum = 0.0

    def _client_send(self) -> None:
        delay = self.link.transfer_time(self.sim.now, self.payload_bytes)

        def deliver() -> None:
            self.server.submit(self.payload_bytes, self._on_response)

        self.sim.schedule(delay, deliver)

    def _on_response(self, request: ServedRequest) -> None:
        delay = self.link.transfer_time(self.sim.now, self.response_bytes)

        def arrive_back() -> None:
            if self._measuring:
                self._completed += 1
                self._latency_sum += self.sim.now - request.arrival
            self._client_send()

        self.sim.schedule(delay, arrive_back)

    def run(self, warmup_s: float = 0.5, measure_s: float = 5.0) -> LoadResult:
        """Run warm-up then a measurement window; returns aggregate results."""
        for _ in range(self.clients):
            self._client_send()

        def start_measuring() -> None:
            self._measuring = True

        self.sim.schedule(warmup_s, start_measuring)
        self.sim.run(until=self.sim.now + warmup_s + measure_s)
        mean_latency = self._latency_sum / self._completed if self._completed else 0.0
        return LoadResult(
            requests_completed=self._completed,
            duration_s=measure_s,
            mean_latency_s=mean_latency,
        )
