"""Network link model: latency plus serialisation delay on shared bandwidth."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class NetworkLink:
    """A point-to-point link like the paper's switched 10 Gbps network.

    The transfer time of a message is one propagation latency plus the
    serialisation time of its bytes at the link bandwidth.  Concurrent
    transfers share bandwidth implicitly by serialising on the link's
    availability cursor.
    """

    latency_s: float = 50e-6  # one-way switch + NIC latency
    bandwidth_bps: float = 10e9  # 10 Gbps

    def __post_init__(self) -> None:
        self._free_at = 0.0

    def transfer_time(self, now: float, payload_bytes: int) -> float:
        """Seconds until a message sent at ``now`` is fully delivered."""
        serialisation = payload_bytes * 8.0 / self.bandwidth_bps
        start = max(now, self._free_at)
        self._free_at = start + serialisation
        return (start - now) + serialisation + self.latency_s
