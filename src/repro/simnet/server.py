"""A multi-worker FIFO request server for the FaaS throughput experiments."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.simnet.kernel import Simulator


@dataclass
class ServedRequest:
    """Bookkeeping for one request through the server."""

    arrival: float
    start: float = 0.0
    completion: float = 0.0
    payload_bytes: int = 0

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    @property
    def queueing(self) -> float:
        return self.start - self.arrival


class RequestServer:
    """Serves requests FIFO across ``workers`` parallel executors.

    ``service_time`` maps a request payload size to seconds of busy executor
    time — in the FaaS scenario that function encapsulates the whole AccTEE
    stack (instantiation, Wasm execution, LKL I/O, SGX transitions).
    """

    def __init__(
        self,
        sim: Simulator,
        service_time: Callable[[int], float],
        workers: int = 1,
    ):
        self.sim = sim
        self.service_time = service_time
        self.workers = workers
        self._busy = 0
        self._queue: deque[tuple[ServedRequest, Callable[[ServedRequest], None]]] = deque()
        self.completed: list[ServedRequest] = []

    def submit(self, payload_bytes: int, on_done: Callable[[ServedRequest], None]) -> None:
        request = ServedRequest(arrival=self.sim.now, payload_bytes=payload_bytes)
        self._queue.append((request, on_done))
        self._try_dispatch()

    def _try_dispatch(self) -> None:
        while self._busy < self.workers and self._queue:
            request, on_done = self._queue.popleft()
            self._busy += 1
            request.start = self.sim.now
            duration = self.service_time(request.payload_bytes)

            def finish(req=request, done=on_done) -> None:
                req.completion = self.sim.now
                self.completed.append(req)
                self._busy -= 1
                done(req)
                self._try_dispatch()

            self.sim.schedule(duration, finish)

    @property
    def queue_length(self) -> int:
        return len(self._queue)
