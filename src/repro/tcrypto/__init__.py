"""Cryptographic substrate used by the simulated SGX stack.

Everything the attestation and evidence protocols need is implemented here
from first principles (on top of ``hashlib``'s SHA-256 compression function
only): HMAC, Miller-Rabin primality testing, RSA key generation and
PKCS#1 v1.5-style signatures.  The goal is not production cryptography but a
complete, self-contained and *deterministic* (seedable) implementation so the
trust protocol in :mod:`repro.sgx` and :mod:`repro.core` is executed for real
rather than stubbed.
"""

from repro.tcrypto.hashing import sha256, sha256_hex, measurement
from repro.tcrypto.hmac import hmac_sha256, verify_hmac
from repro.tcrypto.merkle import MerkleProof, MerkleTree, merkle_root, verify_proof
from repro.tcrypto.primes import is_probable_prime, generate_prime
from repro.tcrypto.rsa import RSAKeyPair, RSAPublicKey, rsa_generate, rsa_sign, rsa_verify

__all__ = [
    "sha256",
    "sha256_hex",
    "measurement",
    "hmac_sha256",
    "verify_hmac",
    "MerkleProof",
    "MerkleTree",
    "merkle_root",
    "verify_proof",
    "is_probable_prime",
    "generate_prime",
    "RSAKeyPair",
    "RSAPublicKey",
    "rsa_generate",
    "rsa_sign",
    "rsa_verify",
]
