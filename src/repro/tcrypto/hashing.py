"""Hashing helpers: SHA-256 digests and SGX-style enclave measurements."""

from __future__ import annotations

import hashlib


def sha256(data: bytes) -> bytes:
    """Return the raw 32-byte SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the hex-encoded SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def measurement(*parts: bytes) -> bytes:
    """Compute an SGX-style measurement (MRENCLAVE analogue) over code parts.

    Real SGX measures each page added with EADD/EEXTEND into MRENCLAVE.  We
    model this by hashing a length-prefixed concatenation of the enclave's
    code parts, which preserves the property that any change to any part
    changes the measurement and that no two distinct part sequences collide
    by concatenation ambiguity.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(8, "little"))
        h.update(part)
    return h.digest()
