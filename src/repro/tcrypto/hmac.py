"""HMAC-SHA256 implemented from the RFC 2104 construction."""

from __future__ import annotations

import hashlib

_BLOCK_SIZE = 64  # SHA-256 block size in bytes
_IPAD = bytes(0x36 for _ in range(_BLOCK_SIZE))
_OPAD = bytes(0x5C for _ in range(_BLOCK_SIZE))


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Compute HMAC-SHA256 of ``message`` under ``key``."""
    if len(key) > _BLOCK_SIZE:
        key = hashlib.sha256(key).digest()
    key = key.ljust(_BLOCK_SIZE, b"\x00")
    inner = hashlib.sha256(_xor(key, _IPAD) + message).digest()
    return hashlib.sha256(_xor(key, _OPAD) + inner).digest()


def verify_hmac(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time comparison of an HMAC tag."""
    expected = hmac_sha256(key, message)
    if len(expected) != len(tag):
        return False
    diff = 0
    for x, y in zip(expected, tag):
        diff |= x ^ y
    return diff == 0
