"""Merkle trees over billing receipts (epoch sealing).

The metering gateway seals each accounting epoch by building a Merkle tree
whose leaves are per-tenant chain-segment digests; publishing only the root
commits the provider to *every* tenant's receipts at once.  A tenant who
holds their own receipts plus an inclusion proof can audit their bill
without seeing any other tenant's data — the same aggregation shape S-FaaS
uses for per-request receipts.

Hashing is domain-separated (``0x00`` prefix for leaves, ``0x01`` for inner
nodes) so a leaf value can never be confused with an inner-node digest, and
an odd node at any level is promoted unchanged (no duplicate-last rule, so
``root([a, b]) != root([a, b, b])``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tcrypto.hashing import sha256

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def leaf_hash(data: bytes) -> bytes:
    """Hash one leaf value into the tree's leaf domain."""
    return sha256(_LEAF_PREFIX + data)


def node_hash(left: bytes, right: bytes) -> bytes:
    """Combine two child digests into their parent."""
    return sha256(_NODE_PREFIX + left + right)


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof: the sibling digests from one leaf up to the root.

    ``path`` lists ``(sibling_digest, sibling_is_right)`` pairs bottom-up;
    levels where the node was promoted without a sibling contribute nothing.
    """

    leaf_index: int
    leaf_count: int
    path: tuple[tuple[bytes, bool], ...]


class MerkleTree:
    """A Merkle tree over an ordered list of leaf values."""

    def __init__(self, leaves: list[bytes]):
        if not leaves:
            raise ValueError("a Merkle tree needs at least one leaf")
        self.leaf_count = len(leaves)
        # levels[0] is the leaf level, levels[-1] is [root]
        self.levels: list[list[bytes]] = [[leaf_hash(leaf) for leaf in leaves]]
        while len(self.levels[-1]) > 1:
            below = self.levels[-1]
            above = [
                node_hash(below[i], below[i + 1])
                for i in range(0, len(below) - 1, 2)
            ]
            if len(below) % 2:
                above.append(below[-1])  # odd node promoted unchanged
            self.levels.append(above)

    @property
    def root(self) -> bytes:
        return self.levels[-1][0]

    def proof(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < self.leaf_count:
            raise IndexError(f"leaf index {index} out of range")
        path: list[tuple[bytes, bool]] = []
        i = index
        for level in self.levels[:-1]:
            sibling = i ^ 1
            if sibling < len(level):
                path.append((level[sibling], sibling > i))
            i //= 2
        return MerkleProof(leaf_index=index, leaf_count=self.leaf_count, path=tuple(path))


def merkle_root(leaves: list[bytes]) -> bytes:
    """The root commitment over ``leaves`` (see :class:`MerkleTree`)."""
    return MerkleTree(leaves).root


def verify_proof(leaf: bytes, proof: MerkleProof, root: bytes) -> bool:
    """Check that ``leaf`` is committed under ``root`` at the proof's position."""
    digest = leaf_hash(leaf)
    for sibling, sibling_is_right in proof.path:
        if sibling_is_right:
            digest = node_hash(digest, sibling)
        else:
            digest = node_hash(sibling, digest)
    return digest == root
