"""Primality testing and prime generation for RSA key material.

Uses deterministic, seedable randomness (``random.Random``) so that test
fixtures and simulated attestation services can generate reproducible keys.
"""

from __future__ import annotations

import random

# Small primes used for fast trial-division rejection.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


def is_probable_prime(n: int, rounds: int = 32, rng: random.Random | None = None) -> bool:
    """Miller-Rabin probabilistic primality test.

    ``rounds`` bases are tested; the error probability is at most 4**-rounds
    for composite ``n``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random(0xACC7EE)
    # write n - 1 = d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random probable prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force bit length and oddness
        if is_probable_prime(candidate, rng=rng):
            return candidate
