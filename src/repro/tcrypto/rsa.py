"""RSA key generation and PKCS#1 v1.5-style SHA-256 signatures.

This is a from-scratch RSA used by the simulated SGX quoting enclave and the
instrumentation enclave to sign quotes, evidence blobs and resource usage
logs.  Key sizes are configurable so tests can use small (fast) keys while
examples use 2048-bit keys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.tcrypto.hashing import sha256
from repro.tcrypto.primes import generate_prime

# DER prefix for a SHA-256 DigestInfo, as in PKCS#1 v1.5 (RFC 8017 §9.2).
_SHA256_DIGEST_INFO = bytes.fromhex(
    "3031300d060960864801650304020105000420"
)


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> bytes:
        """Stable identifier for the key (hash of its encoding)."""
        n_bytes = self.n.to_bytes(self.byte_length, "big")
        e_bytes = self.e.to_bytes((self.e.bit_length() + 7) // 8 or 1, "big")
        return sha256(len(n_bytes).to_bytes(4, "big") + n_bytes + e_bytes)


@dataclass(frozen=True)
class RSAKeyPair:
    """An RSA key pair; ``public`` may be shared, ``d`` must not be."""

    public: RSAPublicKey
    d: int

    @property
    def n(self) -> int:
        return self.public.n


def rsa_generate(bits: int = 2048, seed: int | None = None) -> RSAKeyPair:
    """Generate an RSA key pair with a modulus of roughly ``bits`` bits."""
    if bits < 128:
        raise ValueError("RSA modulus must be at least 128 bits")
    rng = random.Random(seed)
    e = 65537
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        n = p * q
        d = pow(e, -1, phi)
        return RSAKeyPair(public=RSAPublicKey(n=n, e=e), d=d)


def _emsa_pkcs1_encode(message: bytes, em_len: int) -> int:
    """EMSA-PKCS1-v1_5 encoding of SHA-256(message) as an integer."""
    t = _SHA256_DIGEST_INFO + sha256(message)
    if em_len < len(t) + 11:
        raise ValueError("RSA modulus too small for SHA-256 signature")
    ps = b"\xff" * (em_len - len(t) - 3)
    em = b"\x00\x01" + ps + b"\x00" + t
    return int.from_bytes(em, "big")


def rsa_sign(key: RSAKeyPair, message: bytes) -> bytes:
    """Sign ``message`` (PKCS#1 v1.5 with SHA-256)."""
    k = key.public.byte_length
    m = _emsa_pkcs1_encode(message, k)
    s = pow(m, key.d, key.n)
    return s.to_bytes(k, "big")


def rsa_verify(public: RSAPublicKey, message: bytes, signature: bytes) -> bool:
    """Verify a signature produced by :func:`rsa_sign`."""
    k = public.byte_length
    if len(signature) != k:
        return False
    s = int.from_bytes(signature, "big")
    if s >= public.n:
        return False
    m = pow(s, public.e, public.n)
    try:
        expected = _emsa_pkcs1_encode(message, k)
    except ValueError:
        return False
    return m == expected
