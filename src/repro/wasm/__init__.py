"""WebAssembly substrate: types, IR, WAT parser/printer, binary codec, validator, interpreter.

This subpackage implements the WebAssembly MVP from scratch so that the
AccTEE instrumentation passes (:mod:`repro.instrument`) operate on real Wasm
modules and the interpreter provides ground-truth executed-instruction counts
against which instrumentation correctness is verified.

Typical round trip::

    from repro.wasm import parse_wat, print_wat, validate, Instance

    module = parse_wat(source)
    validate(module)
    instance = Instance(module)
    result = instance.invoke("main", 10)
"""

from repro.wasm.types import ValType, FuncType, Limits, GlobalType, MemoryType, TableType
from repro.wasm.instructions import Instr, OPCODES, INSTRUCTIONS_BY_NAME, ImmKind
from repro.wasm.module import (
    Module,
    Function,
    Global,
    Export,
    Import,
    DataSegment,
    ElemSegment,
)
from repro.wasm.wat_parser import parse_wat, WatParseError
from repro.wasm.wat_printer import print_wat
from repro.wasm.binary import encode_module, decode_module, BinaryFormatError
from repro.wasm.validate import validate, ValidationError
from repro.wasm.memory import LinearMemory, PAGE_SIZE
from repro.wasm.interpreter import Instance, Trap, ExecutionStats, HostFunction, ExecutionLimits
from repro.wasm.engines import (
    ENGINE_ENV_VAR,
    ENGINE_NAMES,
    UnknownEngineError,
    default_engine,
    resolve_engine,
)

__all__ = [
    "ValType",
    "FuncType",
    "Limits",
    "GlobalType",
    "MemoryType",
    "TableType",
    "Instr",
    "OPCODES",
    "INSTRUCTIONS_BY_NAME",
    "ImmKind",
    "Module",
    "Function",
    "Global",
    "Export",
    "Import",
    "DataSegment",
    "ElemSegment",
    "parse_wat",
    "WatParseError",
    "print_wat",
    "encode_module",
    "decode_module",
    "BinaryFormatError",
    "validate",
    "ValidationError",
    "LinearMemory",
    "PAGE_SIZE",
    "Instance",
    "Trap",
    "ExecutionStats",
    "ExecutionLimits",
    "HostFunction",
    "ENGINE_ENV_VAR",
    "ENGINE_NAMES",
    "UnknownEngineError",
    "default_engine",
    "resolve_engine",
]
