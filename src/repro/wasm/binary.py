"""WebAssembly binary format: encoder and decoder (MVP sections, LEB128).

Used for the paper's §5.4 binary-size experiment (instrumented binaries are
4-39 % larger naive, 4-27 % optimised) and to give modules a canonical byte
representation for enclave measurements and instrumentation evidence.
"""

from __future__ import annotations

import struct

from repro.wasm.instructions import ImmKind, Instr, INSTRUCTIONS_BY_NAME, INSTRUCTIONS_BY_OPCODE
from repro.wasm.module import (
    DataSegment,
    ElemSegment,
    Export,
    Function,
    Global,
    Import,
    Module,
)
from repro.wasm.types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

_SECTION_IDS = {
    "type": 1,
    "import": 2,
    "function": 3,
    "table": 4,
    "memory": 5,
    "global": 6,
    "export": 7,
    "start": 8,
    "elem": 9,
    "code": 10,
    "data": 11,
}

_EXPORT_KIND_CODES = {"func": 0, "table": 1, "memory": 2, "global": 3}
_EXPORT_KIND_NAMES = {v: k for k, v in _EXPORT_KIND_CODES.items()}


class BinaryFormatError(Exception):
    """Raised when a Wasm binary cannot be decoded."""


# ---------------------------------------------------------------------------
# LEB128
# ---------------------------------------------------------------------------


def encode_u32(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise ValueError("u32 must be non-negative")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_s64(value: int) -> bytes:
    """Signed LEB128 (used for i32/i64 const immediates)."""
    out = bytearray()
    more = True
    while more:
        byte = value & 0x7F
        value >>= 7
        sign_bit = byte & 0x40
        if (value == 0 and not sign_bit) or (value == -1 and sign_bit):
            more = False
        else:
            byte |= 0x80
        out.append(byte)
    return bytes(out)


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.data)

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise BinaryFormatError("unexpected end of binary")
        b = self.data[self.pos]
        self.pos += 1
        return b

    def bytes(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise BinaryFormatError("unexpected end of binary")
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def u32(self) -> int:
        result = 0
        shift = 0
        while True:
            b = self.byte()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                return result
            shift += 7
            if shift > 35:
                raise BinaryFormatError("u32 LEB128 too long")

    def s64(self) -> int:
        result = 0
        shift = 0
        while True:
            b = self.byte()
            result |= (b & 0x7F) << shift
            shift += 7
            if not b & 0x80:
                if shift < 64 and b & 0x40:
                    result |= -(1 << shift)
                # normalise into the signed 64-bit range (10-byte encodings
                # carry sign bits above bit 63 that must be folded away)
                result &= (1 << 64) - 1
                if result >= 1 << 63:
                    result -= 1 << 64
                return result
            if shift > 70:
                raise BinaryFormatError("s64 LEB128 too long")

    def name(self) -> str:
        length = self.u32()
        return self.bytes(length).decode("utf-8")


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def _encode_valtype(vt: ValType) -> bytes:
    return bytes([vt.binary_code])


def _encode_functype(ft: FuncType) -> bytes:
    out = bytearray(b"\x60")
    out += encode_u32(len(ft.params))
    for p in ft.params:
        out += _encode_valtype(p)
    out += encode_u32(len(ft.results))
    for r in ft.results:
        out += _encode_valtype(r)
    return bytes(out)


def _encode_limits(limits: Limits) -> bytes:
    if limits.maximum is None:
        return b"\x00" + encode_u32(limits.minimum)
    return b"\x01" + encode_u32(limits.minimum) + encode_u32(limits.maximum)


def _encode_globaltype(gt: GlobalType) -> bytes:
    return _encode_valtype(gt.valtype) + (b"\x01" if gt.mutable else b"\x00")


def _encode_name(name: str) -> bytes:
    raw = name.encode("utf-8")
    return encode_u32(len(raw)) + raw


def _encode_blocktype(results: tuple[ValType, ...]) -> bytes:
    if not results:
        return b"\x40"
    if len(results) != 1:
        raise BinaryFormatError("MVP block types allow at most one result")
    return _encode_valtype(results[0])


def encode_instr(instr: Instr) -> bytes:
    """Encode one instruction (opcode + immediates)."""
    info = instr.info
    out = bytearray([info.opcode])
    imm = info.imm
    if imm is ImmKind.NONE:
        pass
    elif imm is ImmKind.BLOCKTYPE:
        out += _encode_blocktype(instr.args[0])
    elif imm is ImmKind.DEPTH:
        out += encode_u32(instr.args[0])
    elif imm is ImmKind.BRTABLE:
        depths, default = instr.args
        out += encode_u32(len(depths))
        for d in depths:
            out += encode_u32(d)
        out += encode_u32(default)
    elif imm in (ImmKind.FUNC, ImmKind.LOCAL, ImmKind.GLOBAL):
        out += encode_u32(instr.args[0])
    elif imm is ImmKind.TYPE:
        out += encode_u32(instr.args[0]) + b"\x00"  # reserved table index
    elif imm is ImmKind.MEMARG:
        align, offset = instr.args
        align_log2 = max(0, align.bit_length() - 1)
        out += encode_u32(align_log2) + encode_u32(offset)
    elif imm is ImmKind.MEMORY:
        out += b"\x00"
    elif imm is ImmKind.I32:
        value = instr.args[0]
        if value >= 1 << 31:
            value -= 1 << 32
        out += encode_s64(value)
    elif imm is ImmKind.I64:
        value = instr.args[0]
        if value >= 1 << 63:
            value -= 1 << 64
        out += encode_s64(value)
    elif imm is ImmKind.F32:
        out += struct.pack("<f", _clamp_f32(instr.args[0]))
    elif imm is ImmKind.F64:
        out += struct.pack("<d", instr.args[0])
    else:  # pragma: no cover
        raise BinaryFormatError(f"unhandled immediate {imm}")
    return bytes(out)


def _clamp_f32(value: float) -> float:
    try:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    except OverflowError:
        return float("inf") if value > 0 else float("-inf")


def _encode_expr(body: list[Instr]) -> bytes:
    out = bytearray()
    for instr in body:
        out += encode_instr(instr)
    out += b"\x0b"  # end
    return bytes(out)


def _encode_code(func: Function) -> bytes:
    # group consecutive identical local types into (count, type) runs
    runs: list[tuple[int, ValType]] = []
    for vt in func.locals:
        if runs and runs[-1][1] is vt:
            runs[-1] = (runs[-1][0] + 1, vt)
        else:
            runs.append((1, vt))
    body = bytearray(encode_u32(len(runs)))
    for count, vt in runs:
        body += encode_u32(count) + _encode_valtype(vt)
    body += _encode_expr(func.body)
    return encode_u32(len(body)) + bytes(body)


def _section(section_id: int, payload: bytes) -> bytes:
    return bytes([section_id]) + encode_u32(len(payload)) + payload


def _vector(items: list[bytes]) -> bytes:
    out = bytearray(encode_u32(len(items)))
    for item in items:
        out += item
    return bytes(out)


def encode_module(module: Module) -> bytes:
    """Encode a module into the Wasm binary format."""
    out = bytearray(MAGIC + VERSION)
    if module.types:
        out += _section(1, _vector([_encode_functype(t) for t in module.types]))
    if module.imports:
        entries = []
        for imp in module.imports:
            entry = bytearray(_encode_name(imp.module) + _encode_name(imp.field))
            if imp.kind == "func":
                entry += b"\x00" + encode_u32(imp.desc)
            elif imp.kind == "table":
                entry += b"\x01\x70" + _encode_limits(imp.desc.limits)
            elif imp.kind == "memory":
                entry += b"\x02" + _encode_limits(imp.desc.limits)
            elif imp.kind == "global":
                entry += b"\x03" + _encode_globaltype(imp.desc)
            else:
                raise BinaryFormatError(f"bad import kind {imp.kind}")
            entries.append(bytes(entry))
        out += _section(2, _vector(entries))
    if module.funcs:
        out += _section(3, _vector([encode_u32(f.type_index) for f in module.funcs]))
    if module.tables:
        out += _section(4, _vector([b"\x70" + _encode_limits(t.limits) for t in module.tables]))
    if module.memories:
        out += _section(5, _vector([_encode_limits(m.limits) for m in module.memories]))
    if module.globals:
        out += _section(
            6,
            _vector(
                [_encode_globaltype(g.type) + _encode_expr(g.init) for g in module.globals]
            ),
        )
    if module.exports:
        out += _section(
            7,
            _vector(
                [
                    _encode_name(e.name) + bytes([_EXPORT_KIND_CODES[e.kind]]) + encode_u32(e.index)
                    for e in module.exports
                ]
            ),
        )
    if module.start is not None:
        out += _section(8, encode_u32(module.start))
    if module.elems:
        entries = []
        for elem in module.elems:
            entry = encode_u32(elem.table_index) + _encode_expr(elem.offset)
            entry += _vector([encode_u32(i) for i in elem.func_indices])
            entries.append(entry)
        out += _section(9, _vector(entries))
    if module.funcs:
        out += _section(10, _vector([_encode_code(f) for f in module.funcs]))
    if module.data:
        entries = []
        for seg in module.data:
            entry = encode_u32(seg.memory_index) + _encode_expr(seg.offset)
            entry += encode_u32(len(seg.data)) + seg.data
            entries.append(entry)
        out += _section(11, _vector(entries))
    return bytes(out)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def _decode_valtype(reader: _Reader) -> ValType:
    return ValType.from_binary_code(reader.byte())


def _decode_limits(reader: _Reader) -> Limits:
    flag = reader.byte()
    if flag == 0:
        return Limits(reader.u32())
    if flag == 1:
        return Limits(reader.u32(), reader.u32())
    raise BinaryFormatError(f"bad limits flag {flag}")


def _decode_globaltype(reader: _Reader) -> GlobalType:
    vt = _decode_valtype(reader)
    mut = reader.byte()
    if mut not in (0, 1):
        raise BinaryFormatError(f"bad mutability flag {mut}")
    return GlobalType(vt, mutable=bool(mut))


def decode_instr(reader: _Reader) -> Instr:
    """Decode one instruction."""
    opcode = reader.byte()
    info = INSTRUCTIONS_BY_OPCODE.get(opcode)
    if info is None:
        raise BinaryFormatError(f"unknown opcode 0x{opcode:02x}")
    imm = info.imm
    if imm is ImmKind.NONE:
        return Instr(info.name)
    if imm is ImmKind.BLOCKTYPE:
        code = reader.byte()
        if code == 0x40:
            return Instr(info.name, ((),))
        return Instr(info.name, ((ValType.from_binary_code(code),),))
    if imm is ImmKind.DEPTH:
        return Instr(info.name, (reader.u32(),))
    if imm is ImmKind.BRTABLE:
        count = reader.u32()
        depths = tuple(reader.u32() for _ in range(count))
        return Instr(info.name, (depths, reader.u32()))
    if imm in (ImmKind.FUNC, ImmKind.LOCAL, ImmKind.GLOBAL):
        return Instr(info.name, (reader.u32(),))
    if imm is ImmKind.TYPE:
        type_index = reader.u32()
        reserved = reader.byte()
        if reserved != 0:
            raise BinaryFormatError("call_indirect reserved byte must be zero")
        return Instr(info.name, (type_index,))
    if imm is ImmKind.MEMARG:
        align_log2 = reader.u32()
        offset = reader.u32()
        return Instr(info.name, (1 << align_log2, offset))
    if imm is ImmKind.MEMORY:
        reader.byte()
        return Instr(info.name, (0,))
    if imm is ImmKind.I32:
        return Instr(info.name, (reader.s64() & 0xFFFFFFFF,))
    if imm is ImmKind.I64:
        return Instr(info.name, (reader.s64() & 0xFFFFFFFFFFFFFFFF,))
    if imm is ImmKind.F32:
        return Instr(info.name, (struct.unpack("<f", reader.bytes(4))[0],))
    if imm is ImmKind.F64:
        return Instr(info.name, (struct.unpack("<d", reader.bytes(8))[0],))
    raise BinaryFormatError(f"unhandled immediate {imm}")  # pragma: no cover


def _decode_expr(reader: _Reader) -> list[Instr]:
    """Decode instructions until the matching top-level ``end`` (consumed)."""
    out: list[Instr] = []
    depth = 0
    while True:
        instr = decode_instr(reader)
        if instr.name in ("block", "loop", "if"):
            depth += 1
        elif instr.name == "end":
            if depth == 0:
                return out
            depth -= 1
        out.append(instr)


def decode_module(data: bytes) -> Module:
    """Decode a Wasm binary into a :class:`~repro.wasm.module.Module`."""
    reader = _Reader(data)
    if reader.bytes(4) != MAGIC:
        raise BinaryFormatError("bad magic")
    if reader.bytes(4) != VERSION:
        raise BinaryFormatError("unsupported version")
    module = Module()
    func_type_indices: list[int] = []
    while not reader.eof():
        section_id = reader.byte()
        size = reader.u32()
        section = _Reader(reader.bytes(size))
        if section_id == 0:  # custom section: skip
            continue
        if section_id == 1:
            for _ in range(section.u32()):
                if section.byte() != 0x60:
                    raise BinaryFormatError("bad functype tag")
                params = tuple(_decode_valtype(section) for _ in range(section.u32()))
                results = tuple(_decode_valtype(section) for _ in range(section.u32()))
                module.types.append(FuncType(params, results))
        elif section_id == 2:
            for _ in range(section.u32()):
                mod_name = section.name()
                field_name = section.name()
                kind = section.byte()
                if kind == 0:
                    module.imports.append(Import(mod_name, field_name, "func", section.u32()))
                elif kind == 1:
                    if section.byte() != 0x70:
                        raise BinaryFormatError("bad table elem type")
                    module.imports.append(
                        Import(mod_name, field_name, "table", TableType(_decode_limits(section)))
                    )
                elif kind == 2:
                    module.imports.append(
                        Import(mod_name, field_name, "memory", MemoryType(_decode_limits(section)))
                    )
                elif kind == 3:
                    module.imports.append(
                        Import(mod_name, field_name, "global", _decode_globaltype(section))
                    )
                else:
                    raise BinaryFormatError(f"bad import kind {kind}")
        elif section_id == 3:
            func_type_indices = [section.u32() for _ in range(section.u32())]
        elif section_id == 4:
            for _ in range(section.u32()):
                if section.byte() != 0x70:
                    raise BinaryFormatError("bad table elem type")
                module.tables.append(TableType(_decode_limits(section)))
        elif section_id == 5:
            for _ in range(section.u32()):
                module.memories.append(MemoryType(_decode_limits(section)))
        elif section_id == 6:
            for _ in range(section.u32()):
                gt = _decode_globaltype(section)
                module.globals.append(Global(gt, _decode_expr(section)))
        elif section_id == 7:
            for _ in range(section.u32()):
                name = section.name()
                kind = section.byte()
                if kind not in _EXPORT_KIND_NAMES:
                    raise BinaryFormatError(f"bad export kind {kind}")
                module.exports.append(Export(name, _EXPORT_KIND_NAMES[kind], section.u32()))
        elif section_id == 8:
            module.start = section.u32()
        elif section_id == 9:
            for _ in range(section.u32()):
                table_index = section.u32()
                offset = _decode_expr(section)
                refs = tuple(section.u32() for _ in range(section.u32()))
                module.elems.append(ElemSegment(table_index, offset, refs))
        elif section_id == 10:
            for i in range(section.u32()):
                size = section.u32()
                body_reader = _Reader(section.bytes(size))
                local_types: list[ValType] = []
                for _ in range(body_reader.u32()):
                    count = body_reader.u32()
                    vt = _decode_valtype(body_reader)
                    local_types.extend([vt] * count)
                body = _decode_expr(body_reader)
                if i >= len(func_type_indices):
                    raise BinaryFormatError("code entry without function declaration")
                module.funcs.append(
                    Function(func_type_indices[i], tuple(local_types), body)
                )
        elif section_id == 11:
            for _ in range(section.u32()):
                memory_index = section.u32()
                offset = _decode_expr(section)
                length = section.u32()
                module.data.append(DataSegment(memory_index, offset, section.bytes(length)))
        else:
            raise BinaryFormatError(f"unknown section id {section_id}")
    if len(func_type_indices) != len(module.funcs):
        raise BinaryFormatError("function and code section lengths disagree")
    return module
