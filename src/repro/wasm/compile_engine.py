"""Wasm -> Python compilation engine with folded meter counters.

The predecode engine (:mod:`repro.wasm.predecode`) removed per-instruction
*dispatch* from the hot path but still pays one Python closure call per
instruction.  This module removes the calls too, the way AccTEE folds its
accounting into the instrumented module itself (paper §3.2): each validated
function body is translated once into Python **source** —

* straight-line basic blocks become sequences of native Python statements
  over a *registerised* operand stack (``s0``, ``s1``, ...; the wasm operand
  depth at every instruction is static, so stack slots compile to Python
  locals and pushes/pops vanish);
* structured control flow becomes real Python ``while``/``if`` statements.
  Only constructs that are branch *targets* get a ``while True:`` wrapper;
  multi-level ``br`` is compiled to a small ``_br`` cascade that unwinds one
  wrapper per level, so irreducible dispatch loops are never needed for
  valid wasm structured control;
* the per-basic-block meter increments (``visits``/``executed``/``cycles``)
  are folded into the generated code as constant-amount updates, with the
  same budget/progress boundary check as the predecode engine and the same
  per-instruction step-mode fallback when a boundary lands inside a block;
* trap attribution mirrors predecode exactly: blocks that may trap run under
  ``try``, record the trapping position in ``_tp``, and roll back the
  not-executed suffix so :class:`ExecutionStats` stay byte-identical.

Generated code objects are cached per ``(module fingerprint, cost
signature)`` — the same keying discipline as
:class:`repro.core.cache.InstrumentationCache` — so instantiating the same
module repeatedly (worker pools, the gateway) compiles once.  Any function
the translator cannot handle (deeper nesting than Python's indentation
limit, multi-result functions, ...) falls back *per function* to the
predecode engine, which is itself stats-identical, so coverage is never a
correctness risk.  ``CompiledEngine.fallback_functions`` reports which
functions (if any) took that path.
"""

from __future__ import annotations

import math
import re
import struct
import threading
from collections import OrderedDict

from repro.wasm.instructions import SEGMENT_BARRIERS, TRAPPING_INSTRUCTIONS, Instr
from repro.wasm.interpreter import (
    Trap,
    _clz,
    _ctz,
    _f32,
    _float_max,
    _float_min,
    _nearest,
    _rotl,
    _rotr,
    _signed,
    _trunc_div,
    _trunc_rem,
    _trunc_to_int,
    build_structure_map,
)
from repro.wasm.memory import MemoryAccessError
from repro.wasm.predecode import PredecodedEngine, _compile_simple, _Segment

#: Python's tokenizer rejects indentation deeper than 100 levels; leave slack.
_MAX_INDENT = 90


class CompileError(Exception):
    """A function body the translator cannot handle (falls back, per function)."""


# ---------------------------------------------------------------------------
# Compiled-code cache, keyed like the InstrumentationCache
# ---------------------------------------------------------------------------


class _FuncCode:
    """Translation result for one defined function (or a fallback marker)."""

    __slots__ = ("code", "consts", "segs", "error")

    def __init__(self, code, consts, segs, error=None):
        self.code = code        # code object, or None -> predecode fallback
        self.consts = consts    # tuple referenced as _K{i}[j] in generated code
        self.segs = segs        # tuple of (start_pc, count) per basic block
        self.error = error      # why translation fell back, for diagnostics


class _ModuleCode:
    __slots__ = ("funcs",)

    def __init__(self, funcs):
        self.funcs = funcs


class _CodeCache:
    """LRU cache of :class:`_ModuleCode` per (module digest, cost signature).

    Same shape as :class:`repro.core.cache.InstrumentationCache`: bounded,
    thread-safe, with hit/miss/eviction counters surfaced via
    :func:`code_cache_stats`.
    """

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


_CODE_CACHE = _CodeCache()


def code_cache_stats() -> dict:
    """Hit/miss/eviction counters of the process-wide compiled-code cache."""
    return _CODE_CACHE.stats()


def clear_code_cache() -> None:
    """Drop every cached translation (tests / memory pressure)."""
    _CODE_CACHE.clear()


def _cost_signature(cost_model):
    if cost_model is None:
        return None
    return tuple(sorted(cost_model.cycle_weights.items()))


def _module_key(module, cost_model):
    try:
        from repro.tcrypto.hashing import sha256
        from repro.wasm.binary import encode_module

        return (sha256(encode_module(module)), _cost_signature(cost_model))
    except Exception:
        return None  # unencodable module: compile uncached


# ---------------------------------------------------------------------------
# Translation: one defined function body -> Python source
# ---------------------------------------------------------------------------

_I_CMP_U = {"eq": "==", "ne": "!=", "lt_u": "<", "gt_u": ">", "le_u": "<=", "ge_u": ">="}
_I_CMP_S = {"lt_s": "<", "gt_s": ">", "le_s": "<=", "ge_s": ">="}
_F_CMP = {"eq": "==", "ne": "!=", "lt": "<", "gt": ">", "le": "<=", "ge": ">="}
# masked wrap-around arithmetic vs. bitwise ops the legacy engine leaves
# unmasked (operand values are already canonical, results stay canonical)
_I_BIN = {"add": "+", "sub": "-", "mul": "*"}
_I_BIT = {"and": "&", "or": "|", "xor": "^"}

#: operands cheap enough to re-evaluate or leave pending: names, int literals
_SIMPLE_EXPR = re.compile(r"-?\d+|[A-Za-z_][A-Za-z0-9_]*")


def _as_int(expr: str) -> int | None:
    """The integer value of a literal operand expression, else ``None``."""
    try:
        return int(expr)
    except ValueError:
        return None


def _sg32(v: int) -> int:
    return v - 0x100000000 if v >= 0x80000000 else v


def _sg64(v: int) -> int:
    return v - 0x10000000000000000 if v >= 0x8000000000000000 else v


def _flush_visits(S, V, vp, sv) -> None:
    """Apply deferred per-batch accounting deltas to the live stats.

    ``vp[i]`` counts fast-path executions of batch ``i`` since the last
    flush; ``sv[i]`` is that batch's constant delta ``(cycles, visit_pairs,
    loads, stores, bytes_loaded, bytes_stored)``.  Between observation
    points (budget traps, progress callbacks, calls, returns, step-mode)
    the drift is unobservable, so the hot path pays one list increment per
    block instead of one Counter update per opcode.  ``cycles * n`` is
    exact: cycle weights are dyadic and counts are integers.
    """
    for i, n in enumerate(vp):
        if n:
            vp[i] = 0
            cyc, pairs, ld, st, bl, bs = sv[i]
            if cyc:
                S.cycles += cyc * n
            if ld:
                S.loads += ld * n
                S.bytes_loaded += bl * n
            if st:
                S.stores += st * n
                S.bytes_stored += bs * n
            for nm, c in pairs:
                V[nm] += c * n


class _Frame:
    __slots__ = (
        "kind", "h", "arity", "results", "wrapped", "escapes",
        "in_else", "end_reachable", "marker", "has_else",
    )

    def __init__(self, kind, h, arity, results, wrapped, escapes, has_else):
        self.kind = kind
        self.h = h                  # operand depth at entry (after if-cond pop)
        self.arity = arity          # branch label arity (0 for loop)
        self.results = results      # values left by the construct's end
        self.wrapped = wrapped      # emitted a `while True:` (branch target)
        self.escapes = escapes      # some branch passes through this construct
        self.has_else = has_else
        self.in_else = False
        self.end_reachable = False
        self.marker = 0             # start-of-suite line index (for `pass`)


class _Translator:
    """Translates one function body; raises :class:`CompileError` to decline."""

    def __init__(self, module, defined_index: int, cost_model, has_memory: bool):
        self.module = module
        self.fidx = defined_index
        self.func = module.funcs[defined_index]
        self.body = self.func.body
        self.functype = module.types[self.func.type_index]
        self.cost = cost_model
        self.cost_on = cost_model is not None
        self.has_memory = has_memory
        self.lines: list[str] = []
        self.ind = 0
        # consts[0] is reserved for the per-batch accounting-delta tuple
        # (filled in at the end of translate(); referenced as _SV)
        self.consts: list = [None]
        self.batches: list = []
        self.segs: list[tuple[int, int]] = []
        # pending charge batch: control charges and at most one basic block
        # whose meter updates are folded into a single boundary check
        self.lead: list[tuple[str, float]] = []
        self.seg: dict | None = None
        self.trail: list[tuple[str, float]] = []
        # symbolic operand stack for the block under translation
        self.tctr = 0
        self._sym: list[str] = []
        self._deps: list[set] = []

    # -- emission helpers ----------------------------------------------------

    def emit(self, line: str) -> None:
        if self.ind > _MAX_INDENT:
            raise CompileError("nesting exceeds Python indentation limit")
        self.lines.append("    " * self.ind + line)

    def _cycles_of(self, name: str) -> float:
        return self.cost.instruction_cycles(name) if self.cost_on else 0.0

    def const(self, value) -> str:
        self.consts.append(value)
        return f"_K{self.fidx}[{len(self.consts) - 1}]"

    def _float_literal(self, value: float) -> str:
        if value != value:
            return "_NAN"
        if value == math.inf:
            return "_INF"
        if value == -math.inf:
            return "-_INF"
        return repr(value)

    def emit_charge(self, name: str) -> None:
        """Queue the meter charge for one control instruction.

        Charges are not emitted where they occur: between two observation
        points (traps, callbacks, calls, returns, branch decisions) the
        accounting is unobservable, so consecutive charges are batched into
        the adjacent basic block's single boundary check — the compile-time
        equivalent of AccTEE folding per-block counter increments into the
        instrumented code.  ``flush()`` materialises the batch; callers
        flush before emitting anything the meter state can influence.
        """
        entry = (name, self._cycles_of(name))
        (self.trail if self.seg is not None else self.lead).append(entry)

    def _emit_charge_now(self, name: str, cyc: float) -> None:
        """The exact legacy-order charge (batch slow path / single charges).

        ``executed`` lives in the local ``_ex`` (the folded meter register);
        it is flushed to ``S.executed`` at every point the stats become
        observable — budget traps, progress callbacks, calls, returns.
        """
        line = f'V["{name}"] += 1; _ex += 1'
        if self.cost_on and cyc != 0.0:
            line += f"; S.cycles += {cyc!r}"
        self.emit(line)
        self.emit(
            "if _ex > mi: S.executed = _ex; _fv(S, V, _vp, _SV); "
            'raise Trap("instruction budget exhausted")'
        )
        self.emit(
            "if _pb and _ex % pi == 0: "
            "S.executed = _ex; _fv(S, V, _vp, _SV); cb(S); _ex = S.executed"
        )

    def _emit_visit_updates(self, charges, seg_names) -> None:
        """Merged ``V[...] += c`` lines for a whole batch."""
        delta: dict[str, int] = {}
        for name, _cyc in charges:
            delta[name] = delta.get(name, 0) + 1
        for name in seg_names:
            delta[name] = delta.get(name, 0) + 1
        for name, c in delta.items():
            self.emit(f'V["{name}"] += {c}')

    def _register_batch(self, charges, seg) -> int:
        """Record a fast-path batch's constant accounting delta; returns id."""
        delta: dict[str, int] = {}
        for name, _cyc in charges:
            delta[name] = delta.get(name, 0) + 1
        for name in seg["names"] if seg else ():
            delta[name] = delta.get(name, 0) + 1
        cyc = 0.0
        if self.cost_on:
            cyc = sum(c for _nm, c in charges)
            if seg:
                cyc += sum(seg["op_cycles"])
        ld, st, bl, bs = seg["mem"] if seg else (0, 0, 0, 0)
        self.batches.append((cyc, tuple(delta.items()), ld, st, bl, bs))
        return len(self.batches) - 1

    def flush(self) -> None:
        """Emit the pending charge batch under one budget/progress check."""
        lead, seg, trail = self.lead, self.seg, self.trail
        if seg is None and not lead:
            return
        self.lead, self.seg, self.trail = [], None, []
        if seg is None:
            total = len(lead)
            cycles_sum = sum(cyc for _nm, cyc in lead)
            self.emit(
                f"if _ex + {total} > mi or "
                f"(_pb and (_ex + {total}) // pi != _ex // pi):"
            )
            self.ind += 1
            for name, cyc in lead:
                self._emit_charge_now(name, cyc)
            self.ind -= 1
            self.emit("else:")
            self.ind += 1
            bid = self._register_batch(lead, None)
            self.emit(f"_ex += {total}")
            self.emit(f"_vp[{bid}] += 1")
            self.ind -= 1
            return
        self._flush_with_segment(lead, seg, trail)

    def _flush_with_segment(self, lead, seg, trail) -> None:
        start, count = seg["start"], seg["count"]
        total = len(lead) + count + len(trail)
        cycles_sum = (
            sum(cyc for _nm, cyc in lead)
            + sum(seg["op_cycles"])
            + sum(cyc for _nm, cyc in trail)
        )
        n_locals = len(self.functype.params) + len(self.func.locals)
        self.emit(f"if P is not None: P.record_segment(_lbl, {start}, {count})")
        self.emit(
            f"if _ex + {total} > mi or "
            f"(_pb and (_ex + {total}) // pi != _ex // pi):"
        )
        self.ind += 1
        for name, cyc in lead:
            self._emit_charge_now(name, cyc)
        self.emit("S.executed = _ex; _fv(S, V, _vp, _SV)")
        loc = ", ".join(f"l{i}" for i in range(n_locals))
        self.emit(f"_loc = [{loc}]" if n_locals else "_loc = []")
        stk = ", ".join(f"s{i}" for i in range(seg["d0"]))
        self.emit(f"_stk = [{stk}]" if seg["d0"] else "_stk = []")
        self.emit(f"_E._step({self.fidx}, {seg['index']}, _stk, _loc)")
        self.emit("_ex = S.executed")
        for i in seg["written_locals"]:
            self.emit(f"l{i} = _loc[{i}]")
        d1 = seg["d1"]
        if d1 == 1:
            self.emit("s0, = _stk")
        elif d1 > 1:
            self.emit(", ".join(f"s{i}" for i in range(d1)) + " = _stk")
        for name, cyc in trail:
            self._emit_charge_now(name, cyc)
        self.ind -= 1
        self.emit("else:")
        self.ind += 1
        bid = self._register_batch(lead + trail, seg)
        self.emit(f"_ex += {total}")
        self.emit(f"_vp[{bid}] += 1")
        buf = seg["buf"]
        if seg["can_trap"]:
            self.emit("_tp = -1")
            self.emit("try:")
            self.ind += 1
            for line in buf:
                self.emit(line)
            if not buf:
                self.emit("pass")
            self.ind -= 1
            self.emit("except BaseException as _e:")
            self.ind += 1
            # a mid-block trap: retract this batch's pending delta, settle
            # everything else, then re-apply the lead + block charges exactly
            # and let _unwind subtract the unexecuted op suffix.  Trailing
            # control charges never happened; memory-op stats for the
            # executed prefix come from the compile-time table keyed by the
            # failing op's position.
            self.emit(f"_vp[{bid}] -= 1")
            self.emit("_fv(S, V, _vp, _SV)")
            self._emit_visit_updates(lead, seg["names"])
            leadseg_cycles = sum(cyc for _nm, cyc in lead) + sum(seg["op_cycles"])
            if self.cost_on and leadseg_cycles != 0.0:
                self.emit(f"S.cycles += {leadseg_cycles!r}")
            if any(seg["mem"]):
                mp = self.const(seg["mp"])
                self.emit(f"_l, _s, _bl, _bs = {mp}[_tp]")
                self.emit("S.loads += _l; S.bytes_loaded += _bl")
                self.emit("S.stores += _s; S.bytes_stored += _bs")
            if trail:
                self.emit(f"_ex -= {len(trail)}")
            self.emit("S.executed = _ex; _fv(S, V, _vp, _SV)")
            self.emit(f"_E._unwind({self.fidx}, {seg['index']}, _tp)")
            self.emit("if isinstance(_e, MemoryAccessError): raise Trap(str(_e)) from _e")
            self.emit("raise")
            self.ind -= 1
        else:
            for line in buf:
                self.emit(line)
            if not buf:
                self.emit("pass")
        self.ind -= 1

    def emit_return(self, d: int) -> None:
        self.flush()
        nres = len(self.functype.results)
        self.emit("S.executed = _ex; _fv(S, V, _vp, _SV)")
        if nres == 0:
            self.emit("return []")
            return
        if d < nres:
            raise CompileError("return with understacked operands")
        vals = ", ".join(f"s{d - nres + i}" for i in range(nres))
        self.emit(f"return [{vals}]")

    def emit_branch(self, depth: int, d: int, frames: list) -> None:
        """Emit the code for a taken branch of ``depth`` labels."""
        if depth >= len(frames):
            self.emit_return(d)
            return
        target = frames[-1 - depth]
        a = target.arity
        src = d - a
        if a and target.h != src:
            for i in range(a):
                self.emit(f"s{target.h + i} = s{src + i}")
        k = sum(1 for f in frames[len(frames) - depth:] if f.wrapped)
        if k == 0:
            self.emit("continue" if target.kind == "loop" else "break")
        else:
            self.emit(f"_br = {k}")
            self.emit("break")

    def _close_suite(self, marker: int) -> None:
        if len(self.lines) == marker:
            self.emit("pass")
        self.ind -= 1

    def _cascade(self, frame: _Frame, frames_below: list) -> None:
        """After a wrapped construct's ``while``: route pass-through branches."""
        if not frame.escapes:
            return
        parent = next((f for f in reversed(frames_below) if f.wrapped), None)
        if parent is None:  # no branch can pass through the outermost wrapper
            return
        self.emit("if _br:")
        self.ind += 1
        self.emit("_br -= 1")
        if parent.kind == "loop":
            self.emit("if _br: break")
            self.emit("continue")
        else:
            self.emit("break")
        self.ind -= 1

    # -- branch-target pre-scan ----------------------------------------------

    def _scan_targets(self) -> tuple[set, set]:
        targeted: set[int] = set()
        escaped: set[int] = set()
        stack: list[int] = []

        def mark(depth: int) -> None:
            if depth < len(stack):
                targeted.add(stack[-1 - depth])
                if depth:
                    escaped.update(stack[len(stack) - depth:])

        for i, instr in enumerate(self.body):
            name = instr.name
            if name in ("block", "loop", "if"):
                stack.append(i)
            elif name == "end":
                if stack:
                    stack.pop()
            elif name in ("br", "br_if"):
                mark(instr.args[0])
            elif name == "br_table":
                depths, default = instr.args
                for depth in set(depths) | {default}:
                    mark(depth)
        return targeted, escaped

    # -- straight-line blocks -------------------------------------------------

    def _queue_segment(self, start: int, stop: int, d: int) -> int:
        """Translate one basic block and queue it in the pending batch.

        Translation runs over a *symbolic* operand stack: each slot holds a
        pure Python expression (a register, local, literal, or folded
        arithmetic).  Pure expressions stay pending and fold into their
        consumers — `local.get x; i32.const 1; i32.add; local.set x` becomes
        one statement — and are only materialised (into fresh single-use
        temporaries ``t{n}``) at hazards: a write to a local they read, a
        multi-use operand, an oversized expression, or the end of the block,
        where surviving slots land in the canonical registers ``s{i}`` that
        the control-flow code and the step-mode fallback both use.
        """
        if self.seg is not None:
            self.flush()
        members = self.body[start:stop]
        names = tuple(m.name for m in members)
        op_cycles = [self._cycles_of(nm) for nm in names]

        buf: list[str] = []
        d0 = d
        self._sym = [f"s{i}" for i in range(d0)]
        self._deps: list[set] = [set() for _ in range(d0)]
        # memory-op stat totals for the block, plus the prefix table keyed by
        # trap position (what had completed before the op at index j ran)
        self._seg_mem = [0, 0, 0, 0]
        self._seg_mp: dict[int, tuple] = {-1: (0, 0, 0, 0)}
        for j, m in enumerate(members):
            self._emit_op(m, j, buf)
        d1 = len(self._sym)
        # land surviving slots in their canonical registers, ascending: an
        # expression at slot i only references registers s{j} with j >= i,
        # so each write happens after every read of the old value
        for k in range(d1):
            if self._sym[k] != f"s{k}":
                buf.append(f"s{k} = {self._sym[k]}")

        seg_index = len(self.segs)
        self.segs.append((start, stop - start))
        self.seg = {
            "start": start,
            "count": stop - start,
            "index": seg_index,
            "names": names,
            "op_cycles": op_cycles,
            "can_trap": any(nm in TRAPPING_INSTRUCTIONS for nm in names),
            "written_locals": sorted(
                {m.args[0] for m in members if m.name in ("local.set", "local.tee")}
            ),
            "buf": buf,
            "d0": d0,
            "d1": d1,
            "mem": tuple(self._seg_mem),
            "mp": dict(self._seg_mp),
        }
        return d1

    # -- symbolic-stack helpers ------------------------------------------------

    def _temp(self) -> str:
        self.tctr += 1
        return f"t{self.tctr}"

    def _push(self, expr: str, deps: set, out: list[str]) -> None:
        if len(expr) > 100:  # cap folded-expression size
            t = self._temp()
            out.append(f"{t} = {expr}")
            expr, deps = t, set()
        self._sym.append(expr)
        self._deps.append(deps)

    def _pop(self) -> tuple[str, set]:
        if not self._sym:
            raise CompileError("operand stack underflow")
        return self._sym.pop(), self._deps.pop()

    def _materialize(self, k: int, out: list[str], force: bool = False) -> None:
        """Pin slot ``k``'s pending expression into a fresh temporary."""
        if not force and _SIMPLE_EXPR.fullmatch(self._sym[k]):
            return
        t = self._temp()
        out.append(f"{t} = {self._sym[k]}")
        self._sym[k] = t
        self._deps[k] = set()

    def _barrier_local(self, index: int, out: list[str]) -> None:
        """A local is about to be written: pin every expression reading it.

        ``force=True`` because a bare ``l{index}`` slot — simple, but about to
        change value — must be copied out before the write.
        """
        for k in range(len(self._sym)):
            if index in self._deps[k]:
                self._materialize(k, out, force=True)

    def _pop_simple(self, out: list[str]) -> tuple[str, set]:
        """Pop an operand that the consumer will evaluate more than once."""
        if self._sym and not _SIMPLE_EXPR.fullmatch(self._sym[-1]):
            self._materialize(len(self._sym) - 1, out)
        return self._pop()

    # -- one non-control instruction over the symbolic stack -------------------

    def _emit_op(self, instr: Instr, j: int, out: list[str]) -> None:
        name = instr.name
        if name == "nop":
            return
        if name == "drop":
            self._pop()
            return
        if name == "select":
            c, cd = self._pop()
            b, bd = self._pop()
            a, ad = self._pop()
            self._push(f"({a} if {c} else {b})", ad | bd | cd, out)
            return
        if name == "local.get":
            idx = instr.args[0]
            self._push(f"l{idx}", {idx}, out)
            return
        if name == "local.set":
            idx = instr.args[0]
            e, _deps = self._pop()
            self._barrier_local(idx, out)
            out.append(f"l{idx} = {e}")
            return
        if name == "local.tee":
            idx = instr.args[0]
            e, _deps = self._pop()
            self._barrier_local(idx, out)
            out.append(f"l{idx} = {e}")
            self._push(f"l{idx}", {idx}, out)
            return
        if name == "global.get":
            t = self._temp()
            out.append(f"{t} = _G[{instr.args[0]}].value")
            self._push(t, set(), out)
            return
        if name == "global.set":
            e, _deps = self._pop()
            out.append(f"_G[{instr.args[0]}].value = {e}")
            return
        if name.endswith(".const"):
            value = instr.args[0]
            lit = self._float_literal(value) if isinstance(value, float) else repr(value)
            self._push(lit, set(), out)
            return
        if name == "memory.size":
            if not self.has_memory:
                out.append('raise Trap("no memory")')
                self._push("0", set(), out)  # unreachable; keep depth consistent
                return
            t = self._temp()
            out.append(f"{t} = M.pages")
            self._push(t, set(), out)
            return

        prefix, _, suffix = name.partition(".")
        if "load" in suffix or "store" in suffix:
            self._emit_memory_access(instr, name, prefix, suffix, j, out)
        elif prefix in ("i32", "i64"):
            self._emit_int(name, suffix, prefix, j, out)
        else:
            self._emit_float(name, suffix, prefix, out)

    def _emit_memory_access(self, instr, name, prefix, suffix, j, out) -> None:
        is_store = "store" in suffix
        if not self.has_memory:
            out.append('raise Trap("no memory")')
            # keep static depth bookkeeping consistent (code is unreachable)
            if is_store:
                self._pop()
                self._pop()
            else:
                self._pop()
                self._push("0", set(), out)
            return
        _align, offset = instr.args
        vt_bits = 32 if prefix in ("i32", "f32") else 64
        width = vt_bits // 8
        for marker, w in (("8", 1), ("16", 2), ("32", 4)):
            if suffix.endswith((f"load{marker}_s", f"load{marker}_u", f"store{marker}")):
                width = w
                break
        if is_store:
            val, _vd = (self._pop_simple(out) if prefix == "f32" else self._pop())
            base, _bd = self._pop()
        else:
            base, _bd = self._pop()
        addr = f"({base} + {offset})" if offset else f"({base})"
        a = self._temp()
        self._seg_mp[j] = tuple(self._seg_mem)
        out.append(f"_tp = {j}")
        out.append(f"{a} = {addr} & 0xffffffffffffffff")
        # inline bounds check + Struct access: same MemoryAccessError text as
        # LinearMemory.read/write, minus the byte copy and two call layers
        kind = "write" if is_store else "read"
        out.append(
            f"if {a} + {width} > len(_mb): raise MemoryAccessError("
            f'f"{kind} of {width} bytes at {{{a}}} out of bounds ({{len(_mb)}})")'
        )
        if is_store:
            if prefix == "f32":
                # mirror LinearMemory.store_f32's out-of-range clamp to inf
                out.append(f"try: _Sf4(_mb, {a}, {val})")
                out.append(
                    f"except OverflowError: "
                    f"_Sf4(_mb, {a}, _INF if {val} > 0 else -_INF)"
                )
            elif prefix == "f64":
                out.append(f"_Sf8(_mb, {a}, {val})")
            else:
                mask = hex((1 << (width * 8)) - 1)
                out.append(f"_S{width}(_mb, {a}, {val} & {mask})")
            self._seg_mem[1] += 1
            self._seg_mem[3] += width
            if self.cost_on:
                out.append(f"S.cycles += C.memory_access_cycles({a}, {width}, True)")
        else:
            t = self._temp()
            if prefix == "f32":
                out.append(f"{t} = _Lf4(_mb, {a})[0]")
            elif prefix == "f64":
                out.append(f"{t} = _Lf8(_mb, {a})[0]")
            else:
                signed = suffix.endswith("_s")
                expr = f"_L{width}{'s' if signed else 'u'}(_mb, {a})[0]"
                if signed:
                    expr += f" & {hex((1 << vt_bits) - 1)}"
                out.append(f"{t} = {expr}")
            self._seg_mem[0] += 1
            self._seg_mem[2] += width
            if self.cost_on:
                out.append(f"S.cycles += C.memory_access_cycles({a}, {width}, False)")
            self._push(t, set(), out)

    def _signed_expr(self, expr: str, bits: int) -> str:
        """Compile-time sign conversion for literals, helper call otherwise."""
        lit = _as_int(expr)
        if lit is not None:
            return repr(lit - (1 << bits) if lit >= (1 << (bits - 1)) else lit)
        return f"_sg{bits}({expr})"

    def _emit_int(self, name, suffix, prefix, j, out) -> None:
        bits = 32 if prefix == "i32" else 64
        mask = hex((1 << bits) - 1)

        if suffix in _I_BIN:
            b, bd = self._pop()
            a, ad = self._pop()
            self._push(f"(({a} {_I_BIN[suffix]} {b}) & {mask})", ad | bd, out)
            return
        if suffix in _I_BIT:
            b, bd = self._pop()
            a, ad = self._pop()
            self._push(f"({a} {_I_BIT[suffix]} {b})", ad | bd, out)
            return
        if suffix == "shl":
            b, bd = self._pop()
            a, ad = self._pop()
            blit = _as_int(b)
            shift = repr(blit % bits) if blit is not None else f"({b} % {bits})"
            self._push(f"(({a} << {shift}) & {mask})", ad | bd, out)
            return
        if suffix == "shr_u":
            b, bd = self._pop()
            a, ad = self._pop()
            blit = _as_int(b)
            shift = repr(blit % bits) if blit is not None else f"({b} % {bits})"
            self._push(f"({a} >> {shift})", ad | bd, out)
            return
        if suffix == "shr_s":
            b, bd = self._pop()
            a, ad = self._pop()
            blit = _as_int(b)
            shift = repr(blit % bits) if blit is not None else f"({b} % {bits})"
            sa = self._signed_expr(a, bits)
            self._push(f"(({sa} >> {shift}) & {mask})", ad | bd, out)
            return
        if suffix in ("rotl", "rotr"):
            b, bd = self._pop()
            a, ad = self._pop()
            self._push(f"_{suffix}({a}, {b}, {bits})", ad | bd, out)
            return
        if suffix in _I_CMP_U:
            b, bd = self._pop()
            a, ad = self._pop()
            self._push(f"(1 if {a} {_I_CMP_U[suffix]} {b} else 0)", ad | bd, out)
            return
        if suffix in _I_CMP_S:
            b, bd = self._pop()
            a, ad = self._pop()
            sa = self._signed_expr(a, bits)
            sb = self._signed_expr(b, bits)
            self._push(f"(1 if {sa} {_I_CMP_S[suffix]} {sb} else 0)", ad | bd, out)
            return
        if suffix == "eqz":
            a, ad = self._pop()
            self._push(f"(1 if {a} == 0 else 0)", ad, out)
            return
        if suffix in ("clz", "ctz"):
            a, ad = self._pop()
            self._push(f"_{suffix}({a}, {bits})", ad, out)
            return
        if suffix == "popcnt":
            a, ad = self._pop()
            self._push(f'bin({a}).count("1")', ad, out)
            return
        if suffix in ("div_u", "rem_u"):
            op = "//" if suffix == "div_u" else "%"
            b, _bd = self._pop()
            a, _ad = self._pop()
            blit = _as_int(b)
            t = self._temp()
            self._seg_mp[j] = tuple(self._seg_mem)
            out.append(f"_tp = {j}")
            if blit is None:
                tb = self._temp()
                out.append(f"{tb} = {b}")
                out.append(f'if {tb} == 0: raise Trap("integer divide by zero")')
                b = tb
            elif blit == 0:
                out.append('raise Trap("integer divide by zero")')
            out.append(f"{t} = ({a} {op} {b}) & {mask}")
            self._push(t, set(), out)
            return
        if suffix in ("div_s", "rem_s"):
            b, _bd = self._pop()
            a, _ad = self._pop()
            t = self._temp()
            self._seg_mp[j] = tuple(self._seg_mem)
            out.append(f"_tp = {j}")
            blit = _as_int(b)
            if blit is None:
                tb = self._temp()
                out.append(f"{tb} = {self._signed_expr(b, bits)}")
                out.append(f'if {tb} == 0: raise Trap("integer divide by zero")')
                sb = tb
            elif blit % (1 << bits) == 0:
                out.append('raise Trap("integer divide by zero")')
                sb = "0"
            else:
                sb = self._signed_expr(b, bits)
            ta = self._temp()
            out.append(f"{ta} = {self._signed_expr(a, bits)}")
            if suffix == "div_s":
                sign_bit = hex(1 << (bits - 1))
                out.append(
                    f"if {ta} == -{sign_bit} and {sb} == -1: "
                    'raise Trap("integer overflow")'
                )
                out.append(f"{t} = _trunc_div({ta}, {sb}) & {mask}")
            else:
                out.append(f"{t} = _trunc_rem({ta}, {sb}) & {mask}")
            self._push(t, set(), out)
            return
        if suffix.startswith("trunc_f"):
            a, _ad = self._pop()
            t = self._temp()
            self._seg_mp[j] = tuple(self._seg_mem)
            out.append(f"_tp = {j}")
            out.append(f"{t} = _trunc_to_int({a}, {bits}, {suffix.endswith('_s')})")
            self._push(t, set(), out)
            return
        if suffix == "wrap_i64":
            a, ad = self._pop()
            self._push(f"({a} & 0xffffffff)", ad, out)
            return
        if suffix == "extend_i32_s":
            a, ad = self._pop()
            self._push(
                f"({self._signed_expr(a, 32)} & 0xffffffffffffffff)", ad, out
            )
            return
        if suffix == "extend_i32_u":
            a, ad = self._pop()
            self._push(f"({a} & 0xffffffff)", ad, out)
            return
        if suffix == "reinterpret_f32":
            a, ad = self._pop()
            self._push(f'_up("<I", _pk("<f", _f32({a})))[0]', ad, out)
            return
        if suffix == "reinterpret_f64":
            a, ad = self._pop()
            self._push(f'_up("<Q", _pk("<d", {a}))[0]', ad, out)
            return
        raise CompileError(f"no translation for {name}")

    def _emit_float(self, name, suffix, prefix, out) -> None:
        narrow = prefix == "f32"

        def wrap(expr: str) -> str:
            return f"_f32({expr})" if narrow else expr

        if suffix in ("add", "sub", "mul"):
            b, bd = self._pop()
            a, ad = self._pop()
            op = {"add": "+", "sub": "-", "mul": "*"}[suffix]
            self._push(wrap(f"({a} {op} {b})"), ad | bd, out)
            return
        if suffix == "div":
            b, bd = self._pop_simple(out)
            a, ad = self._pop_simple(out)
            # wasm float division: 0-divisor produces nan or signed infinity
            self._push(
                wrap(
                    f"(({a} / {b}) if {b} != 0.0 else "
                    f"(_NAN if ({a} == 0.0 or {a} != {a}) "
                    f"else _cps(_INF, {a}) * _cps(1.0, {b})))"
                ),
                ad | bd,
                out,
            )
            return
        if suffix in ("min", "max"):
            b, bd = self._pop()
            a, ad = self._pop()
            fn = "_fmin" if suffix == "min" else "_fmax"
            self._push(wrap(f"{fn}({a}, {b})"), ad | bd, out)
            return
        if suffix == "copysign":
            b, bd = self._pop()
            a, ad = self._pop()
            self._push(wrap(f"_cps({a}, {b})"), ad | bd, out)
            return
        if suffix in _F_CMP:
            b, bd = self._pop()
            a, ad = self._pop()
            self._push(f"(1 if {a} {_F_CMP[suffix]} {b} else 0)", ad | bd, out)
            return
        if suffix == "abs":
            a, ad = self._pop()
            self._push(wrap(f"abs({a})"), ad, out)
            return
        if suffix == "neg":
            a, ad = self._pop()
            self._push(wrap(f"(-{a})"), ad, out)
            return
        if suffix == "sqrt":
            a, ad = self._pop_simple(out)
            self._push(wrap(f"(_sqrt({a}) if {a} >= 0 else _NAN)"), ad, out)
            return
        if suffix in ("ceil", "floor", "trunc"):
            fn = {"ceil": "_mceil", "floor": "_mfloor", "trunc": "_mtrunc"}[suffix]
            a, ad = self._pop_simple(out)
            self._push(
                wrap(f"({a} if {a} != {a} or _isinf({a}) else float({fn}({a})))"),
                ad,
                out,
            )
            return
        if suffix == "nearest":
            a, ad = self._pop()
            self._push(wrap(f"_nearest({a})"), ad, out)
            return
        if suffix.startswith("convert_i"):
            cbits = 32 if "i32" in suffix else 64
            a, ad = self._pop()
            if suffix.endswith("_s"):
                self._push(wrap(f"float({self._signed_expr(a, cbits)})"), ad, out)
            else:
                self._push(wrap(f"float({a})"), ad, out)
            return
        if suffix == "demote_f64":
            a, ad = self._pop()
            self._push(f"_f32({a})", ad, out)
            return
        if suffix == "promote_f32":
            a, ad = self._pop()
            self._push(f"float({a})", ad, out)
            return
        if suffix == "reinterpret_i32":
            a, ad = self._pop()
            self._push(f'_up("<f", _pk("<I", {a} & 0xffffffff))[0]', ad, out)
            return
        if suffix == "reinterpret_i64":
            a, ad = self._pop()
            self._push(f'_up("<d", _pk("<Q", {a} & 0xffffffffffffffff))[0]', ad, out)
            return
        raise CompileError(f"no translation for {name}")


    def translate(self) -> tuple[str, tuple, tuple]:
        module = self.module
        body = self.body
        n = len(body)
        if len(self.functype.results) > 1:
            raise CompileError("multi-result function")
        n_params = len(self.functype.params)
        n_locals = n_params + len(self.func.locals)
        structs = build_structure_map(body)
        targeted, escaped = self._scan_targets()

        self.emit(f"def _f{self.fidx}(_args):")
        self.ind += 1
        if n_params == 1:
            self.emit("l0, = _args")
        elif n_params > 1:
            self.emit(", ".join(f"l{i}" for i in range(n_params)) + " = _args")
        for i, vt in enumerate(self.func.locals):
            self.emit(f"l{n_params + i} = {'0' if vt.is_int else '0.0'}")
        self.emit("S = _I.stats; V = S.visits; L = _I.limits")
        self.emit("mi = L.max_instructions")
        self.emit("if mi is None: mi = _BIG")
        self.emit("pi = L.progress_interval; cb = L.progress_callback")
        self.emit("_pb = pi is not None and cb is not None")
        self.emit("P = _I._profiler")
        self.emit(f'_lbl = _I._func_labels[{self.fidx}] if P is not None else ""')
        self.emit("_ex = S.executed")
        self.emit("_br = 0")
        self.emit(f"_SV = _K{self.fidx}[0]")
        self.emit("_vp = [0] * len(_SV)")
        if self.has_memory:
            self.emit("M = _M")
            self.emit("_mb = M._data")  # bytearray grows in place: stays valid
            if self.cost_on:
                self.emit("C = _C")

        frames: list[_Frame] = []
        reachable = True
        dead_depth = 0
        d = 0
        i = 0
        while i < n:
            instr = body[i]
            name = instr.name

            if not reachable:
                if name in ("block", "loop", "if"):
                    dead_depth += 1
                    i += 1
                    continue
                if name == "else" and dead_depth == 0:
                    frame = frames[-1]
                    self._close_suite(frame.marker)
                    self.emit("else:")
                    self.ind += 1
                    frame.marker = len(self.lines)
                    frame.in_else = True
                    reachable = True
                    d = frame.h
                    i += 1
                    continue
                if name == "end":
                    if dead_depth:
                        dead_depth -= 1
                        i += 1
                        continue
                    if frames:
                        reachable, d = self._close_frame(frames, reachable=False)
                        i += 1
                        continue
                i += 1
                continue

            if name not in SEGMENT_BARRIERS:
                start = i
                while i < n and body[i].name not in SEGMENT_BARRIERS:
                    i += 1
                d = self._queue_segment(start, i, d)
                continue

            if name == "block":
                self.emit_charge(name)
                wrapped = i in targeted
                results = len(instr.args[0])
                frames.append(
                    _Frame("block", d, results, results, wrapped, i in escaped, False)
                )
                if wrapped:
                    self.flush()
                    self.emit("while True:")
                    self.ind += 1
            elif name == "loop":
                wrapped = i in targeted
                results = len(instr.args[0])
                if wrapped:
                    self.flush()
                    self.emit("while True:")
                    self.ind += 1
                self.emit_charge(name)
                frames.append(
                    _Frame("loop", d, 0, results, wrapped, i in escaped, False)
                )
            elif name == "if":
                self.emit_charge(name)
                d -= 1
                wrapped = i in targeted
                results = len(instr.args[0])
                info = structs[i]
                frame = _Frame(
                    "if", d, results, results, wrapped, i in escaped,
                    info.else_ is not None,
                )
                self.flush()
                if wrapped:
                    self.emit("while True:")
                    self.ind += 1
                self.emit(f"if s{d}:")
                self.ind += 1
                frame.marker = len(self.lines)
                frames.append(frame)
            elif name == "else":
                frame = frames[-1]
                self.emit_charge(name)  # charged when the true arm falls through
                frame.end_reachable = True
                self.flush()
                self._close_suite(frame.marker)
                self.emit("else:")
                self.ind += 1
                frame.marker = len(self.lines)
                frame.in_else = True
                d = frame.h
            elif name == "end":
                if frames:
                    if reachable:
                        frames[-1].end_reachable = True
                    reachable, d = self._close_frame(frames, reachable=reachable)
                else:
                    # function-level end (binary-decoded bodies keep it)
                    self.emit_charge(name)
            elif name == "br":
                self.emit_charge(name)
                self.flush()
                self.emit_branch(instr.args[0], d, frames)
                reachable = False
            elif name == "br_if":
                self.emit_charge(name)
                self.flush()
                d -= 1
                self.emit(f"if s{d}:")
                self.ind += 1
                self.emit_branch(instr.args[0], d, frames)
                self.ind -= 1
            elif name == "br_table":
                self.emit_charge(name)
                self.flush()
                d -= 1
                depths, default = instr.args
                if depths:
                    tbl = self.const(tuple(depths))
                    self.emit(f"_x = s{d}")
                    self.emit(
                        f"_t = {tbl}[_x] if _x < {len(depths)} else {default}"
                    )
                else:
                    self.emit(f"_t = {default}")
                unique = sorted(set(depths) | {default})
                if len(unique) == 1:
                    self.emit_branch(unique[0], d, frames)
                else:
                    for pos, depth in enumerate(unique):
                        if pos < len(unique) - 1:
                            kw = "if" if pos == 0 else "elif"
                            self.emit(f"{kw} _t == {depth}:")
                        else:
                            self.emit("else:")
                        self.ind += 1
                        self.emit_branch(depth, d, frames)
                        self.ind -= 1
                reachable = False
            elif name == "return":
                self.emit_charge(name)
                self.emit_return(d)
                reachable = False
            elif name == "unreachable":
                self.emit_charge(name)
                self.flush()
                self.emit("S.executed = _ex; _fv(S, V, _vp, _SV)")
                self.emit('raise Trap("unreachable executed")')
                reachable = False
            elif name == "call":
                target = instr.args[0]
                ftype = module.func_type(target)
                np_, nres = len(ftype.params), len(ftype.results)
                if nres > 1:
                    raise CompileError("multi-result callee")
                self.emit_charge(name)
                self.flush()
                self.emit("S.executed = _ex; _fv(S, V, _vp, _SV)")
                args = ", ".join(f"s{d - np_ + k}" for k in range(np_))
                if nres:
                    self.emit(f"_r = _CALL({target}, [{args}])")
                    self.emit(f"s{d - np_} = _r[0]")
                else:
                    self.emit(f"_CALL({target}, [{args}])")
                self.emit("S.calls += 1")
                self.emit("_ex = S.executed")
                d = d - np_ + nres
            elif name == "call_indirect":
                expected = module.types[instr.args[0]]
                np_, nres = len(expected.params), len(expected.results)
                if nres > 1:
                    raise CompileError("multi-result callee")
                self.emit_charge(name)
                self.flush()
                self.emit("S.executed = _ex; _fv(S, V, _vp, _SV)")
                tk = self.const(expected)
                self.emit(f"_x = s{d - 1}")
                self.emit(
                    "if _T is None or _x >= len(_T.elements): "
                    'raise Trap("undefined table element")'
                )
                self.emit("_g = _T.elements[_x]")
                self.emit('if _g is None: raise Trap("uninitialized table element")')
                self.emit(
                    f"if _FT(_g) != {tk}: "
                    'raise Trap("indirect call type mismatch")'
                )
                args = ", ".join(f"s{d - 1 - np_ + k}" for k in range(np_))
                if nres:
                    self.emit(f"_r = _CALL(_g, [{args}])")
                    self.emit(f"s{d - 1 - np_} = _r[0]")
                else:
                    self.emit(f"_CALL(_g, [{args}])")
                self.emit("S.calls += 1")
                self.emit("_ex = S.executed")
                d = d - 1 - np_ + nres
            elif name == "memory.grow":
                self.emit_charge(name)
                self.flush()
                if not self.has_memory:
                    self.emit("S.executed = _ex; _fv(S, V, _vp, _SV)")
                    self.emit('raise Trap("no memory")')
                else:
                    self.emit(f"_r = M.grow(s{d - 1})")
                    self.emit(
                        "if _r >= 0: S.grow_history.append((_ex, M.pages))"
                    )
                    self.emit(f"s{d - 1} = _r & 0xffffffff")
            else:  # pragma: no cover - barrier set is closed
                raise CompileError(f"unhandled control instruction {name}")
            i += 1

        if reachable:
            self.emit_return(d)
        if frames:
            raise CompileError("unbalanced control structure")

        self.consts[0] = tuple(self.batches)
        return "\n".join(self.lines) + "\n", tuple(self.consts), tuple(self.segs)

    def _close_frame(self, frames: list, reachable: bool) -> tuple[bool, int]:
        """Emit the close of the innermost construct; returns (reachable, d)."""
        frame = frames.pop()
        if frame.kind == "if":
            if not frame.in_else and not frame.has_else:
                # the false path jumps straight to end: end is always live
                frame.end_reachable = True
            self.flush()  # pending batch belongs inside the open arm
            self._close_suite(frame.marker)  # close the open arm
            if frame.wrapped:
                self.emit("break")
                self.ind -= 1  # close while
                self._cascade(frame, frames)
            end_live = frame.end_reachable or frame.wrapped
        elif frame.kind == "block":
            if frame.wrapped:
                self.flush()  # pending batch belongs inside the while body
                self.emit("break")
                self.ind -= 1
                self._cascade(frame, frames)
            end_live = frame.end_reachable or frame.wrapped
        else:  # loop
            if frame.wrapped:
                self.flush()  # pending batch belongs inside the while body
                if frame.end_reachable:
                    self.emit("break")
                self.ind -= 1
                self._cascade(frame, frames)
            end_live = frame.end_reachable
        if end_live:
            self.emit_charge("end")
        return end_live, frame.h + frame.results


# ---------------------------------------------------------------------------
# Module translation + caching
# ---------------------------------------------------------------------------


def _module_has_memory(module) -> bool:
    if module.memories:
        return True
    return any(imp.kind == "memory" for imp in module.imports)


def _translate_module(module, cost_model) -> _ModuleCode:
    has_memory = _module_has_memory(module)
    funcs = []
    for index in range(len(module.funcs)):
        try:
            translator = _Translator(module, index, cost_model, has_memory)
            source, consts, segs = translator.translate()
            code = compile(source, f"<wasm-compile:{index}>", "exec")
        except CompileError as exc:
            funcs.append(_FuncCode(None, (), (), error=str(exc)))
        except (SyntaxError, RecursionError, MemoryError) as exc:
            funcs.append(_FuncCode(None, (), (), error=repr(exc)))
        else:
            funcs.append(_FuncCode(code, consts, segs))
    return _ModuleCode(funcs)


def _module_code(module, cost_model) -> _ModuleCode:
    key = _module_key(module, cost_model)
    if key is None:
        return _translate_module(module, cost_model)
    cached = _CODE_CACHE.get(key)
    if cached is not None:
        return cached
    mc = _translate_module(module, cost_model)
    _CODE_CACHE.put(key, mc)
    return mc


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class CompiledEngine:
    """Executes an :class:`~repro.wasm.interpreter.Instance`'s functions from
    generated Python code.  Created by ``Instance(..., engine="compile")``."""

    def __init__(self, instance):
        self.instance = instance
        #: per-function fallback: compiles lazily, only for functions the
        #: translator declined (PredecodedEngine without compile_all)
        self._fallback = PredecodedEngine(instance)
        mc = _module_code(instance.module, instance.cost_model)
        self._module_code = mc
        ns = self._make_namespace()
        self._namespace = ns
        fns: list = []
        for index, fc in enumerate(mc.funcs):
            if fc.code is None:
                fns.append(None)
            else:
                ns[f"_K{index}"] = fc.consts
                exec(fc.code, ns)
                fns.append(ns[f"_f{index}"])
        self._fns = fns
        #: lazily built predecode segments for the step/unwind slow paths
        self._step_segs: dict[tuple[int, int], _Segment] = {}
        #: defined-function indices running on the predecode fallback
        self.fallback_functions = tuple(
            index for index, fc in enumerate(mc.funcs) if fc.code is None
        )

    def _make_namespace(self) -> dict:
        instance = self.instance
        return {
            "__builtins__": __builtins__,
            "_I": instance,
            "_E": self,
            "_M": instance.memory,
            "_G": instance.globals,
            "_T": instance.table,
            "_C": instance.cost_model,
            "_CALL": instance.call_function,
            "_FT": instance.module.func_type,
            "Trap": Trap,
            "MemoryAccessError": MemoryAccessError,
            "_f32": _f32,
            "_signed": _signed,
            "_sg32": _sg32,
            "_sg64": _sg64,
            "_fv": _flush_visits,
            "_trunc_div": _trunc_div,
            "_trunc_rem": _trunc_rem,
            "_trunc_to_int": _trunc_to_int,
            "_clz": _clz,
            "_ctz": _ctz,
            "_rotl": _rotl,
            "_rotr": _rotr,
            "_fmin": _float_min,
            "_fmax": _float_max,
            "_nearest": _nearest,
            "_cps": math.copysign,
            "_sqrt": math.sqrt,
            "_isinf": math.isinf,
            "_mceil": math.ceil,
            "_mfloor": math.floor,
            "_mtrunc": math.trunc,
            "_pk": struct.pack,
            "_up": struct.unpack,
            "_INF": math.inf,
            "_NAN": math.nan,
            "_BIG": float("inf"),
            # prebound Struct methods for inline linear-memory access
            "_L1s": struct.Struct("<b").unpack_from,
            "_L1u": struct.Struct("<B").unpack_from,
            "_L2s": struct.Struct("<h").unpack_from,
            "_L2u": struct.Struct("<H").unpack_from,
            "_L4s": struct.Struct("<i").unpack_from,
            "_L4u": struct.Struct("<I").unpack_from,
            "_L8u": struct.Struct("<Q").unpack_from,
            "_S1": struct.Struct("<B").pack_into,
            "_S2": struct.Struct("<H").pack_into,
            "_S4": struct.Struct("<I").pack_into,
            "_S8": struct.Struct("<Q").pack_into,
            "_Lf4": struct.Struct("<f").unpack_from,
            "_Lf8": struct.Struct("<d").unpack_from,
            "_Sf4": struct.Struct("<f").pack_into,
            "_Sf8": struct.Struct("<d").pack_into,
        }

    def exec_function(self, defined_index: int, args: list) -> list:
        fn = self._fns[defined_index]
        if fn is None:
            return self._fallback.exec_function(defined_index, args)
        return fn(args)

    # -- slow paths shared with predecode ---------------------------------------

    def _segment(self, defined_index: int, seg_index: int) -> _Segment:
        key = (defined_index, seg_index)
        seg = self._step_segs.get(key)
        if seg is not None:
            return seg
        start, count = self._module_code.funcs[defined_index].segs[seg_index]
        members = self.instance.module.funcs[defined_index].body[start : start + count]
        cost = self.instance.cost_model
        cycles_of = cost.instruction_cycles if cost is not None else (lambda name: 0.0)
        names = tuple(m.name for m in members)
        ops = tuple(
            _compile_simple(m, self.instance, self._fallback.cell, j)
            for j, m in enumerate(members)
        )
        op_cycles = tuple(cycles_of(nm) for nm in names)
        visit_delta: dict[str, int] = {}
        for nm in names:
            visit_delta[nm] = visit_delta.get(nm, 0) + 1
        can_trap = any(nm in TRAPPING_INSTRUCTIONS for nm in names)
        seg = _Segment(ops, names, op_cycles, visit_delta, can_trap, start + count)
        self._step_segs[key] = seg
        return seg

    def _step(self, defined_index: int, seg_index: int, stack: list, locals_: list) -> None:
        """Per-instruction execution of one basic block (budget/progress
        boundary inside the block) — identical to predecode step mode."""
        seg = self._segment(defined_index, seg_index)
        self._fallback._step_segment(
            seg, stack, locals_, self.instance.cost_model is not None
        )

    def _unwind(self, defined_index: int, seg_index: int, failed_index: int) -> None:
        """Roll back the uncharged suffix after a mid-block trap."""
        seg = self._segment(defined_index, seg_index)
        self._fallback._unwind_segment(
            seg, failed_index, self.instance.cost_model is not None
        )
