"""Cycle cost model for WebAssembly execution.

This replaces the paper's TSC-register microbenchmarks on a Xeon E3-1230 v5
(§5.2) with an explicit model that the interpreter charges as it executes:

* a **per-instruction cycle table** whose distribution matches Fig. 7 —
  roughly 74 % of the 127 plain instructions cost under 10 cycles,
  transcendental-ish float ops (floor/ceil/trunc/nearest) cost up to ~32,
  and divisions, remainders and sqrt exceed 50 cycles;

* a **set-associative cache hierarchy** (L1/L2/LLC + DRAM) for loads and
  stores, which reproduces Fig. 8: linear access patterns stay near the L1
  latency regardless of footprint, random loads grow with footprint as they
  fall out of successive cache levels, and random stores are up to ~1.8x
  more expensive than random loads at 256 MB (write-allocate + dirty
  write-back traffic).

The table is exposed as data (``CYCLE_WEIGHTS``) because AccTEE's weighted
instruction counter takes exactly this table as its weight vector (§3.7) —
the same numbers drive both the simulated hardware and the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wasm.instructions import Category, OPCODES, PLAIN_INSTRUCTIONS

# ---------------------------------------------------------------------------
# Per-instruction cycle table
# ---------------------------------------------------------------------------

#: Cycles per instruction class; individual opcodes below override these.
_CATEGORY_DEFAULTS: dict[Category, float] = {
    Category.CONTROL: 2.0,
    Category.PARAMETRIC: 1.0,
    Category.VARIABLE: 1.0,
    Category.CONST: 1.0,
    Category.COMPARISON: 1.5,
    Category.NUMERIC: 2.0,
    Category.CONVERSION: 4.0,
    Category.MEMORY: 4.0,  # hit latency; the cache model adds miss costs
}

#: Per-opcode overrides (cycles), calibrated to the Fig. 7 distribution.
_OPCODE_CYCLES: dict[str, float] = {}


def _build_cycle_table() -> dict[str, float]:
    table: dict[str, float] = {}
    for op in OPCODES:
        table[op.name] = _CATEGORY_DEFAULTS[op.category]

    # Cheap single-cycle ALU ops.
    for prefix in ("i32", "i64"):
        for suffix in ("add", "sub", "and", "or", "xor", "shl", "shr_s", "shr_u"):
            table[f"{prefix}.{suffix}"] = 1.0
        for suffix in ("rotl", "rotr"):
            table[f"{prefix}.{suffix}"] = 2.0
        table[f"{prefix}.clz"] = 3.0
        table[f"{prefix}.ctz"] = 3.0
        table[f"{prefix}.popcnt"] = 3.0
        table[f"{prefix}.mul"] = 3.0 if prefix == "i32" else 4.0

    # Integer division/remainder: the expensive tail of Fig. 7.
    table["i32.div_s"] = 22.0
    table["i32.div_u"] = 20.0
    table["i32.rem_s"] = 22.0
    table["i32.rem_u"] = 20.0
    table["i64.div_s"] = 58.0
    table["i64.div_u"] = 52.0
    table["i64.rem_s"] = 58.0
    table["i64.rem_u"] = 52.0

    # Float pipelines.
    for prefix, add_cost, mul_cost, div_cost, sqrt_cost in (
        ("f32", 4.0, 5.0, 52.0, 56.0),
        ("f64", 4.0, 5.0, 62.0, 70.0),
    ):
        table[f"{prefix}.add"] = add_cost
        table[f"{prefix}.sub"] = add_cost
        table[f"{prefix}.mul"] = mul_cost
        table[f"{prefix}.div"] = div_cost
        table[f"{prefix}.sqrt"] = sqrt_cost
        table[f"{prefix}.abs"] = 1.0
        table[f"{prefix}.neg"] = 1.0
        table[f"{prefix}.copysign"] = 2.0
        table[f"{prefix}.min"] = 3.0
        table[f"{prefix}.max"] = 3.0
        # Rounding modes: the paper's "up to 32 cycles" middle band.
        table[f"{prefix}.floor"] = 28.0
        table[f"{prefix}.ceil"] = 32.0
        table[f"{prefix}.trunc"] = 24.0
        table[f"{prefix}.nearest"] = 26.0

    # Conversions involving float truncation are moderately expensive.
    for name in table:
        if ".trunc_f" in name:
            table[name] = 12.0
        elif ".convert_i" in name:
            table[name] = 6.0
        elif "reinterpret" in name:
            table[name] = 2.0
        elif name in ("f32.demote_f64", "f64.promote_f32"):
            table[name] = 3.0
        elif name in ("i32.wrap_i64", "i64.extend_i32_s", "i64.extend_i32_u"):
            table[name] = 1.0

    # Control flow costs.
    table["nop"] = 1.0
    table["unreachable"] = 1.0
    table["block"] = 0.0  # structure markers compile to nothing
    table["loop"] = 0.0
    table["end"] = 0.0
    table["else"] = 1.0
    table["br"] = 2.0
    table["br_if"] = 2.0
    table["br_table"] = 6.0
    table["if"] = 2.0
    table["return"] = 2.0
    table["call"] = 8.0
    table["call_indirect"] = 14.0
    table["memory.size"] = 2.0
    table["memory.grow"] = 200.0

    return table


#: Cycles charged per instruction (memory instructions: hit cost only).
CYCLE_WEIGHTS: dict[str, float] = _build_cycle_table()

#: Weight table restricted to the 127 plain instructions of Fig. 7.
PLAIN_CYCLE_WEIGHTS: dict[str, float] = {
    name: CYCLE_WEIGHTS[name] for name in PLAIN_INSTRUCTIONS
}


# ---------------------------------------------------------------------------
# Cache hierarchy
# ---------------------------------------------------------------------------


@dataclass
class CacheLevel:
    """One set-associative cache level with LRU replacement.

    Tracks tags only (no data) — enough to charge hit/miss latencies and to
    model dirty write-backs for the store-vs-load asymmetry of Fig. 8.
    """

    name: str
    size_bytes: int
    line_size: int
    associativity: int
    hit_cycles: float

    def __post_init__(self) -> None:
        self.num_sets = max(1, self.size_bytes // (self.line_size * self.associativity))
        # each set: list of (tag, dirty), most recently used last
        self._sets: list[list[tuple[int, bool]]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int, is_store: bool) -> tuple[bool, bool]:
        """Access one line; returns (hit, evicted_dirty_line)."""
        line = address // self.line_size
        set_index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[set_index]
        for i, (existing, dirty) in enumerate(ways):
            if existing == tag:
                del ways[i]
                ways.append((tag, dirty or is_store))
                self.hits += 1
                return True, False
        self.misses += 1
        evicted_dirty = False
        if len(ways) >= self.associativity:
            _evicted_tag, evicted_dirty = ways.pop(0)
        ways.append((tag, is_store))
        return False, evicted_dirty


@dataclass
class MemoryHierarchy:
    """An L1/L2/LLC + DRAM hierarchy patterned on the paper's Xeon E3-1230 v5.

    The default geometry matches that CPU: 32 KiB 8-way L1D, 256 KiB 4-way
    L2, 8 MiB 16-way LLC.  DRAM latency plus a dirty-write-back penalty are
    chosen so random loads at 256 MB cost on the order of 1500-2000 cycles
    and random stores ~1.8x that, as Fig. 8 reports.
    """

    levels: list[CacheLevel] = field(default_factory=lambda: [
        CacheLevel("L1D", 32 * 1024, 64, 8, hit_cycles=4.0),
        CacheLevel("L2", 256 * 1024, 64, 4, hit_cycles=14.0),
        CacheLevel("LLC", 8 * 1024 * 1024, 64, 16, hit_cycles=44.0),
    ])
    dram_cycles: float = 1400.0
    writeback_cycles: float = 1100.0
    tlb_miss_cycles: float = 36.0
    page_size: int = 4096
    tlb_entries: int = 1536
    #: Cost of a miss hidden by the hardware stream prefetcher (sequential
    #: next-line accesses): slightly above the L1 hit latency.
    prefetched_miss_cycles: float = 6.0

    def __post_init__(self) -> None:
        self._tlb: list[int] = []
        self._last_line = -(1 << 60)
        self.accesses = 0
        self.total_cycles = 0.0

    def reset(self) -> None:
        for level in self.levels:
            level.reset()
        self._tlb = []
        self._last_line = -(1 << 60)
        self.accesses = 0
        self.total_cycles = 0.0

    def _tlb_access(self, address: int) -> float:
        page = address // self.page_size
        if page in self._tlb:
            self._tlb.remove(page)
            self._tlb.append(page)
            return 0.0
        self._tlb.append(page)
        if len(self._tlb) > self.tlb_entries:
            self._tlb.pop(0)
        return self.tlb_miss_cycles

    def access(self, address: int, size: int, is_store: bool) -> float:
        """Charge one access of ``size`` bytes at ``address``; returns cycles."""
        self.accesses += 1
        line = address // self.levels[0].line_size
        sequential = line in (self._last_line, self._last_line + 1)
        self._last_line = line
        cycles = self._tlb_access(address)
        for i, level in enumerate(self.levels):
            hit, evicted_dirty = level.access(address, is_store)
            cycles += level.hit_cycles if hit else 0.0
            if evicted_dirty and not sequential:
                # a dirty line travels one level down: cheap between caches,
                # a full writeback only when it leaves the LLC
                if i + 1 < len(self.levels):
                    cycles += self.levels[i + 1].hit_cycles
                else:
                    cycles += self.writeback_cycles
            if hit:
                break
        else:
            if sequential:
                # the stream prefetcher already has the line in flight
                cycles += self.prefetched_miss_cycles
            else:
                cycles += self.dram_cycles
                if is_store:
                    # write-allocate: a store miss reads the line then dirties
                    # it, roughly doubling the DRAM traffic of a load miss.
                    cycles += self.writeback_cycles * 0.8
        self.total_cycles += cycles
        return cycles

    @property
    def stats(self) -> dict[str, float]:
        out: dict[str, float] = {"accesses": self.accesses, "cycles": self.total_cycles}
        for level in self.levels:
            out[f"{level.name}_hits"] = level.hits
            out[f"{level.name}_misses"] = level.misses
        return out


@dataclass
class CostModel:
    """Bundles the cycle table and a memory hierarchy; charged by the interpreter."""

    cycle_weights: dict[str, float] = field(default_factory=lambda: dict(CYCLE_WEIGHTS))
    hierarchy: MemoryHierarchy | None = None

    def instruction_cycles(self, name: str) -> float:
        return self.cycle_weights.get(name, 2.0)

    def memory_access_cycles(self, address: int, size: int, is_store: bool) -> float:
        if self.hierarchy is None:
            return 0.0
        return self.hierarchy.access(address, size, is_store)

    @classmethod
    def with_default_hierarchy(cls) -> "CostModel":
        return cls(hierarchy=MemoryHierarchy())
