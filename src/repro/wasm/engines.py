"""Execution-engine registry: one place that knows every engine's name.

Three engines execute validated modules, all producing byte-identical
:class:`~repro.wasm.interpreter.ExecutionStats` (the differential suite in
``tests/wasm/test_engine_differential.py`` is the contract):

* ``predecode`` — the default: pre-decoded threaded dispatch with
  per-basic-block visit batching and superinstruction fusion
  (:mod:`repro.wasm.predecode`);
* ``compile`` — translates validated function bodies to Python source with
  folded meter counters, compiled once with :func:`compile` and cached per
  (module fingerprint, cost signature) (:mod:`repro.wasm.compile_engine`);
* ``legacy`` — the original per-instruction string-dispatch loop
  (:meth:`repro.wasm.interpreter.Instance._exec_function`), kept as the
  semantics reference.

Engine selection precedence: the explicit ``Instance(engine=...)`` argument,
then the ``REPRO_WASM_ENGINE`` environment variable (consulted at
instantiation time, not import time), then :data:`FALLBACK_ENGINE`.
Historically both ``interpreter.py`` and ``predecode.py`` consulted the
environment variable independently; this module is now the single reader.
"""

from __future__ import annotations

import os

#: Environment variable that overrides the default engine.
ENGINE_ENV_VAR = "REPRO_WASM_ENGINE"

#: Recognised engine names, in preference/documentation order.
ENGINE_NAMES: tuple[str, ...] = ("predecode", "compile", "legacy")

#: Engine used when neither ``engine=`` nor the environment variable is set.
FALLBACK_ENGINE = "predecode"


class UnknownEngineError(ValueError):
    """A name that is not in :data:`ENGINE_NAMES` was requested.

    Subclasses :class:`ValueError` so callers that predate the typed error
    (``except ValueError``) keep working.
    """

    def __init__(self, name: str, source: str = "engine argument"):
        self.name = name
        self.source = source
        super().__init__(
            f"unknown engine {name!r} (from {source}); "
            f"expected one of {ENGINE_NAMES}"
        )


def default_engine() -> str:
    """The engine used when ``Instance(engine=None)``.

    Reads ``REPRO_WASM_ENGINE`` at call time so tests and services can flip
    the default without re-importing the interpreter.
    """
    name = os.environ.get(ENGINE_ENV_VAR)
    if name is None or name == "":
        return FALLBACK_ENGINE
    if name not in ENGINE_NAMES:
        raise UnknownEngineError(name, source=f"${ENGINE_ENV_VAR}")
    return name


def resolve_engine(engine: str | None) -> str:
    """Validate an explicit engine name, or fall back to the default.

    Raises :class:`UnknownEngineError` for names outside
    :data:`ENGINE_NAMES`.
    """
    if engine is None:
        return default_engine()
    if engine not in ENGINE_NAMES:
        raise UnknownEngineError(engine)
    return engine
