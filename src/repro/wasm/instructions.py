"""The WebAssembly MVP instruction set: opcodes, immediates and metadata.

Every instruction the parser, validator, binary codec, interpreter and
instrumentation passes handle is declared here in a single table so the
pieces cannot drift apart.  The table covers the full MVP: control flow,
parametric and variable instructions, memory access, constants, comparisons,
numeric operators and conversions — 172 opcodes in total, of which 127 are
plain (non-control, non-memory) instructions matching the count used in the
paper's Fig. 7 microbenchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ImmKind(enum.Enum):
    """Kinds of immediate operands an instruction carries."""

    NONE = "none"
    BLOCKTYPE = "blocktype"  # block/loop/if result type
    DEPTH = "depth"  # br, br_if: relative label depth
    BRTABLE = "brtable"  # br_table: (depths tuple, default depth)
    FUNC = "func"  # call: function index
    TYPE = "type"  # call_indirect: type index
    LOCAL = "local"  # local.get/set/tee
    GLOBAL = "global"  # global.get/set
    MEMARG = "memarg"  # loads/stores: (align, offset)
    MEMORY = "memory"  # memory.size/grow: reserved zero byte
    I32 = "i32"
    I64 = "i64"
    F32 = "f32"
    F64 = "f64"


class Category(enum.Enum):
    """Coarse instruction category used by cost models and instrumentation."""

    CONTROL = "control"
    PARAMETRIC = "parametric"
    VARIABLE = "variable"
    MEMORY = "memory"
    CONST = "const"
    COMPARISON = "comparison"
    NUMERIC = "numeric"
    CONVERSION = "conversion"


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one instruction."""

    name: str
    opcode: int
    imm: ImmKind
    category: Category


def _ops() -> list[OpInfo]:
    ops: list[OpInfo] = []

    def add(name: str, opcode: int, imm: ImmKind, category: Category) -> None:
        ops.append(OpInfo(name, opcode, imm, category))

    C, P, V, M = Category.CONTROL, Category.PARAMETRIC, Category.VARIABLE, Category.MEMORY
    K, CMP, N, CV = Category.CONST, Category.COMPARISON, Category.NUMERIC, Category.CONVERSION

    # Control instructions.
    add("unreachable", 0x00, ImmKind.NONE, C)
    add("nop", 0x01, ImmKind.NONE, C)
    add("block", 0x02, ImmKind.BLOCKTYPE, C)
    add("loop", 0x03, ImmKind.BLOCKTYPE, C)
    add("if", 0x04, ImmKind.BLOCKTYPE, C)
    add("else", 0x05, ImmKind.NONE, C)
    add("end", 0x0B, ImmKind.NONE, C)
    add("br", 0x0C, ImmKind.DEPTH, C)
    add("br_if", 0x0D, ImmKind.DEPTH, C)
    add("br_table", 0x0E, ImmKind.BRTABLE, C)
    add("return", 0x0F, ImmKind.NONE, C)
    add("call", 0x10, ImmKind.FUNC, C)
    add("call_indirect", 0x11, ImmKind.TYPE, C)

    # Parametric instructions.
    add("drop", 0x1A, ImmKind.NONE, P)
    add("select", 0x1B, ImmKind.NONE, P)

    # Variable instructions.
    add("local.get", 0x20, ImmKind.LOCAL, V)
    add("local.set", 0x21, ImmKind.LOCAL, V)
    add("local.tee", 0x22, ImmKind.LOCAL, V)
    add("global.get", 0x23, ImmKind.GLOBAL, V)
    add("global.set", 0x24, ImmKind.GLOBAL, V)

    # Memory instructions.
    loads = [
        "i32.load", "i64.load", "f32.load", "f64.load",
        "i32.load8_s", "i32.load8_u", "i32.load16_s", "i32.load16_u",
        "i64.load8_s", "i64.load8_u", "i64.load16_s", "i64.load16_u",
        "i64.load32_s", "i64.load32_u",
    ]
    for i, name in enumerate(loads):
        add(name, 0x28 + i, ImmKind.MEMARG, M)
    stores = [
        "i32.store", "i64.store", "f32.store", "f64.store",
        "i32.store8", "i32.store16",
        "i64.store8", "i64.store16", "i64.store32",
    ]
    for i, name in enumerate(stores):
        add(name, 0x36 + i, ImmKind.MEMARG, M)
    add("memory.size", 0x3F, ImmKind.MEMORY, M)
    add("memory.grow", 0x40, ImmKind.MEMORY, M)

    # Constants.
    add("i32.const", 0x41, ImmKind.I32, K)
    add("i64.const", 0x42, ImmKind.I64, K)
    add("f32.const", 0x43, ImmKind.F32, K)
    add("f64.const", 0x44, ImmKind.F64, K)

    # Comparisons.
    i_cmps = ["eqz", "eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u", "le_s", "le_u", "ge_s", "ge_u"]
    for i, suffix in enumerate(i_cmps):
        add(f"i32.{suffix}", 0x45 + i, ImmKind.NONE, CMP)
    for i, suffix in enumerate(i_cmps):
        add(f"i64.{suffix}", 0x50 + i, ImmKind.NONE, CMP)
    f_cmps = ["eq", "ne", "lt", "gt", "le", "ge"]
    for i, suffix in enumerate(f_cmps):
        add(f"f32.{suffix}", 0x5B + i, ImmKind.NONE, CMP)
    for i, suffix in enumerate(f_cmps):
        add(f"f64.{suffix}", 0x61 + i, ImmKind.NONE, CMP)

    # Integer numeric operators.
    i_ops = [
        "clz", "ctz", "popcnt", "add", "sub", "mul", "div_s", "div_u",
        "rem_s", "rem_u", "and", "or", "xor", "shl", "shr_s", "shr_u",
        "rotl", "rotr",
    ]
    for i, suffix in enumerate(i_ops):
        add(f"i32.{suffix}", 0x67 + i, ImmKind.NONE, N)
    for i, suffix in enumerate(i_ops):
        add(f"i64.{suffix}", 0x79 + i, ImmKind.NONE, N)

    # Float numeric operators.
    f_ops = [
        "abs", "neg", "ceil", "floor", "trunc", "nearest", "sqrt",
        "add", "sub", "mul", "div", "min", "max", "copysign",
    ]
    for i, suffix in enumerate(f_ops):
        add(f"f32.{suffix}", 0x8B + i, ImmKind.NONE, N)
    for i, suffix in enumerate(f_ops):
        add(f"f64.{suffix}", 0x99 + i, ImmKind.NONE, N)

    # Conversions.
    conversions = [
        "i32.wrap_i64", "i32.trunc_f32_s", "i32.trunc_f32_u",
        "i32.trunc_f64_s", "i32.trunc_f64_u",
        "i64.extend_i32_s", "i64.extend_i32_u",
        "i64.trunc_f32_s", "i64.trunc_f32_u",
        "i64.trunc_f64_s", "i64.trunc_f64_u",
        "f32.convert_i32_s", "f32.convert_i32_u",
        "f32.convert_i64_s", "f32.convert_i64_u", "f32.demote_f64",
        "f64.convert_i32_s", "f64.convert_i32_u",
        "f64.convert_i64_s", "f64.convert_i64_u", "f64.promote_f32",
        "i32.reinterpret_f32", "i64.reinterpret_f64",
        "f32.reinterpret_i32", "f64.reinterpret_i64",
    ]
    for i, name in enumerate(conversions):
        add(name, 0xA7 + i, ImmKind.NONE, CV)

    return ops


#: All instructions, ordered by opcode.
OPCODES: tuple[OpInfo, ...] = tuple(sorted(_ops(), key=lambda o: o.opcode))

#: Lookup tables.
INSTRUCTIONS_BY_NAME: dict[str, OpInfo] = {op.name: op for op in OPCODES}
INSTRUCTIONS_BY_OPCODE: dict[int, OpInfo] = {op.opcode: op for op in OPCODES}

#: Names of instructions that terminate a basic block (for the CFG builder).
BLOCK_TERMINATORS: frozenset[str] = frozenset(
    {"br", "br_if", "br_table", "return", "unreachable", "if", "else", "end",
     "block", "loop"}
)

#: Instructions the pre-decoded engine executes one at a time rather than
#: inside a batched straight-line segment: every control transfer (a segment
#: may not span a jump source or target) plus ``memory.grow``, whose
#: ``grow_history`` entries record the exact instruction count at grow time.
SEGMENT_BARRIERS: frozenset[str] = frozenset(
    {"block", "loop", "if", "else", "end", "br", "br_if", "br_table",
     "return", "call", "call_indirect", "unreachable", "memory.grow"}
)

#: Non-control instructions that can raise a runtime :class:`Trap`: memory
#: accesses (out-of-bounds), integer division/remainder (zero divisor or
#: overflow) and float-to-int truncation (NaN or overflow).  The pre-decoded
#: engine tracks the in-segment position of these so a mid-segment trap can
#: be attributed to the exact instruction (visit counts stay precise).
TRAPPING_INSTRUCTIONS: frozenset[str] = frozenset(
    {op.name for op in _ops() if op.category is Category.MEMORY}
    | {f"{p}.{s}" for p in ("i32", "i64") for s in ("div_s", "div_u", "rem_s", "rem_u")}
    | {name for name in (f"{p}.trunc_f{w}_{sg}" for p in ("i32", "i64")
                         for w in ("32", "64") for sg in ("s", "u"))}
)

#: Plain computational instructions: constants, comparisons, numeric
#: operators and conversions — excluding control flow, memory accesses and
#: administrative (variable/parametric) instructions.  Exactly the 127
#: instructions of the paper's Fig. 7 microbenchmark.
PLAIN_INSTRUCTIONS: tuple[str, ...] = tuple(
    op.name
    for op in OPCODES
    if op.category in (Category.CONST, Category.COMPARISON, Category.NUMERIC, Category.CONVERSION)
)


@dataclass(frozen=True)
class Instr:
    """One instruction in a function body: a name plus immediate operands.

    Function bodies are *flat* sequences (as in the binary format): structured
    instructions (``block``/``loop``/``if``) are paired with explicit ``end``
    (and optional ``else``) markers rather than nesting child lists.  This
    representation makes instrumentation (inserting counter updates at precise
    points) straightforward.
    """

    name: str
    args: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.name not in INSTRUCTIONS_BY_NAME:
            raise ValueError(f"unknown instruction {self.name!r}")

    @property
    def info(self) -> OpInfo:
        return INSTRUCTIONS_BY_NAME[self.name]

    @property
    def is_control(self) -> bool:
        return self.info.category is Category.CONTROL

    def __repr__(self) -> str:  # compact form for test failure output
        if not self.args:
            return f"Instr({self.name})"
        return f"Instr({self.name} {' '.join(map(str, self.args))})"
