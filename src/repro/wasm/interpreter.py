"""WebAssembly stack-machine interpreter.

Executes validated modules with precise MVP semantics and, crucially for
AccTEE, *counts every instruction it visits*.  These visit counts are the
ground truth against which the instrumentation passes are verified: an
instrumented module's injected counter must equal the weighted visit count of
the original module on the same inputs.

Visit semantics are chosen so that control-flow joins are observable:

* ``end`` is visited on every path leaving its block — a branch to a
  block/if label jumps *to* the matching ``end`` (which pops the frame), and
  the true arm of an ``if``/``else`` jumps from ``else`` to the ``end``;
* a branch to a ``loop`` label re-visits the ``loop`` instruction itself,
  so the loop header starts a basic block executed once per iteration;
* ``return`` (and falling off the function body) leaves without visiting
  enclosing ``end`` markers.

The CFG builder in :mod:`repro.instrument.cfg` mirrors exactly these rules.
"""

from __future__ import annotations

import math
import struct
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.obs.profiler import active_profiler
from repro.wasm.costmodel import CostModel
from repro.wasm.engines import (
    ENGINE_NAMES,
    FALLBACK_ENGINE,
    UnknownEngineError,
    resolve_engine,
)
from repro.wasm.instructions import Instr
from repro.wasm.memory import LinearMemory, MemoryAccessError
from repro.wasm.module import Module
from repro.wasm.types import FuncType, GlobalType, ValType


class Trap(Exception):
    """A WebAssembly trap: execution aborts, no result is produced."""


@dataclass(frozen=True)
class CapturedFrame:
    """One suspended interpreter frame inside a snapshot.

    ``kind`` records how the frame suspended: ``"at_current"`` — the frame
    that hit the snapshot threshold; its ``pc`` instruction has not been
    charged or executed yet.  ``"at_call"`` — an ancestor frame suspended
    inside a ``call``/``call_indirect`` at ``pc``; its arguments are already
    popped, and resuming pushes the callee's results, counts the call and
    continues at ``pc + 1``.
    """

    func_index: int  # combined function index space (imports first)
    pc: int
    stack: tuple
    locals: tuple
    #: (opcode, start, end, stack_height, arity) per open control frame
    control: tuple
    kind: str  # "at_current" | "at_call"


class CaptureUnwind(BaseException):
    """Internal stack-unwind signal used while capturing a snapshot.

    A ``BaseException`` so generic ``except Exception`` handlers between the
    capture point and the top-level ``invoke`` cannot swallow it.  Each
    interpreter frame it passes through appends its :class:`CapturedFrame`
    (innermost first); ``invoke`` converts the finished unwind into a
    :class:`SnapshotCaptured`.
    """

    def __init__(self):
        self.frames: list[CapturedFrame] = []


class SnapshotCaptured(Exception):
    """Execution suspended at ``ExecutionLimits.snapshot_at``.

    Raised by :meth:`Instance.invoke` (and the snapshot package's resume
    helpers) instead of returning a value; ``.snapshot`` holds the full
    serializable execution state (:class:`repro.wasm.snapshot.Snapshot`).
    """

    def __init__(self, snapshot):
        super().__init__("execution state captured at observation point")
        self.snapshot = snapshot


#: Engine used when ``Instance(engine=None)`` and ``REPRO_WASM_ENGINE`` is
#: unset.  Kept for backwards compatibility; the registry in
#: :mod:`repro.wasm.engines` is the authoritative source (it reads the
#: environment variable at instantiation time, not import time).
DEFAULT_ENGINE = FALLBACK_ENGINE

#: Recognised values for ``Instance(engine=...)`` (re-exported from
#: :mod:`repro.wasm.engines` for backwards compatibility).
ENGINES = ENGINE_NAMES


class LinkError(Exception):
    """Raised at instantiation when imports cannot be satisfied."""


@dataclass
class ExecutionLimits:
    """Resource limits enforced during execution (the sandbox's outer guard)."""

    max_instructions: int | None = None
    max_call_depth: int = 500
    #: invoke ``progress_callback(stats)`` every this many executed
    #: instructions — the hook behind AccTEE's periodic accounting reports
    progress_interval: int | None = None
    progress_callback: Callable[["ExecutionStats"], None] | None = None
    #: arm state capture: suspend at the first observation point where
    #: ``stats.executed >= snapshot_at`` and raise :class:`SnapshotCaptured`
    #: from ``invoke`` carrying a :class:`repro.wasm.snapshot.Snapshot`.
    #: Armed runs execute on the capture interpreter regardless of engine —
    #: one canonical capture path keeps the serialized state (and therefore
    #: the snapshot format) engine-independent by construction, while the
    #: engine-differential contract keeps the metered stats byte-identical.
    snapshot_at: int | None = None


@dataclass
class ExecutionStats:
    """Counts collected while executing: the accounting ground truth."""

    visits: Counter = field(default_factory=Counter)
    executed: int = 0  # running total, kept alongside the per-name Counter
    cycles: float = 0.0
    loads: int = 0
    stores: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    calls: int = 0
    host_calls: int = 0
    #: (total_visits at the time, new page count) per successful memory.grow —
    #: drives the instruction-integral memory accounting policy (paper §3.5).
    grow_history: list[tuple[int, int]] = field(default_factory=list)

    @property
    def total_visits(self) -> int:
        return self.executed

    def weighted_visits(self, weights: dict[str, float]) -> float:
        """Total weight of all visited instructions under a weight table."""
        return sum(weights.get(name, 1.0) * n for name, n in self.visits.items())

    def unweighted_excluding(self, excluded: frozenset[str]) -> int:
        return sum(n for name, n in self.visits.items() if name not in excluded)


@dataclass
class HostFunction:
    """A host ("glue code") function callable from WebAssembly."""

    functype: FuncType
    fn: Callable[..., object]
    name: str = "<host>"


class GlobalInstance:
    """Runtime instance of a global variable."""

    def __init__(self, gtype: GlobalType, value):
        self.type = gtype
        self.value = value


class TableInstance:
    """Runtime funcref table (stores function indices or None)."""

    def __init__(self, minimum: int, maximum: int | None):
        self.elements: list[int | None] = [None] * minimum
        self.maximum = maximum


# ---------------------------------------------------------------------------
# Numeric helpers
# ---------------------------------------------------------------------------

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _signed(value: int, bits: int) -> int:
    if value >= 1 << (bits - 1):
        return value - (1 << bits)
    return value


def _trunc_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _trunc_rem(a: int, b: int) -> int:
    return a - _trunc_div(a, b) * b


def _f32(value: float) -> float:
    """Round a Python float to f32 precision."""
    try:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    except OverflowError:
        return math.inf if value > 0 else -math.inf


def _float_min(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return math.nan
    if a == b == 0.0:
        return a if math.copysign(1.0, a) < 0 else b
    return min(a, b)


def _float_max(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return math.nan
    if a == b == 0.0:
        return a if math.copysign(1.0, a) > 0 else b
    return max(a, b)


def _nearest(value: float) -> float:
    if math.isnan(value) or math.isinf(value):
        return value
    result = float(round(value))  # Python rounds half to even, as Wasm requires
    if result == 0.0 and math.copysign(1.0, value) < 0:
        return -0.0
    return result


def _trunc_to_int(value: float, bits: int, signed_result: bool) -> int:
    if math.isnan(value):
        raise Trap("invalid conversion to integer: NaN")
    if math.isinf(value):
        raise Trap("integer overflow in trunc")
    truncated = math.trunc(value)
    if signed_result:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if truncated < lo or truncated > hi:
        raise Trap("integer overflow in trunc")
    return truncated & ((1 << bits) - 1)


def _clz(value: int, bits: int) -> int:
    if value == 0:
        return bits
    return bits - value.bit_length()


def _ctz(value: int, bits: int) -> int:
    if value == 0:
        return bits
    return (value & -value).bit_length() - 1


def _rotl(value: int, count: int, bits: int) -> int:
    count %= bits
    mask = (1 << bits) - 1
    return ((value << count) | (value >> (bits - count))) & mask


def _rotr(value: int, count: int, bits: int) -> int:
    count %= bits
    mask = (1 << bits) - 1
    return ((value >> count) | (value << (bits - count))) & mask


def function_labels(module: Module) -> tuple[str, ...]:
    """Human-readable labels for *defined* functions, for profiler reports.

    Preference order: export name, the WAT ``$identifier``, then a
    positional ``func[i]`` fallback (combined index space, imports first).
    """
    n_imported = module.num_imported_funcs
    labels = [""] * len(module.funcs)
    for export in module.exports:
        if export.kind == "func" and export.index >= n_imported:
            defined = export.index - n_imported
            if defined < len(labels) and not labels[defined]:
                labels[defined] = export.name
    for i, func in enumerate(module.funcs):
        if not labels[i]:
            labels[i] = func.name or f"func[{n_imported + i}]"
    return tuple(labels)


# ---------------------------------------------------------------------------
# Structure maps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _StructInfo:
    """For a structured instruction at index i: its else/end partner indices."""

    end: int
    else_: int | None = None


def build_structure_map(body: Sequence[Instr]) -> dict[int, _StructInfo]:
    """Map each block/loop/if index to its matching else/end indices."""
    result: dict[int, _StructInfo] = {}
    stack: list[tuple[int, int | None]] = []  # (opener index, else index)
    for i, instr in enumerate(body):
        name = instr.name
        if name in ("block", "loop", "if"):
            stack.append((i, None))
        elif name == "else":
            if not stack:
                raise Trap("else without open block")
            opener, _ = stack.pop()
            stack.append((opener, i))
        elif name == "end":
            if not stack:
                raise Trap("end without open block")
            opener, else_index = stack.pop()
            result[opener] = _StructInfo(end=i, else_=else_index)
    if stack:
        raise Trap("unbalanced block structure")
    return result


# ---------------------------------------------------------------------------
# Instance
# ---------------------------------------------------------------------------


@dataclass
class _ControlEntry:
    opcode: str  # "block" | "loop" | "if"
    start: int
    end: int
    stack_height: int
    arity: int


class Instance:
    """An instantiated module, ready to invoke exported functions.

    ``imports`` maps ``module -> field -> object`` where objects are
    :class:`HostFunction`, :class:`LinearMemory`, :class:`GlobalInstance`
    or :class:`TableInstance`.

    ``engine`` selects the execution engine (see :mod:`repro.wasm.engines`):
    ``"predecode"`` (the default) compiles every function body once at
    instantiation into a flat handler array with per-basic-block visit
    batching, ``"compile"`` translates function bodies to Python source with
    folded meter counters (:mod:`repro.wasm.compile_engine`), and
    ``"legacy"`` keeps the original per-instruction string-dispatch loop.
    All three produce identical :class:`ExecutionStats`.
    """

    def __init__(
        self,
        module: Module,
        imports: dict[str, dict[str, object]] | None = None,
        cost_model: CostModel | None = None,
        limits: ExecutionLimits | None = None,
        engine: str | None = None,
    ):
        self.module = module
        self.cost_model = cost_model
        self.limits = limits or ExecutionLimits()
        self.stats = ExecutionStats()
        imports = imports or {}

        # -- functions: imported host functions first
        self.host_funcs: list[HostFunction] = []
        for imp in module.imports:
            if imp.kind != "func":
                continue
            resolved = self._resolve(imports, imp)
            if not isinstance(resolved, HostFunction):
                raise LinkError(f"import {imp.module}.{imp.field} is not a function")
            declared = module.types[imp.desc]
            if resolved.functype != declared:
                raise LinkError(
                    f"import {imp.module}.{imp.field} type mismatch: "
                    f"declared {declared}, provided {resolved.functype}"
                )
            self.host_funcs.append(resolved)

        # -- memory
        self.memory: LinearMemory | None = None
        for imp in module.imports:
            if imp.kind == "memory":
                resolved = self._resolve(imports, imp)
                if not isinstance(resolved, LinearMemory):
                    raise LinkError(f"import {imp.module}.{imp.field} is not a memory")
                self.memory = resolved
        if module.memories:
            limits_decl = module.memories[0].limits
            self.memory = LinearMemory(limits_decl.minimum, limits_decl.maximum)

        # -- globals: imported then defined
        self.globals: list[GlobalInstance] = []
        for imp in module.imports:
            if imp.kind == "global":
                resolved = self._resolve(imports, imp)
                if not isinstance(resolved, GlobalInstance):
                    raise LinkError(f"import {imp.module}.{imp.field} is not a global")
                self.globals.append(resolved)
        for g in module.globals:
            value = self._eval_const(g.init)
            self.globals.append(GlobalInstance(g.type, value))

        # -- table
        self.table: TableInstance | None = None
        for imp in module.imports:
            if imp.kind == "table":
                resolved = self._resolve(imports, imp)
                if not isinstance(resolved, TableInstance):
                    raise LinkError(f"import {imp.module}.{imp.field} is not a table")
                self.table = resolved
        if module.tables:
            decl = module.tables[0].limits
            self.table = TableInstance(decl.minimum, decl.maximum)

        # -- active segments
        for seg in module.data:
            if self.memory is None:
                raise LinkError("data segment without memory")
            offset = self._eval_const(seg.offset)
            try:
                self.memory.write(offset, seg.data)
            except MemoryAccessError as exc:
                raise LinkError(f"data segment out of bounds: {exc}") from exc
        for elem in module.elems:
            if self.table is None:
                raise LinkError("element segment without table")
            offset = self._eval_const(elem.offset)
            if offset + len(elem.func_indices) > len(self.table.elements):
                raise LinkError("element segment out of bounds")
            for i, func_index in enumerate(elem.func_indices):
                self.table.elements[offset + i] = func_index

        # -- precomputed structure maps per defined function
        self._structs: list[dict[int, _StructInfo]] = [
            build_structure_map(f.body) for f in module.funcs
        ]
        self._call_depth = 0
        #: hot-path profiler (repro.obs): snapshotted from the process-wide
        #: active profiler at each top-level invoke; None keeps the engines'
        #: profiler hooks on their no-cost path
        self._profiler = None
        self._func_labels: tuple[str, ...] | None = None

        # -- execution engine
        engine = resolve_engine(engine)
        self.engine = engine
        if engine == "predecode":
            from repro.wasm.predecode import PredecodedEngine

            self._engine = PredecodedEngine(self)
            self._engine.compile_all()
        elif engine == "compile":
            from repro.wasm.compile_engine import CompiledEngine

            self._engine = CompiledEngine(self)
        else:
            self._engine = None

        if module.start is not None:
            self.call_function(module.start, [])

    @staticmethod
    def _resolve(imports: dict[str, dict[str, object]], imp) -> object:
        try:
            return imports[imp.module][imp.field]
        except KeyError as exc:
            raise LinkError(f"unresolved import {imp.module}.{imp.field}") from exc

    def _eval_const(self, expr: list[Instr]):
        instr = expr[0]
        if instr.name == "i32.const":
            return instr.args[0] & _MASK32
        if instr.name == "i64.const":
            return instr.args[0] & _MASK64
        if instr.name in ("f32.const", "f64.const"):
            return instr.args[0]
        if instr.name == "global.get":
            return self.globals[instr.args[0]].value
        raise Trap(f"unsupported constant expression {instr.name}")

    # -- public API ------------------------------------------------------------

    def invoke(self, export_name: str, *args):
        """Invoke an exported function with Python ints/floats."""
        self._profiler = active_profiler()
        if self._profiler is not None and self._func_labels is None:
            self._func_labels = function_labels(self.module)
        func_index = self.module.export_index(export_name, "func")
        functype = self.module.func_type(func_index)
        if len(args) != len(functype.params):
            raise TypeError(
                f"{export_name} expects {len(functype.params)} arguments, got {len(args)}"
            )
        values = [self._to_wasm(arg, vt) for arg, vt in zip(args, functype.params)]
        try:
            results = self.call_function(func_index, values)
        except CaptureUnwind as unwind:
            from repro.wasm.snapshot.format import snapshot_from_unwind

            raise SnapshotCaptured(snapshot_from_unwind(self, unwind)) from None
        if not functype.results:
            return None
        result = results[0]
        if functype.results[0].is_int:
            return _signed(result, functype.results[0].bits)
        return result

    def global_value(self, name_or_index) -> object:
        """Read a global by export name or index (signed for integers)."""
        if isinstance(name_or_index, str):
            index = self.module.export_index(name_or_index, "global")
        else:
            index = name_or_index
        g = self.globals[index]
        if g.type.valtype.is_int:
            return _signed(g.value, g.type.valtype.bits)
        return g.value

    @staticmethod
    def _to_wasm(arg, vt: ValType):
        if vt.is_int:
            if not isinstance(arg, int):
                raise TypeError(f"expected int for {vt.value}, got {type(arg).__name__}")
            return arg & ((1 << vt.bits) - 1)
        return float(arg)

    # -- function invocation ------------------------------------------------------

    def call_function(self, func_index: int, args: list) -> list:
        """Call any function (imported or defined) by combined index."""
        n_imported = self.module.num_imported_funcs
        if func_index < n_imported:
            host = self.host_funcs[func_index]
            self.stats.host_calls += 1
            result = host.fn(*args)
            if not host.functype.results:
                return []
            vt = host.functype.results[0]
            if vt.is_int:
                return [int(result) & ((1 << vt.bits) - 1)]
            return [float(result)]

        if self._call_depth >= self.limits.max_call_depth:
            raise Trap("call stack exhausted")
        self._call_depth += 1
        try:
            defined = func_index - n_imported
            prof = self._profiler
            if prof is not None:
                prof.enter_function(
                    self._func_labels[defined], self.stats.executed, self.stats.cycles
                )
                try:
                    if self._engine is not None and self.limits.snapshot_at is None:
                        return self._engine.exec_function(defined, args)
                    return self._exec_function(defined, args)
                finally:
                    prof.exit_function(self.stats.executed, self.stats.cycles)
            # snapshot-armed runs always execute on the capture interpreter —
            # the single code path that can suspend with engine-independent
            # frame state (stats stay byte-identical per the differential
            # contract, so capture position and contents do not depend on
            # which engine the instance was configured with)
            if self._engine is not None and self.limits.snapshot_at is None:
                return self._engine.exec_function(defined, args)
            return self._exec_function(defined, args)
        finally:
            self._call_depth -= 1

    # -- the main loop -----------------------------------------------------------

    def _exec_function(
        self, defined_index: int, args: list, resume: tuple | None = None
    ) -> list:
        module = self.module
        func = module.funcs[defined_index]
        functype = module.types[func.type_index]
        structs = self._structs[defined_index]
        body = func.body
        stats = self.stats
        cost = self.cost_model
        limits = self.limits
        snapshot_at = limits.snapshot_at
        prof = self._profiler
        prof_label = (
            self._func_labels[defined_index] if prof is not None else ""
        )

        if resume is not None:
            # re-enter a suspended frame exactly where its snapshot left it
            pc, stack, locals_, control = resume
        else:
            locals_ = list(args)
            for vt in func.locals:
                locals_.append(0 if vt.is_int else 0.0)
            stack = []
            control = []
            pc = 0
        n = len(body)

        while pc < n:
            instr = body[pc]
            name = instr.name

            # capture BEFORE charging: the pc instruction has not executed,
            # so a resumed run re-charges and re-runs it — final stats are
            # byte-identical to the uninterrupted run
            if snapshot_at is not None and stats.executed >= snapshot_at:
                unwind = CaptureUnwind()
                unwind.frames.append(
                    self._captured_frame(
                        defined_index, pc, stack, locals_, control, "at_current"
                    )
                )
                raise unwind

            stats.visits[name] += 1
            stats.executed += 1
            if prof is not None:
                prof.record_point(prof_label, pc)
            if cost is not None:
                stats.cycles += cost.instruction_cycles(name)
            if limits.max_instructions is not None and stats.executed > limits.max_instructions:
                raise Trap("instruction budget exhausted")
            if (
                limits.progress_interval is not None
                and limits.progress_callback is not None
                and stats.executed % limits.progress_interval == 0
            ):
                limits.progress_callback(stats)

            # ---- control flow -------------------------------------------------
            if name == "end":
                if control:
                    control.pop()
                pc += 1
                continue
            if name in ("block", "loop"):
                info = structs[pc]
                # label arity: values a branch transports — results for a
                # block, none for a loop (MVP loops take no parameters)
                arity = 0 if name == "loop" else len(instr.args[0])
                control.append(_ControlEntry(name, pc, info.end, len(stack), arity))
                pc += 1
                continue
            if name == "if":
                info = structs[pc]
                cond = stack.pop()
                control.append(
                    _ControlEntry("if", pc, info.end, len(stack), len(instr.args[0]))
                )
                if cond:
                    pc += 1
                elif info.else_ is not None:
                    pc = info.else_ + 1
                else:
                    pc = info.end  # visit the end marker, which pops the frame
                continue
            if name == "else":
                # reached only by falling out of the true arm: jump to end
                entry = control[-1]
                pc = entry.end  # end pops the frame when visited
                continue
            if name == "br":
                pc = self._branch(instr.args[0], stack, control, pc)
                continue
            if name == "br_if":
                cond = stack.pop()
                if cond:
                    pc = self._branch(instr.args[0], stack, control, pc)
                else:
                    pc += 1
                continue
            if name == "br_table":
                depths, default = instr.args
                index = stack.pop()
                depth = depths[index] if index < len(depths) else default
                pc = self._branch(depth, stack, control, pc)
                continue
            if name == "return":
                break
            if name == "call":
                call_args = self._pop_args(stack, instr.args[0])
                try:
                    results = self.call_function(instr.args[0], call_args)
                except CaptureUnwind as unwind:
                    unwind.frames.append(
                        self._captured_frame(
                            defined_index, pc, stack, locals_, control, "at_call"
                        )
                    )
                    raise
                stack.extend(results)
                stats.calls += 1
                pc += 1
                continue
            if name == "call_indirect":
                type_index = instr.args[0]
                table_index = stack.pop()
                if self.table is None or table_index >= len(self.table.elements):
                    raise Trap("undefined table element")
                target = self.table.elements[table_index]
                if target is None:
                    raise Trap("uninitialized table element")
                target_type = module.func_type(target)
                if target_type != module.types[type_index]:
                    raise Trap("indirect call type mismatch")
                call_args = [stack.pop() for _ in target_type.params][::-1]
                try:
                    results = self.call_function(target, call_args)
                except CaptureUnwind as unwind:
                    unwind.frames.append(
                        self._captured_frame(
                            defined_index, pc, stack, locals_, control, "at_call"
                        )
                    )
                    raise
                stack.extend(results)
                stats.calls += 1
                pc += 1
                continue
            if name == "unreachable":
                raise Trap("unreachable executed")
            if name == "nop":
                pc += 1
                continue

            # ---- everything else ----------------------------------------------
            self._exec_simple(instr, name, stack, locals_)
            pc += 1

        # function exit: top |results| values
        n_results = len(functype.results)
        if n_results == 0:
            return []
        if len(stack) < n_results:
            raise Trap("function returned with empty stack")
        return stack[-n_results:]

    def _captured_frame(
        self,
        defined_index: int,
        pc: int,
        stack: list,
        locals_: list,
        control: list[_ControlEntry],
        kind: str,
    ) -> CapturedFrame:
        return CapturedFrame(
            func_index=self.module.num_imported_funcs + defined_index,
            pc=pc,
            stack=tuple(stack),
            locals=tuple(locals_),
            control=tuple(
                (c.opcode, c.start, c.end, c.stack_height, c.arity) for c in control
            ),
            kind=kind,
        )

    def _pop_args(self, stack: list, func_index: int) -> list:
        functype = self.module.func_type(func_index)
        count = len(functype.params)
        if count == 0:
            return []
        args = stack[-count:]
        del stack[-count:]
        return args

    @staticmethod
    def _branch(depth: int, stack: list, control: list[_ControlEntry], pc: int) -> int:
        if depth >= len(control):
            # branch out of the function body: treated as return; caller's
            # while loop ends because we jump past the end.
            del control[:]
            return 1 << 60
        entry = control[-1 - depth]
        # keep label-arity values, truncate the rest
        kept = stack[len(stack) - entry.arity :] if entry.arity else []
        del stack[entry.stack_height :]
        stack.extend(kept)
        if entry.opcode == "loop":
            # pop all frames above and including the target; re-visiting the
            # loop header re-pushes its frame
            del control[len(control) - 1 - depth :]
            return entry.start
        # pop frames *above* the target only; the visited end marker pops it
        del control[len(control) - depth :]
        return entry.end

    # -- non-control instructions -------------------------------------------------

    def _exec_simple(self, instr: Instr, name: str, stack: list, locals_: list) -> None:
        stats = self.stats
        if name == "local.get":
            stack.append(locals_[instr.args[0]])
            return
        if name == "local.set":
            locals_[instr.args[0]] = stack.pop()
            return
        if name == "local.tee":
            locals_[instr.args[0]] = stack[-1]
            return
        if name == "global.get":
            stack.append(self.globals[instr.args[0]].value)
            return
        if name == "global.set":
            self.globals[instr.args[0]].value = stack.pop()
            return
        if name == "drop":
            stack.pop()
            return
        if name == "select":
            cond = stack.pop()
            b = stack.pop()
            a = stack.pop()
            stack.append(a if cond else b)
            return

        dot = name.find(".")
        if dot == -1:
            if name == "memory.size":  # unreachable: no dot — handled below
                pass
        prefix = name[:dot] if dot != -1 else name
        suffix = name[dot + 1 :] if dot != -1 else ""

        if name.startswith("memory."):
            self._exec_memory_admin(name, stack)
            return
        if "load" in suffix or "store" in suffix:
            self._exec_memory_access(instr, name, prefix, suffix, stack)
            return
        if suffix == "const":
            stack.append(instr.args[0])
            return

        if prefix in ("i32", "i64"):
            bits = 32 if prefix == "i32" else 64
            self._exec_int(name, suffix, bits, stack)
        else:
            self._exec_float(name, prefix, suffix, stack)

    def _exec_memory_admin(self, name: str, stack: list) -> None:
        if self.memory is None:
            raise Trap("no memory")
        if name == "memory.size":
            stack.append(self.memory.pages)
        else:  # memory.grow
            delta = stack.pop()
            result = self.memory.grow(delta)
            if result >= 0:
                self.stats.grow_history.append((self.stats.total_visits, self.memory.pages))
            stack.append(result & _MASK32)

    def _exec_memory_access(self, instr: Instr, name: str, prefix: str, suffix: str, stack: list) -> None:
        if self.memory is None:
            raise Trap("no memory")
        _align, offset = instr.args
        is_store = "store" in suffix
        vt_bits = 32 if prefix in ("i32", "f32") else 64
        # partial-width accesses
        width = vt_bits // 8
        for marker, w in (("8", 1), ("16", 2), ("32", 4)):
            if suffix.endswith((f"load{marker}_s", f"load{marker}_u", f"store{marker}")):
                width = w
                break
        try:
            if is_store:
                value = stack.pop()
                address = (stack.pop() + offset) & _MASK64
                if prefix == "f32":
                    self.memory.store_f32(address, value)
                elif prefix == "f64":
                    self.memory.store_f64(address, value)
                else:
                    self.memory.store_int(address, value, width)
                self.stats.stores += 1
                self.stats.bytes_stored += width
            else:
                address = (stack.pop() + offset) & _MASK64
                if prefix == "f32":
                    result = self.memory.load_f32(address)
                elif prefix == "f64":
                    result = self.memory.load_f64(address)
                else:
                    signed = suffix.endswith("_s")
                    raw = self.memory.load_int(address, width, signed=signed)
                    result = raw & ((1 << vt_bits) - 1)
                stack.append(result)
                self.stats.loads += 1
                self.stats.bytes_loaded += width
        except MemoryAccessError as exc:
            raise Trap(str(exc)) from exc
        if self.cost_model is not None:
            self.stats.cycles += self.cost_model.memory_access_cycles(address, width, is_store)

    def _exec_int(self, name: str, suffix: str, bits: int, stack: list) -> None:
        mask = (1 << bits) - 1
        if suffix == "eqz":
            stack.append(1 if stack.pop() == 0 else 0)
            return
        if suffix in ("clz", "ctz", "popcnt"):
            v = stack.pop()
            if suffix == "clz":
                stack.append(_clz(v, bits))
            elif suffix == "ctz":
                stack.append(_ctz(v, bits))
            else:
                stack.append(bin(v).count("1"))
            return
        if suffix in ("wrap_i64",):
            stack.append(stack.pop() & _MASK32)
            return
        if suffix in ("extend_i32_s", "extend_i32_u"):
            v = stack.pop()
            if suffix.endswith("_s"):
                stack.append(_signed(v, 32) & _MASK64)
            else:
                stack.append(v & _MASK32)
            return
        if suffix.startswith("trunc_f"):
            v = stack.pop()
            stack.append(_trunc_to_int(v, bits, suffix.endswith("_s")))
            return
        if suffix.startswith("reinterpret"):
            v = stack.pop()
            fmt = "<f" if bits == 32 else "<d"
            ifmt = "<I" if bits == 32 else "<Q"
            if bits == 32:
                v = _f32(v)
            stack.append(struct.unpack(ifmt, struct.pack(fmt, v))[0])
            return

        b = stack.pop()
        a = stack.pop()
        sa, sb = _signed(a, bits), _signed(b, bits)
        if suffix == "add":
            stack.append((a + b) & mask)
        elif suffix == "sub":
            stack.append((a - b) & mask)
        elif suffix == "mul":
            stack.append((a * b) & mask)
        elif suffix == "div_s":
            if b == 0:
                raise Trap("integer divide by zero")
            if sa == -(1 << (bits - 1)) and sb == -1:
                raise Trap("integer overflow")
            stack.append(_trunc_div(sa, sb) & mask)
        elif suffix == "div_u":
            if b == 0:
                raise Trap("integer divide by zero")
            stack.append((a // b) & mask)
        elif suffix == "rem_s":
            if b == 0:
                raise Trap("integer divide by zero")
            stack.append(_trunc_rem(sa, sb) & mask)
        elif suffix == "rem_u":
            if b == 0:
                raise Trap("integer divide by zero")
            stack.append((a % b) & mask)
        elif suffix == "and":
            stack.append(a & b)
        elif suffix == "or":
            stack.append(a | b)
        elif suffix == "xor":
            stack.append(a ^ b)
        elif suffix == "shl":
            stack.append((a << (b % bits)) & mask)
        elif suffix == "shr_u":
            stack.append(a >> (b % bits))
        elif suffix == "shr_s":
            stack.append((sa >> (b % bits)) & mask)
        elif suffix == "rotl":
            stack.append(_rotl(a, b, bits))
        elif suffix == "rotr":
            stack.append(_rotr(a, b, bits))
        elif suffix == "eq":
            stack.append(1 if a == b else 0)
        elif suffix == "ne":
            stack.append(1 if a != b else 0)
        elif suffix == "lt_s":
            stack.append(1 if sa < sb else 0)
        elif suffix == "lt_u":
            stack.append(1 if a < b else 0)
        elif suffix == "gt_s":
            stack.append(1 if sa > sb else 0)
        elif suffix == "gt_u":
            stack.append(1 if a > b else 0)
        elif suffix == "le_s":
            stack.append(1 if sa <= sb else 0)
        elif suffix == "le_u":
            stack.append(1 if a <= b else 0)
        elif suffix == "ge_s":
            stack.append(1 if sa >= sb else 0)
        elif suffix == "ge_u":
            stack.append(1 if a >= b else 0)
        else:  # pragma: no cover - validator rejects unknown ops earlier
            raise Trap(f"unhandled instruction {name}")

    def _exec_float(self, name: str, prefix: str, suffix: str, stack: list) -> None:
        narrow = prefix == "f32"

        def out(value: float) -> None:
            stack.append(_f32(value) if narrow else value)

        if suffix.startswith("convert_i"):
            v = stack.pop()
            bits = 32 if "i32" in suffix else 64
            if suffix.endswith("_s"):
                v = _signed(v, bits)
            out(float(v))
            return
        if suffix == "demote_f64":
            out(stack.pop())
            return
        if suffix == "promote_f32":
            stack.append(float(stack.pop()))
            return
        if suffix.startswith("reinterpret"):
            v = stack.pop()
            if narrow:
                stack.append(struct.unpack("<f", struct.pack("<I", v & _MASK32))[0])
            else:
                stack.append(struct.unpack("<d", struct.pack("<Q", v & _MASK64))[0])
            return

        unary = {
            "abs": abs,
            "neg": lambda v: -v,
            "sqrt": lambda v: math.sqrt(v) if v >= 0 else math.nan,
            "ceil": lambda v: v if math.isnan(v) or math.isinf(v) else float(math.ceil(v)),
            "floor": lambda v: v if math.isnan(v) or math.isinf(v) else float(math.floor(v)),
            "trunc": lambda v: v if math.isnan(v) or math.isinf(v) else float(math.trunc(v)),
            "nearest": _nearest,
        }
        if suffix in unary:
            out(unary[suffix](stack.pop()))
            return

        b = stack.pop()
        a = stack.pop()
        if suffix == "add":
            out(a + b)
        elif suffix == "sub":
            out(a - b)
        elif suffix == "mul":
            out(a * b)
        elif suffix == "div":
            if b == 0.0:
                if a == 0.0 or math.isnan(a):
                    out(math.nan)
                else:
                    out(math.copysign(math.inf, a) * math.copysign(1.0, b))
            else:
                out(a / b)
        elif suffix == "min":
            out(_float_min(a, b))
        elif suffix == "max":
            out(_float_max(a, b))
        elif suffix == "copysign":
            out(math.copysign(a, b))
        elif suffix == "eq":
            stack.append(1 if a == b else 0)
        elif suffix == "ne":
            stack.append(1 if a != b else 0)
        elif suffix == "lt":
            stack.append(1 if a < b else 0)
        elif suffix == "gt":
            stack.append(1 if a > b else 0)
        elif suffix == "le":
            stack.append(1 if a <= b else 0)
        elif suffix == "ge":
            stack.append(1 if a >= b else 0)
        else:  # pragma: no cover
            raise Trap(f"unhandled instruction {name}")
