"""Main/side module linking (paper §4.1).

AccTEE avoids accepting per-workload JavaScript glue by splitting modules
the Emscripten way: a *main module* statically included in the framework
exports the standard-library surface, and each dynamically loaded *side
module* (the workload) imports what it needs from the main module — no
additional glue code required.

:func:`instantiate_side_module` resolves a side module's ``env`` function
imports against a main instance's exports (falling back to the host
environment's own functions), so workloads can call shared library routines
without the infrastructure provider trusting any workload-supplied host
code.
"""

from __future__ import annotations

from repro.wasm.interpreter import HostFunction, Instance, LinkError
from repro.wasm.module import Module


def exported_functions(instance: Instance) -> dict[str, HostFunction]:
    """Wrap every exported function of an instance as a callable import."""
    out: dict[str, HostFunction] = {}
    for export in instance.module.exports:
        if export.kind != "func":
            continue
        functype = instance.module.func_type(export.index)

        def call(*args, _instance=instance, _index=export.index, _ft=functype):
            results = _instance.call_function(_index, list(args))
            return results[0] if results else None

        out[export.name] = HostFunction(functype, call, export.name)
    return out


def instantiate_side_module(
    main_instance: Instance,
    side_module: Module,
    extra_imports: dict[str, dict[str, object]] | None = None,
    **kwargs,
) -> Instance:
    """Instantiate a side module against a main module's exports.

    Function imports from the ``env`` namespace resolve, in order, against
    (1) ``extra_imports`` (typically the accountable I/O functions of a
    :class:`~repro.wasm.runtime.HostEnvironment`), then (2) the main
    instance's exports.  Unresolvable imports raise
    :class:`~repro.wasm.interpreter.LinkError`.
    """
    library = exported_functions(main_instance)
    imports: dict[str, dict[str, object]] = {"env": {}}
    if extra_imports:
        for namespace, entries in extra_imports.items():
            imports.setdefault(namespace, {}).update(entries)
    for imp in side_module.imports:
        if imp.kind != "func":
            continue
        if imp.field in imports.get(imp.module, {}):
            continue
        if imp.module == "env" and imp.field in library:
            imports["env"][imp.field] = library[imp.field]
            continue
        raise LinkError(
            f"side module import {imp.module}.{imp.field} matches neither the "
            "host environment nor the main module's exports"
        )
    return Instance(side_module, imports=imports, **kwargs)
