"""Linear memory: a growable, bounds-checked byte array in 64 KiB pages.

Linear memory can only grow (the property AccTEE's memory accounting relies
on, §3.5 of the paper), so :class:`LinearMemory` records its peak size —
which equals its current size — and exposes the page history for the
instruction-integral accounting policy.
"""

from __future__ import annotations

import struct

PAGE_SIZE = 0x10000  # 64 KiB
#: Hard cap of the 32-bit address space, in pages.
MAX_PAGES = 0x10000


class MemoryAccessError(Exception):
    """Out-of-bounds linear memory access (translates to a trap)."""


class LinearMemory:
    """A WebAssembly linear memory instance."""

    def __init__(self, minimum_pages: int, maximum_pages: int | None = None):
        if minimum_pages > MAX_PAGES:
            raise ValueError("initial memory exceeds 4 GiB address space")
        if maximum_pages is not None and maximum_pages < minimum_pages:
            raise ValueError("memory maximum below minimum")
        self._data = bytearray(minimum_pages * PAGE_SIZE)
        self._maximum = maximum_pages
        self.grow_events: list[int] = []  # page counts after each successful grow

    @property
    def pages(self) -> int:
        return len(self._data) // PAGE_SIZE

    @property
    def size_bytes(self) -> int:
        return len(self._data)

    @property
    def peak_bytes(self) -> int:
        """Peak = current size, because linear memory never shrinks."""
        return len(self._data)

    def grow(self, delta_pages: int) -> int:
        """Grow by ``delta_pages``; returns the old page count, or -1 on failure."""
        if delta_pages < 0:
            return -1
        old = self.pages
        new = old + delta_pages
        if new > MAX_PAGES:
            return -1
        if self._maximum is not None and new > self._maximum:
            return -1
        self._data.extend(bytes(delta_pages * PAGE_SIZE))
        self.grow_events.append(new)
        return old

    # -- raw byte access -------------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        if address < 0 or length < 0 or address + length > len(self._data):
            raise MemoryAccessError(
                f"read of {length} bytes at {address} out of bounds ({len(self._data)})"
            )
        return bytes(self._data[address : address + length])

    def write(self, address: int, data: bytes) -> None:
        if address < 0 or address + len(data) > len(self._data):
            raise MemoryAccessError(
                f"write of {len(data)} bytes at {address} out of bounds ({len(self._data)})"
            )
        self._data[address : address + len(data)] = data

    # -- typed access (little-endian, as the spec requires) ---------------------

    def load_int(self, address: int, byte_width: int, signed: bool) -> int:
        raw = self.read(address, byte_width)
        return int.from_bytes(raw, "little", signed=signed)

    def store_int(self, address: int, value: int, byte_width: int) -> None:
        mask = (1 << (byte_width * 8)) - 1
        self.write(address, (value & mask).to_bytes(byte_width, "little"))

    def load_f32(self, address: int) -> float:
        return struct.unpack("<f", self.read(address, 4))[0]

    def store_f32(self, address: int, value: float) -> None:
        try:
            self.write(address, struct.pack("<f", value))
        except OverflowError:
            inf = float("inf") if value > 0 else float("-inf")
            self.write(address, struct.pack("<f", inf))

    def load_f64(self, address: int) -> float:
        return struct.unpack("<d", self.read(address, 8))[0]

    def store_f64(self, address: int, value: float) -> None:
        self.write(address, struct.pack("<d", value))
