"""Module-level IR: functions, globals, memories, tables, imports, exports."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.wasm.instructions import Instr
from repro.wasm.types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType


@dataclass
class Function:
    """A defined function: its type, extra locals and flat instruction body.

    ``name`` is the optional ``$identifier`` from the text format; indices are
    what the semantics use.  ``body`` excludes the implicit trailing ``end``
    of the binary format — the interpreter treats falling off the end of the
    list as the function's return point.
    """

    type_index: int
    locals: tuple[ValType, ...] = ()
    body: list[Instr] = field(default_factory=list)
    name: str | None = None


@dataclass
class Global:
    """A module global with a constant initializer expression."""

    type: GlobalType
    init: list[Instr] = field(default_factory=list)
    name: str | None = None


@dataclass(frozen=True)
class Export:
    """An export: external name plus the kind and index of the exported item."""

    name: str
    kind: str  # "func" | "memory" | "global" | "table"
    index: int


@dataclass(frozen=True)
class Import:
    """An import: module/field names plus a type descriptor.

    ``desc`` is a :class:`FuncType` index for functions, or the respective
    type object for memories, globals and tables.
    """

    module: str
    field: str
    kind: str  # "func" | "memory" | "global" | "table"
    desc: object
    name: str | None = None


@dataclass(frozen=True)
class DataSegment:
    """An active data segment: bytes copied into memory at instantiation."""

    memory_index: int
    offset: list[Instr]
    data: bytes


@dataclass(frozen=True)
class ElemSegment:
    """An active element segment: function indices copied into a table."""

    table_index: int
    offset: list[Instr]
    func_indices: tuple[int, ...]


@dataclass
class Module:
    """A complete WebAssembly module.

    Index spaces follow the spec: imported functions (and globals) come
    before defined ones.  ``funcs``/``globals`` hold only *defined* items;
    helpers below translate between the combined index space and the defined
    lists.
    """

    types: list[FuncType] = field(default_factory=list)
    imports: list[Import] = field(default_factory=list)
    funcs: list[Function] = field(default_factory=list)
    tables: list[TableType] = field(default_factory=list)
    memories: list[MemoryType] = field(default_factory=list)
    globals: list[Global] = field(default_factory=list)
    exports: list[Export] = field(default_factory=list)
    start: int | None = None
    elems: list[ElemSegment] = field(default_factory=list)
    data: list[DataSegment] = field(default_factory=list)
    name: str | None = None

    # -- index-space helpers -------------------------------------------------

    @property
    def imported_funcs(self) -> list[Import]:
        return [imp for imp in self.imports if imp.kind == "func"]

    @property
    def imported_globals(self) -> list[Import]:
        return [imp for imp in self.imports if imp.kind == "global"]

    @property
    def num_imported_funcs(self) -> int:
        return len(self.imported_funcs)

    @property
    def num_imported_globals(self) -> int:
        return len(self.imported_globals)

    def func_type(self, func_index: int) -> FuncType:
        """Resolve the :class:`FuncType` of any function index (imports first)."""
        n_imp = self.num_imported_funcs
        if func_index < n_imp:
            type_index = self.imported_funcs[func_index].desc
        else:
            defined = func_index - n_imp
            if defined >= len(self.funcs):
                raise IndexError(f"function index {func_index} out of range")
            type_index = self.funcs[defined].type_index
        return self.types[type_index]

    def func_param_count(self, func_index: int) -> int:
        """Number of parameters of any function index (imports first).

        The pre-decoded engine bakes this into ``call`` entries so argument
        popping needs no type lookup in the hot loop.
        """
        return len(self.func_type(func_index).params)

    def global_type(self, global_index: int) -> GlobalType:
        """Resolve the :class:`GlobalType` of any global index (imports first)."""
        n_imp = self.num_imported_globals
        if global_index < n_imp:
            return self.imported_globals[global_index].desc
        defined = global_index - n_imp
        if defined >= len(self.globals):
            raise IndexError(f"global index {global_index} out of range")
        return self.globals[defined].type

    def add_type(self, functype: FuncType) -> int:
        """Intern a function type, returning its index."""
        for i, existing in enumerate(self.types):
            if existing == functype:
                return i
        self.types.append(functype)
        return len(self.types) - 1

    def export_index(self, name: str, kind: str = "func") -> int:
        """Look up the index of an export by name."""
        for export in self.exports:
            if export.name == name and export.kind == kind:
                return export.index
        raise KeyError(f"no {kind} export named {name!r}")

    def func_by_name(self, name: str) -> int:
        """Look up a *defined* function's combined index by its $identifier."""
        for i, func in enumerate(self.funcs):
            if func.name == name:
                return self.num_imported_funcs + i
        raise KeyError(f"no function named {name!r}")

    def global_names(self) -> set[str]:
        """All $identifiers used for globals (imported and defined)."""
        names = {g.name for g in self.globals if g.name}
        names |= {imp.name for imp in self.imported_globals if imp.name}
        return names

    def clone(self) -> "Module":
        """Deep-enough copy: instruction tuples are immutable, bodies are not."""
        return Module(
            types=list(self.types),
            imports=list(self.imports),
            funcs=[
                replace(f, body=list(f.body), locals=tuple(f.locals))
                for f in self.funcs
            ],
            tables=list(self.tables),
            memories=list(self.memories),
            globals=[replace(g, init=list(g.init)) for g in self.globals],
            exports=list(self.exports),
            start=self.start,
            elems=list(self.elems),
            data=list(self.data),
            name=self.name,
        )

    def total_body_instructions(self) -> int:
        """Total number of instructions across all defined function bodies."""
        return sum(len(f.body) for f in self.funcs)
