"""Pre-decoded threaded-dispatch execution engine with basic-block batching.

The legacy interpreter loop (:meth:`repro.wasm.interpreter.Instance._exec_function`)
re-discovers every instruction on every visit: a chain of string comparisons
picks the handler, immediates are unpacked from the :class:`Instr` tuple, the
cost table is consulted per instruction and ``ExecutionStats.visits`` is
bumped one ``Counter`` increment at a time.  This module removes all of that
from the hot path the same way AccTEE makes *accounting* cheap (paper §3.4):
precompute per basic block, pay per basic block.

At instantiation each function body is compiled once into a flat code array,
indexed by pc, holding two kinds of entries:

* **segments** — maximal straight-line runs of non-control instructions,
  pre-bound to per-instruction closures (immediates, globals, the linear
  memory and the stats object are captured at compile time; dispatch is one
  indirect call, no string compares).  Each segment carries a precomputed
  visit summary (``{name: count}``), instruction count and cycle total which
  the engine charges *once on entry* instead of once per instruction;

* **control entries** — small tuples ``(kind, name, cycles, ...decoded)``
  for block/loop/if/else/end/br/br_if/br_table/return/call/call_indirect/
  unreachable/memory.grow, with structure offsets from
  :func:`~repro.wasm.interpreter.build_structure_map` baked in.  These are
  charged individually, exactly like the legacy loop, because they are jump
  sources/targets (``memory.grow`` is included so ``grow_history`` records
  the precise instruction count at grow time, and calls so the callee's
  stats interleave at the correct boundary).

The documented visit semantics — loop-header re-visit, ``end`` on every
exit, ``return`` skipping enclosing ``end``s — are preserved *exactly*:
segments never span a control instruction, and every branch target is either
a control instruction or the instruction right after one, so no jump can
land in a segment interior.

Three mechanisms keep per-instruction observability intact despite batching:

* **budget/progress fallback** — if charging a whole segment would cross the
  ``max_instructions`` budget or a ``progress_interval`` multiple, that
  segment is executed in per-instruction *step mode* with legacy-identical
  checks, so the budget trap fires at exactly ``executed ==
  max_instructions + 1`` and the callback at every exact multiple;

* **trap attribution** — closures for instructions that can trap (memory
  accesses, division, truncation) record their in-segment position in a
  shared cell before attempting the risky operation; when a trap aborts a
  pre-charged segment the engine rolls back the visits/cycles of the
  not-executed suffix, leaving byte-identical stats to the legacy loop;

* **call boundaries** — calls terminate segments, so a callee (and any
  ``memory.grow`` or progress report inside it) observes the same
  ``executed`` count it would under per-instruction accounting.

The engine is selected with ``Instance(module, engine="predecode")`` (the
default; ``engine="legacy"`` keeps the original loop, and the
``REPRO_WASM_ENGINE`` environment variable overrides the default).  A
differential test pins both engines to identical :class:`ExecutionStats`
across every workload in :mod:`repro.workloads`.
"""

from __future__ import annotations

import math
import operator as _operator
import os
import struct
from typing import Callable

from repro.wasm.instructions import SEGMENT_BARRIERS, TRAPPING_INSTRUCTIONS, Instr
from repro.wasm.interpreter import (
    Trap,
    _MASK32,
    _MASK64,
    _clz,
    _ctz,
    _f32,
    _float_max,
    _float_min,
    _nearest,
    _rotl,
    _rotr,
    _signed,
    _trunc_div,
    _trunc_rem,
    _trunc_to_int,
)
from repro.wasm.memory import MemoryAccessError

# ---------------------------------------------------------------------------
# Entry kinds (small ints compared in the dispatch loop — no string compares)
# ---------------------------------------------------------------------------

(
    K_SEG,
    K_END,
    K_BLOCK,
    K_LOOP,
    K_IF,
    K_ELSE,
    K_BR,
    K_BR_IF,
    K_BR_TABLE,
    K_RETURN,
    K_CALL,
    K_CALL_INDIRECT,
    K_UNREACHABLE,
    K_GROW,
) = range(14)


class _Segment:
    """One straight-line run of non-control instructions, pre-compiled."""

    __slots__ = (
        "ops",          # tuple of closures (stack, locals_) -> None
        "names",        # tuple of instruction names, for step mode / rollback
        "op_cycles",    # tuple of per-instruction cycle costs
        "count",        # len(ops)
        "visit_items",  # ((name, count), ...) charged in one pass on entry
        "cycles",       # sum(op_cycles)
        "can_trap",     # any op may raise a Trap mid-segment
        "next_pc",      # pc of the instruction after the segment
        "run_ops",      # fast-path closures: ops with superinstruction fusion
    )

    def __init__(
        self, ops, names, op_cycles, visit_delta, can_trap, next_pc, run_ops=None
    ):
        self.ops = ops
        self.names = names
        self.op_cycles = op_cycles
        self.count = len(ops)
        self.visit_items = tuple(visit_delta.items())
        self.cycles = sum(op_cycles)
        self.can_trap = can_trap
        self.next_pc = next_pc
        self.run_ops = ops if run_ops is None else run_ops


class CompiledFunction:
    """The pre-decoded form of one defined function."""

    __slots__ = ("code", "n", "local_init", "n_results")

    def __init__(self, code, n, local_init, n_results):
        self.code = code
        self.n = n
        self.local_init = local_init
        self.n_results = n_results


# ---------------------------------------------------------------------------
# Shared handlers: immediates-free, state-free, non-trapping closures built
# once at import time and reused across all occurrences in all modules.
# ---------------------------------------------------------------------------


def _build_shared() -> dict[str, Callable]:
    h: dict[str, Callable] = {}

    def nop(stack, locals_):
        pass

    def drop(stack, locals_):
        stack.pop()

    def select(stack, locals_):
        cond = stack.pop()
        b = stack.pop()
        if cond:
            return
        stack[-1] = b

    h["nop"] = nop
    h["drop"] = drop
    h["select"] = select

    # -- integer ops, per width ------------------------------------------------
    for prefix, bits in (("i32", 32), ("i64", 64)):
        mask = (1 << bits) - 1
        sign_bit = 1 << (bits - 1)
        modulus = 1 << bits

        def make_int(mask=mask, sign_bit=sign_bit, modulus=modulus, bits=bits):
            ops: dict[str, Callable] = {}

            def add(stack, locals_):
                b = stack.pop()
                stack[-1] = (stack[-1] + b) & mask

            def sub(stack, locals_):
                b = stack.pop()
                stack[-1] = (stack[-1] - b) & mask

            def mul(stack, locals_):
                b = stack.pop()
                stack[-1] = (stack[-1] * b) & mask

            def and_(stack, locals_):
                b = stack.pop()
                stack[-1] &= b

            def or_(stack, locals_):
                b = stack.pop()
                stack[-1] |= b

            def xor(stack, locals_):
                b = stack.pop()
                stack[-1] ^= b

            def shl(stack, locals_):
                b = stack.pop()
                stack[-1] = (stack[-1] << (b % bits)) & mask

            def shr_u(stack, locals_):
                b = stack.pop()
                stack[-1] >>= b % bits

            def shr_s(stack, locals_):
                b = stack.pop()
                a = stack[-1]
                if a >= sign_bit:
                    a -= modulus
                stack[-1] = (a >> (b % bits)) & mask

            def rotl(stack, locals_):
                b = stack.pop()
                stack[-1] = _rotl(stack[-1], b, bits)

            def rotr(stack, locals_):
                b = stack.pop()
                stack[-1] = _rotr(stack[-1], b, bits)

            def eqz(stack, locals_):
                stack[-1] = 1 if stack[-1] == 0 else 0

            def eq(stack, locals_):
                b = stack.pop()
                stack[-1] = 1 if stack[-1] == b else 0

            def ne(stack, locals_):
                b = stack.pop()
                stack[-1] = 1 if stack[-1] != b else 0

            def lt_u(stack, locals_):
                b = stack.pop()
                stack[-1] = 1 if stack[-1] < b else 0

            def gt_u(stack, locals_):
                b = stack.pop()
                stack[-1] = 1 if stack[-1] > b else 0

            def le_u(stack, locals_):
                b = stack.pop()
                stack[-1] = 1 if stack[-1] <= b else 0

            def ge_u(stack, locals_):
                b = stack.pop()
                stack[-1] = 1 if stack[-1] >= b else 0

            def lt_s(stack, locals_):
                b = stack.pop()
                a = stack[-1]
                if a >= sign_bit:
                    a -= modulus
                if b >= sign_bit:
                    b -= modulus
                stack[-1] = 1 if a < b else 0

            def gt_s(stack, locals_):
                b = stack.pop()
                a = stack[-1]
                if a >= sign_bit:
                    a -= modulus
                if b >= sign_bit:
                    b -= modulus
                stack[-1] = 1 if a > b else 0

            def le_s(stack, locals_):
                b = stack.pop()
                a = stack[-1]
                if a >= sign_bit:
                    a -= modulus
                if b >= sign_bit:
                    b -= modulus
                stack[-1] = 1 if a <= b else 0

            def ge_s(stack, locals_):
                b = stack.pop()
                a = stack[-1]
                if a >= sign_bit:
                    a -= modulus
                if b >= sign_bit:
                    b -= modulus
                stack[-1] = 1 if a >= b else 0

            def clz(stack, locals_):
                stack[-1] = _clz(stack[-1], bits)

            def ctz(stack, locals_):
                stack[-1] = _ctz(stack[-1], bits)

            def popcnt(stack, locals_):
                stack[-1] = bin(stack[-1]).count("1")

            ops.update(
                add=add, sub=sub, mul=mul, shl=shl, shr_u=shr_u, shr_s=shr_s,
                rotl=rotl, rotr=rotr, eqz=eqz, eq=eq, ne=ne,
                lt_u=lt_u, gt_u=gt_u, le_u=le_u, ge_u=ge_u,
                lt_s=lt_s, gt_s=gt_s, le_s=le_s, ge_s=ge_s,
                clz=clz, ctz=ctz, popcnt=popcnt,
            )
            ops["and"] = and_
            ops["or"] = or_
            ops["xor"] = xor
            return ops

        for suffix, fn in make_int().items():
            h[f"{prefix}.{suffix}"] = fn

    def i32_wrap_i64(stack, locals_):
        stack[-1] &= _MASK32

    def i64_extend_i32_s(stack, locals_):
        stack[-1] = _signed(stack[-1], 32) & _MASK64

    def i64_extend_i32_u(stack, locals_):
        stack[-1] &= _MASK32

    def i32_reinterpret_f32(stack, locals_):
        stack[-1] = struct.unpack("<I", struct.pack("<f", _f32(stack[-1])))[0]

    def i64_reinterpret_f64(stack, locals_):
        stack[-1] = struct.unpack("<Q", struct.pack("<d", stack[-1]))[0]

    def f32_reinterpret_i32(stack, locals_):
        stack[-1] = struct.unpack("<f", struct.pack("<I", stack[-1] & _MASK32))[0]

    def f64_reinterpret_i64(stack, locals_):
        stack[-1] = struct.unpack("<d", struct.pack("<Q", stack[-1] & _MASK64))[0]

    h["i32.wrap_i64"] = i32_wrap_i64
    h["i64.extend_i32_s"] = i64_extend_i32_s
    h["i64.extend_i32_u"] = i64_extend_i32_u
    h["i32.reinterpret_f32"] = i32_reinterpret_f32
    h["i64.reinterpret_f64"] = i64_reinterpret_f64
    h["f32.reinterpret_i32"] = f32_reinterpret_i32
    h["f64.reinterpret_i64"] = f64_reinterpret_i64

    # -- float ops, per width --------------------------------------------------
    for prefix, narrow in (("f32", True), ("f64", False)):

        def make_float(narrow=narrow):
            ops: dict[str, Callable] = {}

            if narrow:
                def add(stack, locals_):
                    b = stack.pop()
                    stack[-1] = _f32(stack[-1] + b)

                def sub(stack, locals_):
                    b = stack.pop()
                    stack[-1] = _f32(stack[-1] - b)

                def mul(stack, locals_):
                    b = stack.pop()
                    stack[-1] = _f32(stack[-1] * b)
            else:
                def add(stack, locals_):
                    b = stack.pop()
                    stack[-1] = stack[-1] + b

                def sub(stack, locals_):
                    b = stack.pop()
                    stack[-1] = stack[-1] - b

                def mul(stack, locals_):
                    b = stack.pop()
                    stack[-1] = stack[-1] * b

            def div(stack, locals_):
                b = stack.pop()
                a = stack[-1]
                if b == 0.0:
                    if a == 0.0 or math.isnan(a):
                        result = math.nan
                    else:
                        result = math.copysign(math.inf, a) * math.copysign(1.0, b)
                else:
                    result = a / b
                stack[-1] = _f32(result) if narrow else result

            def fmin(stack, locals_):
                b = stack.pop()
                r = _float_min(stack[-1], b)
                stack[-1] = _f32(r) if narrow else r

            def fmax(stack, locals_):
                b = stack.pop()
                r = _float_max(stack[-1], b)
                stack[-1] = _f32(r) if narrow else r

            def copysign(stack, locals_):
                b = stack.pop()
                r = math.copysign(stack[-1], b)
                stack[-1] = _f32(r) if narrow else r

            def fabs(stack, locals_):
                r = abs(stack[-1])
                stack[-1] = _f32(r) if narrow else r

            def neg(stack, locals_):
                r = -stack[-1]
                stack[-1] = _f32(r) if narrow else r

            def sqrt(stack, locals_):
                v = stack[-1]
                r = math.sqrt(v) if v >= 0 else math.nan
                stack[-1] = _f32(r) if narrow else r

            def ceil(stack, locals_):
                v = stack[-1]
                r = v if math.isnan(v) or math.isinf(v) else float(math.ceil(v))
                stack[-1] = _f32(r) if narrow else r

            def floor(stack, locals_):
                v = stack[-1]
                r = v if math.isnan(v) or math.isinf(v) else float(math.floor(v))
                stack[-1] = _f32(r) if narrow else r

            def trunc(stack, locals_):
                v = stack[-1]
                r = v if math.isnan(v) or math.isinf(v) else float(math.trunc(v))
                stack[-1] = _f32(r) if narrow else r

            def nearest(stack, locals_):
                r = _nearest(stack[-1])
                stack[-1] = _f32(r) if narrow else r

            def eq(stack, locals_):
                b = stack.pop()
                stack[-1] = 1 if stack[-1] == b else 0

            def ne(stack, locals_):
                b = stack.pop()
                stack[-1] = 1 if stack[-1] != b else 0

            def lt(stack, locals_):
                b = stack.pop()
                stack[-1] = 1 if stack[-1] < b else 0

            def gt(stack, locals_):
                b = stack.pop()
                stack[-1] = 1 if stack[-1] > b else 0

            def le(stack, locals_):
                b = stack.pop()
                stack[-1] = 1 if stack[-1] <= b else 0

            def ge(stack, locals_):
                b = stack.pop()
                stack[-1] = 1 if stack[-1] >= b else 0

            ops.update(
                add=add, sub=sub, mul=mul, div=div, copysign=copysign,
                abs=fabs, neg=neg, sqrt=sqrt, ceil=ceil, floor=floor,
                trunc=trunc, nearest=nearest,
                eq=eq, ne=ne, lt=lt, gt=gt, le=le, ge=ge,
            )
            ops["min"] = fmin
            ops["max"] = fmax
            return ops

        for suffix, fn in make_float().items():
            h[f"{prefix}.{suffix}"] = fn

    # -- conversions -----------------------------------------------------------
    for dst, narrow in (("f32", True), ("f64", False)):
        for src_bits in (32, 64):
            for signed in (True, False):
                def convert(stack, locals_, bits=src_bits, signed=signed, narrow=narrow):
                    v = stack[-1]
                    if signed:
                        v = _signed(v, bits)
                    stack[-1] = _f32(float(v)) if narrow else float(v)

                sg = "s" if signed else "u"
                h[f"{dst}.convert_i{src_bits}_{sg}"] = convert

    def demote(stack, locals_):
        stack[-1] = _f32(stack[-1])

    def promote(stack, locals_):
        stack[-1] = float(stack[-1])

    h["f32.demote_f64"] = demote
    h["f64.promote_f32"] = promote
    return h


_SHARED: dict[str, Callable] = _build_shared()


# ---------------------------------------------------------------------------
# Per-occurrence closure factories (immediates, instance state, trap cells)
# ---------------------------------------------------------------------------


def _compile_simple(instr: Instr, instance, cell: list, idx: int) -> Callable:
    """Build the closure for one non-control instruction.

    ``cell``/``idx`` implement trap attribution: closures that may raise
    write their in-segment position into ``cell[0]`` before the risky
    operation, so a mid-segment trap can be charged exactly.
    """
    name = instr.name
    shared = _SHARED.get(name)
    if shared is not None and name not in TRAPPING_INSTRUCTIONS:
        return shared

    if name == "local.get":
        i = instr.args[0]

        def local_get(stack, locals_):
            stack.append(locals_[i])

        return local_get
    if name == "local.set":
        i = instr.args[0]

        def local_set(stack, locals_):
            locals_[i] = stack.pop()

        return local_set
    if name == "local.tee":
        i = instr.args[0]

        def local_tee(stack, locals_):
            locals_[i] = stack[-1]

        return local_tee
    if name == "global.get":
        g = instance.globals[instr.args[0]]

        def global_get(stack, locals_):
            stack.append(g.value)

        return global_get
    if name == "global.set":
        g = instance.globals[instr.args[0]]

        def global_set(stack, locals_):
            g.value = stack.pop()

        return global_set
    if name.endswith(".const"):
        value = instr.args[0]

        def const(stack, locals_):
            stack.append(value)

        return const
    if name == "memory.size":
        mem = instance.memory
        if mem is None:
            def no_memory_size(stack, locals_):
                raise Trap("no memory")

            return no_memory_size

        def memory_size(stack, locals_):
            stack.append(mem.pages)

        return memory_size

    prefix, _, suffix = name.partition(".")

    if "load" in suffix or "store" in suffix:
        return _compile_memory_access(instr, name, prefix, suffix, instance, cell, idx)

    if suffix in ("div_s", "rem_s"):
        bits = 32 if prefix == "i32" else 64
        mask = (1 << bits) - 1
        int_min = -(1 << (bits - 1))
        is_div = suffix == "div_s"

        def divrem_s(stack, locals_):
            cell[0] = idx
            b = stack.pop()
            a = stack[-1]
            if b == 0:
                raise Trap("integer divide by zero")
            sa, sb = _signed(a, bits), _signed(b, bits)
            if is_div:
                if sa == int_min and sb == -1:
                    raise Trap("integer overflow")
                stack[-1] = _trunc_div(sa, sb) & mask
            else:
                stack[-1] = _trunc_rem(sa, sb) & mask

        return divrem_s
    if suffix in ("div_u", "rem_u"):
        mask = (1 << (32 if prefix == "i32" else 64)) - 1
        is_div = suffix == "div_u"

        def divrem_u(stack, locals_):
            cell[0] = idx
            b = stack.pop()
            if b == 0:
                raise Trap("integer divide by zero")
            if is_div:
                stack[-1] = (stack[-1] // b) & mask
            else:
                stack[-1] = (stack[-1] % b) & mask

        return divrem_u
    if suffix.startswith("trunc_f"):
        bits = 32 if prefix == "i32" else 64
        signed = suffix.endswith("_s")

        def trunc_f(stack, locals_):
            cell[0] = idx
            stack[-1] = _trunc_to_int(stack[-1], bits, signed)

        return trunc_f

    raise AssertionError(f"no predecode handler for {name}")  # pragma: no cover


def _compile_memory_access(instr, name, prefix, suffix, instance, cell, idx) -> Callable:
    mem = instance.memory
    if mem is None:
        def no_memory(stack, locals_):
            raise Trap("no memory")

        return no_memory
    _align, offset = instr.args
    stats = instance.stats
    cost = instance.cost_model
    is_store = "store" in suffix
    vt_bits = 32 if prefix in ("i32", "f32") else 64
    width = vt_bits // 8
    for marker, w in (("8", 1), ("16", 2), ("32", 4)):
        if suffix.endswith((f"load{marker}_s", f"load{marker}_u", f"store{marker}")):
            width = w
            break

    if is_store:
        if prefix in ("f32", "f64"):
            store_value = mem.store_f32 if prefix == "f32" else mem.store_f64

            def store_f(stack, locals_):
                cell[0] = idx
                value = stack.pop()
                address = (stack.pop() + offset) & _MASK64
                try:
                    store_value(address, value)
                except MemoryAccessError as exc:
                    raise Trap(str(exc)) from exc
                stats.stores += 1
                stats.bytes_stored += width
                if cost is not None:
                    stats.cycles += cost.memory_access_cycles(address, width, True)

            return store_f

        store_int = mem.store_int

        def store_i(stack, locals_):
            cell[0] = idx
            value = stack.pop()
            address = (stack.pop() + offset) & _MASK64
            try:
                store_int(address, value, width)
            except MemoryAccessError as exc:
                raise Trap(str(exc)) from exc
            stats.stores += 1
            stats.bytes_stored += width
            if cost is not None:
                stats.cycles += cost.memory_access_cycles(address, width, True)

        return store_i

    if prefix in ("f32", "f64"):
        load_value = mem.load_f32 if prefix == "f32" else mem.load_f64

        def load_f(stack, locals_):
            cell[0] = idx
            address = (stack.pop() + offset) & _MASK64
            try:
                result = load_value(address)
            except MemoryAccessError as exc:
                raise Trap(str(exc)) from exc
            stack.append(result)
            stats.loads += 1
            stats.bytes_loaded += width
            if cost is not None:
                stats.cycles += cost.memory_access_cycles(address, width, False)

        return load_f

    signed = suffix.endswith("_s")
    vt_mask = (1 << vt_bits) - 1
    load_int = mem.load_int

    def load_i(stack, locals_):
        cell[0] = idx
        address = (stack.pop() + offset) & _MASK64
        try:
            raw = load_int(address, width, signed=signed)
        except MemoryAccessError as exc:
            raise Trap(str(exc)) from exc
        stack.append(raw & vt_mask)
        stats.loads += 1
        stats.bytes_loaded += width
        if cost is not None:
            stats.cycles += cost.memory_access_cycles(address, width, False)

    return load_i


# ---------------------------------------------------------------------------
# Function compilation
# ---------------------------------------------------------------------------


#: Environment variable gating superinstruction fusion (default: enabled).
FUSION_ENV_VAR = "REPRO_WASM_FUSION"

#: comparison suffix -> (python operator, signed?)
_FUSE_CMP = {
    "eq": ("==", False),
    "ne": ("!=", False),
    "lt_u": ("<", False),
    "gt_u": (">", False),
    "le_u": ("<=", False),
    "ge_u": (">=", False),
    "lt_s": ("<", True),
    "gt_s": (">", True),
    "le_s": ("<=", True),
    "ge_s": (">=", True),
}

_FUSE_CMP_FN = {
    "==": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    ">": _operator.gt,
    "<=": _operator.le,
    ">=": _operator.ge,
}


def fusion_enabled() -> bool:
    """Whether predecode superinstruction fusion is on (consulted at
    function-compile time, so tests can flip it per case)."""
    value = os.environ.get(FUSION_ENV_VAR)
    if value is None:
        return True
    return value.strip().lower() not in ("0", "off", "false", "no")


def _match_superinstruction(members, j):
    """Try to fuse a run of non-trapping instructions starting at ``j``.

    Returns ``(closure, run_length)`` or ``None``.  Fused closures replicate
    the exact composed value semantics of the individual legacy closures
    (masking for wrap-around arithmetic, raw bitwise results, signed
    comparison views), so per-segment accounting — which is driven by the
    instruction *names*, not the closures — is unchanged and the
    differential suite gates every pattern.
    """
    n = len(members)
    if members[j].name != "local.get" or j + 1 >= n:
        return None
    i = members[j].args[0]
    nxt = members[j + 1]

    # local.get i; local.set/tee x  ->  register move
    if nxt.name == "local.set":
        def move_local(stack, locals_, i=i, x=nxt.args[0]):
            locals_[x] = locals_[i]
        return move_local, 2

    # local.get i; <iNN>.const k; <op> [; local.set x] / [; i32.eqz]
    if nxt.name in ("i32.const", "i64.const") and j + 2 < n:
        prefix = nxt.name[:3]
        bits = 32 if prefix == "i32" else 64
        mask = (1 << bits) - 1
        k = nxt.args[0]
        op = members[j + 2].name
        if not op.startswith(prefix + "."):
            return None
        suffix = op[4:]
        if suffix in ("add", "sub"):
            delta = k if suffix == "add" else -k
            if j + 3 < n and members[j + 3].name == "local.set":
                def arith_imm_set(stack, locals_, i=i, d=delta, x=members[j + 3].args[0], m=mask):
                    locals_[x] = (locals_[i] + d) & m
                return arith_imm_set, 4
            def arith_imm(stack, locals_, i=i, d=delta, m=mask):
                stack.append((locals_[i] + d) & m)
            return arith_imm, 3
        if suffix == "mul":
            if j + 3 < n and members[j + 3].name == "local.set":
                def mul_imm_set(stack, locals_, i=i, k=k, x=members[j + 3].args[0], m=mask):
                    locals_[x] = (locals_[i] * k) & m
                return mul_imm_set, 4
            def mul_imm(stack, locals_, i=i, k=k, m=mask):
                stack.append((locals_[i] * k) & m)
            return mul_imm, 3
        if suffix in ("and", "or", "xor"):
            # legacy leaves bitwise results unmasked
            fn = {"and": _operator.and_, "or": _operator.or_, "xor": _operator.xor}[suffix]
            def bit_imm(stack, locals_, i=i, k=k, fn=fn):
                stack.append(fn(locals_[i], k))
            return bit_imm, 3
        if suffix in _FUSE_CMP:
            sym, is_signed = _FUSE_CMP[suffix]
            cmp_fn = _FUSE_CMP_FN[sym]
            rhs = _signed(k, bits) if is_signed else k
            # an immediately following eqz folds into an inverted compare
            inv = j + 3 < n and members[j + 3].name == f"{prefix}.eqz"
            if is_signed:
                def cmp_imm_s(stack, locals_, i=i, rhs=rhs, fn=cmp_fn, b=bits, inv=inv):
                    hit = fn(_signed(locals_[i], b), rhs)
                    stack.append((0 if hit else 1) if inv else (1 if hit else 0))
                return cmp_imm_s, 4 if inv else 3
            def cmp_imm_u(stack, locals_, i=i, rhs=rhs, fn=cmp_fn, inv=inv):
                hit = fn(locals_[i], rhs)
                stack.append((0 if hit else 1) if inv else (1 if hit else 0))
            return cmp_imm_u, 4 if inv else 3
        return None

    # local.get a; local.get b [; <iNN binop>]  ->  paired push / local binop
    if nxt.name == "local.get":
        b = nxt.args[0]
        if j + 2 < n:
            op = members[j + 2].name
            pfx = op[:3]
            if pfx in ("i32", "i64") and op[4:] in ("add", "sub", "mul"):
                bits = 32 if pfx == "i32" else 64
                mask = (1 << bits) - 1
                fn = {"add": _operator.add, "sub": _operator.sub, "mul": _operator.mul}[op[4:]]
                if j + 3 < n and members[j + 3].name == "local.set":
                    def binop_ll_set(stack, locals_, a=i, b=b, fn=fn, x=members[j + 3].args[0], m=mask):
                        locals_[x] = fn(locals_[a], locals_[b]) & m
                    return binop_ll_set, 4
                def binop_ll(stack, locals_, a=i, b=b, fn=fn, m=mask):
                    stack.append(fn(locals_[a], locals_[b]) & m)
                return binop_ll, 3
        def get_get(stack, locals_, a=i, b=b):
            stack.append(locals_[a])
            stack.append(locals_[b])
        return get_get, 2
    return None


def _fuse_segment_ops(members, ops):
    """Peephole superinstruction pass over one segment's closure tuple."""
    fused = []
    j = 0
    n = len(members)
    while j < n:
        match = _match_superinstruction(members, j)
        if match is not None:
            closure, length = match
            fused.append(closure)
            j += length
        else:
            fused.append(ops[j])
            j += 1
    return tuple(fused)


def compile_function(instance, defined_index: int, cell: list) -> CompiledFunction:
    """Pre-decode one defined function into a flat code array."""
    module = instance.module
    func = module.funcs[defined_index]
    body = func.body
    n = len(body)
    structs = instance._structs[defined_index]
    cost = instance.cost_model
    cycles_of = cost.instruction_cycles if cost is not None else (lambda name: 0.0)
    fuse = fusion_enabled()

    # end index -> owning if's end (for the static `else` jump target)
    else_end: dict[int, int] = {
        info.else_: info.end for info in structs.values() if info.else_ is not None
    }

    code: list = [None] * n
    i = 0
    while i < n:
        instr = body[i]
        name = instr.name
        if name not in SEGMENT_BARRIERS:
            start = i
            while i < n and body[i].name not in SEGMENT_BARRIERS:
                i += 1
            members = body[start:i]
            names = tuple(m.name for m in members)
            ops = tuple(
                _compile_simple(m, instance, cell, j) for j, m in enumerate(members)
            )
            run_ops = _fuse_segment_ops(members, ops) if fuse else None
            op_cycles = tuple(cycles_of(m) for m in names)
            visit_delta: dict[str, int] = {}
            for m in names:
                visit_delta[m] = visit_delta.get(m, 0) + 1
            can_trap = any(m in TRAPPING_INSTRUCTIONS for m in names)
            code[start] = (
                K_SEG,
                _Segment(ops, names, op_cycles, visit_delta, can_trap, i, run_ops),
            )
            continue

        cyc = cycles_of(name)
        if name == "end":
            code[i] = (K_END, name, cyc)
        elif name == "block":
            info = structs[i]
            code[i] = (K_BLOCK, name, cyc, info.end, len(instr.args[0]))
        elif name == "loop":
            info = structs[i]
            code[i] = (K_LOOP, name, cyc, info.end)
        elif name == "if":
            info = structs[i]
            else_target = info.else_ + 1 if info.else_ is not None else info.end
            code[i] = (K_IF, name, cyc, info.end, else_target, len(instr.args[0]))
        elif name == "else":
            code[i] = (K_ELSE, name, cyc, else_end[i])
        elif name == "br":
            code[i] = (K_BR, name, cyc, instr.args[0])
        elif name == "br_if":
            code[i] = (K_BR_IF, name, cyc, instr.args[0])
        elif name == "br_table":
            depths, default = instr.args
            code[i] = (K_BR_TABLE, name, cyc, tuple(depths), default)
        elif name == "return":
            code[i] = (K_RETURN, name, cyc)
        elif name == "call":
            target = instr.args[0]
            code[i] = (K_CALL, name, cyc, target, module.func_param_count(target))
        elif name == "call_indirect":
            type_index = instr.args[0]
            code[i] = (K_CALL_INDIRECT, name, cyc, module.types[type_index])
        elif name == "unreachable":
            code[i] = (K_UNREACHABLE, name, cyc)
        else:  # memory.grow
            code[i] = (K_GROW, name, cyc)
        i += 1

    functype = module.types[func.type_index]
    local_init = [0 if vt.is_int else 0.0 for vt in func.locals]
    return CompiledFunction(code, n, local_init, len(functype.results))


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class PredecodedEngine:
    """Executes an :class:`~repro.wasm.interpreter.Instance`'s functions from
    their pre-decoded form.  Created by ``Instance(..., engine="predecode")``."""

    def __init__(self, instance):
        self.instance = instance
        #: shared trap-attribution cell: trapping closures record their
        #: in-segment position here (segments contain no calls, so a single
        #: cell per instance cannot be clobbered by reentrancy)
        self.cell = [-1]
        self._compiled: list[CompiledFunction | None] = [None] * len(
            instance.module.funcs
        )

    def compile_all(self) -> None:
        """Pre-decode every defined function (done once at instantiation)."""
        for index in range(len(self._compiled)):
            if self._compiled[index] is None:
                self._compiled[index] = compile_function(self.instance, index, self.cell)

    def exec_function(self, defined_index: int, args: list) -> list:
        cf = self._compiled[defined_index]
        if cf is None:  # start functions may run before compile_all finishes
            cf = self._compiled[defined_index] = compile_function(
                self.instance, defined_index, self.cell
            )
        inst = self.instance
        stats = inst.stats
        visits = stats.visits
        limits = inst.limits
        cost_on = inst.cost_model is not None
        cell = self.cell
        code = cf.code
        n = cf.n
        prof = inst._profiler
        prof_label = inst._func_labels[defined_index] if prof is not None else ""

        locals_: list = list(args)
        locals_.extend(cf.local_init)
        stack: list = []
        # control frames: (is_loop, start, end, stack_height, arity)
        control: list[tuple] = []
        pc = 0

        while pc < n:
            entry = code[pc]
            kind = entry[0]

            if kind == K_SEG:
                seg = entry[1]
                count = seg.count
                if prof is not None:
                    prof.record_segment(prof_label, pc, count)
                executed = stats.executed
                mi = limits.max_instructions
                pi = limits.progress_interval
                if (mi is not None and executed + count > mi) or (
                    pi is not None
                    and limits.progress_callback is not None
                    and (executed + count) // pi != executed // pi
                ):
                    # a budget or progress boundary falls inside this
                    # segment: step it per-instruction, legacy-style
                    pc = self._step_segment(seg, stack, locals_, cost_on)
                    continue
                stats.executed = executed + count
                for vname, vcount in seg.visit_items:
                    visits[vname] += vcount
                if cost_on:
                    stats.cycles += seg.cycles
                if seg.can_trap:
                    cell[0] = -1
                    try:
                        for op in seg.run_ops:
                            op(stack, locals_)
                    except BaseException:
                        self._unwind_segment(seg, cell[0], cost_on)
                        raise
                else:
                    for op in seg.run_ops:
                        op(stack, locals_)
                pc = seg.next_pc
                continue

            # -- individually charged control instruction ----------------------
            visits[entry[1]] += 1
            stats.executed += 1
            if cost_on:
                stats.cycles += entry[2]
            if (
                limits.max_instructions is not None
                and stats.executed > limits.max_instructions
            ):
                raise Trap("instruction budget exhausted")
            if (
                limits.progress_interval is not None
                and limits.progress_callback is not None
                and stats.executed % limits.progress_interval == 0
            ):
                limits.progress_callback(stats)

            if kind == K_END:
                if control:
                    control.pop()
                pc += 1
            elif kind == K_BR_IF:
                if stack.pop():
                    pc = _branch(entry[3], stack, control, n)
                else:
                    pc += 1
            elif kind == K_LOOP:
                control.append((True, pc, entry[3], len(stack), 0))
                pc += 1
            elif kind == K_BLOCK:
                control.append((False, pc, entry[3], len(stack), entry[4]))
                pc += 1
            elif kind == K_IF:
                cond = stack.pop()
                control.append((False, pc, entry[3], len(stack), entry[5]))
                pc = pc + 1 if cond else entry[4]
            elif kind == K_BR:
                pc = _branch(entry[3], stack, control, n)
            elif kind == K_CALL:
                n_params = entry[4]
                if n_params:
                    call_args = stack[-n_params:]
                    del stack[-n_params:]
                else:
                    call_args = []
                stack.extend(inst.call_function(entry[3], call_args))
                stats.calls += 1
                pc += 1
            elif kind == K_ELSE:
                # reached only by falling out of the true arm: jump to end
                pc = entry[3]
            elif kind == K_BR_TABLE:
                depths = entry[3]
                index = stack.pop()
                depth = depths[index] if index < len(depths) else entry[4]
                pc = _branch(depth, stack, control, n)
            elif kind == K_RETURN:
                break
            elif kind == K_CALL_INDIRECT:
                expected_type = entry[3]
                table = inst.table
                table_index = stack.pop()
                if table is None or table_index >= len(table.elements):
                    raise Trap("undefined table element")
                target = table.elements[table_index]
                if target is None:
                    raise Trap("uninitialized table element")
                target_type = inst.module.func_type(target)
                if target_type != expected_type:
                    raise Trap("indirect call type mismatch")
                call_args = [stack.pop() for _ in target_type.params][::-1]
                stack.extend(inst.call_function(target, call_args))
                stats.calls += 1
                pc += 1
            elif kind == K_GROW:
                mem = inst.memory
                if mem is None:
                    raise Trap("no memory")
                delta = stack.pop()
                result = mem.grow(delta)
                if result >= 0:
                    stats.grow_history.append((stats.executed, mem.pages))
                stack.append(result & _MASK32)
                pc += 1
            else:  # K_UNREACHABLE
                raise Trap("unreachable executed")

        n_results = cf.n_results
        if n_results == 0:
            return []
        if len(stack) < n_results:
            raise Trap("function returned with empty stack")
        return stack[-n_results:]

    # -- slow paths -------------------------------------------------------------

    def _step_segment(self, seg: _Segment, stack, locals_, cost_on: bool) -> int:
        """Per-instruction execution of one segment, with legacy-identical
        budget traps and progress callbacks at every instruction boundary."""
        inst = self.instance
        stats = inst.stats
        visits = stats.visits
        limits = inst.limits
        for name, op, cyc in zip(seg.names, seg.ops, seg.op_cycles):
            visits[name] += 1
            stats.executed += 1
            if cost_on:
                stats.cycles += cyc
            if (
                limits.max_instructions is not None
                and stats.executed > limits.max_instructions
            ):
                raise Trap("instruction budget exhausted")
            if (
                limits.progress_interval is not None
                and limits.progress_callback is not None
                and stats.executed % limits.progress_interval == 0
            ):
                limits.progress_callback(stats)
            op(stack, locals_)
        return seg.next_pc

    def _unwind_segment(self, seg: _Segment, failed_index: int, cost_on: bool) -> None:
        """Un-charge the suffix of a pre-charged segment that never ran.

        ``failed_index`` is the in-segment position of the trapping
        instruction (which the legacy loop *does* charge — visits precede
        execution).  A negative index means an instruction we classified as
        non-trapping raised (invalid module); nothing is rolled back then.
        """
        if failed_index < 0:
            return
        extra = seg.count - (failed_index + 1)
        if extra <= 0:
            return
        stats = self.instance.stats
        visits = stats.visits
        stats.executed -= extra
        for name in seg.names[failed_index + 1 :]:
            remaining = visits[name] - 1
            if remaining:
                visits[name] = remaining
            else:
                del visits[name]
        if cost_on:
            stats.cycles -= sum(seg.op_cycles[failed_index + 1 :])


def _branch(depth: int, stack: list, control: list, n: int) -> int:
    """Take a branch of ``depth`` labels; returns the new pc.

    Mirrors :meth:`Instance._branch` exactly, over tuple control frames."""
    if depth >= len(control):
        # branch out of the function body: treated as return
        del control[:]
        return n
    is_loop, start, end, height, arity = control[-1 - depth]
    kept = stack[len(stack) - arity :] if arity else []
    del stack[height:]
    stack.extend(kept)
    if is_loop:
        # pop all frames above and including the target; re-visiting the
        # loop header re-pushes its frame
        del control[len(control) - 1 - depth :]
        return start
    # pop frames *above* the target only; the visited end marker pops it
    del control[len(control) - depth :]
    return end
