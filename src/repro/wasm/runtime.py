"""Host runtime ("glue code") for WebAssembly modules.

Plays the role Node.js/V8 glue code plays in the paper (§4.1): it provides
the import objects a module needs — environment functions, an I/O channel
interface and scratch memory — and is the layer AccTEE instruments for I/O
accounting (§3.5): every byte crossing the module boundary through these
functions is counted.

The I/O interface mirrors what Emscripten main modules export to side
modules: reads/writes go through linear memory with (pointer, length) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wasm.interpreter import HostFunction, Instance, Trap
from repro.wasm.module import Module
from repro.wasm.types import FuncType, ValType


@dataclass
class IOAccount:
    """Accumulates the bytes that crossed the module boundary via I/O calls."""

    bytes_in: int = 0
    bytes_out: int = 0
    calls: int = 0

    @property
    def total(self) -> int:
        return self.bytes_in + self.bytes_out


@dataclass
class IOChannel:
    """A byte-stream channel the module can read from and write to.

    Used by the FaaS scenario to feed request bodies in and collect
    responses, and by the volunteer scenario for task inputs/results.
    """

    input_data: bytes = b""
    output: bytearray = field(default_factory=bytearray)
    _read_pos: int = 0

    def read(self, length: int) -> bytes:
        chunk = self.input_data[self._read_pos : self._read_pos + length]
        self._read_pos += len(chunk)
        return chunk

    def write(self, data: bytes) -> None:
        self.output.extend(data)

    @property
    def remaining(self) -> int:
        return len(self.input_data) - self._read_pos

    def reset(self, input_data: bytes = b"") -> None:
        self.input_data = input_data
        self.output = bytearray()
        self._read_pos = 0


class HostEnvironment:
    """Builds the import object for a module and tracks I/O usage.

    The exposed import namespace is ``env`` with:

    * ``io_read(ptr, len) -> i32``  — copy up to ``len`` bytes of channel
      input into linear memory at ``ptr``; returns bytes copied;
    * ``io_write(ptr, len) -> i32`` — copy ``len`` bytes out of linear
      memory to the channel output; returns bytes written;
    * ``io_available() -> i32``     — channel input bytes not yet read;
    * ``host_log(value) -> ()``     — debug tap, records i32 values;
    * ``abort() -> ()``             — traps.

    When ``account_io`` is true the wrappers accumulate into
    :class:`IOAccount` — this is AccTEE's I/O accounting instrumentation,
    which lives in the trusted runtime rather than in workload code.
    """

    def __init__(self, channel: IOChannel | None = None, account_io: bool = True):
        self.channel = channel or IOChannel()
        self.account = IOAccount()
        self.account_io = account_io
        self.log_values: list[int] = []
        self._instance: Instance | None = None

    # -- host function bodies ----------------------------------------------------

    def _io_read(self, ptr: int, length: int) -> int:
        if self._instance is None or self._instance.memory is None:
            raise Trap("io_read requires an instantiated module with memory")
        chunk = self.channel.read(length)
        self._instance.memory.write(ptr, chunk)
        if self.account_io:
            self.account.bytes_in += len(chunk)
            self.account.calls += 1
        return len(chunk)

    def _io_write(self, ptr: int, length: int) -> int:
        if self._instance is None or self._instance.memory is None:
            raise Trap("io_write requires an instantiated module with memory")
        data = self._instance.memory.read(ptr, length)
        self.channel.write(data)
        if self.account_io:
            self.account.bytes_out += len(data)
            self.account.calls += 1
        return len(data)

    def _io_available(self) -> int:
        return self.channel.remaining

    def _host_log(self, value: int) -> None:
        self.log_values.append(value)

    @staticmethod
    def _abort() -> None:
        raise Trap("abort called")

    # -- imports object ------------------------------------------------------------

    def imports(self) -> dict[str, dict[str, object]]:
        i32 = ValType.I32
        return {
            "env": {
                "io_read": HostFunction(FuncType((i32, i32), (i32,)), self._io_read, "io_read"),
                "io_write": HostFunction(FuncType((i32, i32), (i32,)), self._io_write, "io_write"),
                "io_available": HostFunction(FuncType((), (i32,)), self._io_available, "io_available"),
                "host_log": HostFunction(FuncType((i32,), ()), self._host_log, "host_log"),
                "abort": HostFunction(FuncType((), ()), self._abort, "abort"),
            }
        }

    def instantiate(
        self, module: Module, engine: str | None = None, **kwargs
    ) -> Instance:
        """Instantiate ``module`` against this environment's imports.

        ``engine`` selects the execution engine (``"predecode"`` or
        ``"legacy"``, defaulting to the interpreter-wide default) — the FaaS
        and volunteer scenarios thread it through so throughput experiments
        can compare both engines.
        """
        instance = Instance(module, imports=self.imports(), engine=engine, **kwargs)
        self._instance = instance
        return instance

    def bind(self, instance: Instance) -> None:
        """Attach the I/O functions to an instance created elsewhere.

        Used with :func:`repro.wasm.linking.instantiate_side_module`, where
        the side module is instantiated against a main module's exports plus
        this environment's functions: the I/O calls must read and write the
        *side* module's linear memory.
        """
        self._instance = instance
