"""Versioned, engine-independent sandbox execution-state snapshots.

Capture a running sandbox at an observation point, serialize everything —
value stack, locals, call frames, globals, linear memory (page delta
against a deterministic base image), exact meter counters, I/O position —
and restore into any engine.  See :mod:`repro.wasm.snapshot.format` for
the capture/wire half and :mod:`repro.wasm.snapshot.restore` for the
restore/resume half.
"""

from repro.wasm.interpreter import CapturedFrame, SnapshotCaptured
from repro.wasm.snapshot.format import (
    FORMAT_VERSION,
    MAGIC,
    IOState,
    Snapshot,
    SnapshotError,
    base_memory_image,
    capture_instance,
    decode_snapshot,
    encode_snapshot,
    snapshot_from_unwind,
    with_io,
)
from repro.wasm.snapshot.restore import (
    apply_state,
    restore_instance,
    resume_instance,
    resume_invoke,
)

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "CapturedFrame",
    "IOState",
    "Snapshot",
    "SnapshotCaptured",
    "SnapshotError",
    "apply_state",
    "base_memory_image",
    "capture_instance",
    "decode_snapshot",
    "encode_snapshot",
    "restore_instance",
    "resume_instance",
    "resume_invoke",
    "snapshot_from_unwind",
    "with_io",
]
