"""Snapshot format v1: versioned, engine-independent execution state.

A :class:`Snapshot` serializes everything a suspended (or freshly
instantiated) sandbox needs to continue somewhere else: the exact meter
counters (:class:`~repro.wasm.interpreter.ExecutionStats`), globals, the
funcref table, linear memory — stored as a page-level delta against a
deterministic *base image* (the module's fresh memory with its data
segments applied), so warm-pool images and early-execution snapshots stay
small — plus one :class:`~repro.wasm.interpreter.CapturedFrame` per
suspended interpreter frame and, optionally, the host I/O channel position.

Capture happens at *observation points* only — the per-instruction
boundary where the capture interpreter checks budgets and progress — and
always **before** the pending instruction is charged, so a resumed run
re-charges and re-executes it and finishes with byte-identical stats.
Snapshots are engine-independent by construction: every snapshot-armed run
executes on the single capture interpreter, and the engine-differential
contract pins that interpreter's stats byte-identical to ``predecode`` and
``compile``, so a snapshot taken under any configured engine restores into
any other.

The wire encoding is ``b"RWSN"`` + a little-endian ``u32`` format version +
a canonical JSON document (sorted keys, floats carried as bit-exact hex of
their IEEE-754 representation, page contents base64).  The encoding is
deterministic: encoding the same state twice yields the same bytes, so
``sha256(encode_snapshot(s))`` is a stable identity usable in checkpoint
receipts.
"""

from __future__ import annotations

import base64
import json
import struct
from dataclasses import dataclass, replace

from repro.obs.context import record_metric
from repro.obs.instruments import SNAPSHOT_BYTES, SNAPSHOTS_TAKEN
from repro.tcrypto.hashing import sha256
from repro.wasm.binary import encode_module
from repro.wasm.interpreter import CapturedFrame, CaptureUnwind, Instance
from repro.wasm.memory import PAGE_SIZE
from repro.wasm.module import Module

MAGIC = b"RWSN"
FORMAT_VERSION = 1


class SnapshotError(Exception):
    """A snapshot cannot be encoded, decoded or applied."""


@dataclass(frozen=True)
class IOState:
    """Host I/O channel position at capture time.

    The channel's *input* bytes are not stored — the dispatcher that owns
    the request already has them (they travel with the task) — only the
    read cursor, the output produced so far and the accounted byte totals.
    """

    read_pos: int = 0
    output: bytes = b""
    bytes_in: int = 0
    bytes_out: int = 0
    calls: int = 0


@dataclass(frozen=True)
class Snapshot:
    """Full serialized execution state of one sandbox instance.

    ``frames`` is outermost-first; empty frames mean a *warm image* — the
    state right after instantiation (start function included), used by warm
    pools to reset a live instance to pristine per request.
    """

    version: int
    module_hash: bytes
    engine: str  # engine the capturing instance was configured with
    stats: dict  # plain-value ExecutionStats fields (visits as a dict)
    globals: tuple
    memory_pages: int | None  # None: module has no memory
    memory_delta: tuple  # ((page_index, page_bytes), ...) vs the base image
    grow_events: tuple
    table: tuple | None  # funcref elements, None when no table
    frames: tuple  # CapturedFrame, outermost-first
    io: IOState | None = None

    @property
    def executed(self) -> int:
        return self.stats["executed"]

    def hash(self) -> bytes:
        return sha256(encode_snapshot(self, _observe=False))


# -- value encoding (floats bit-exact) -----------------------------------------


def _enc_val(value):
    if isinstance(value, float):
        return {"f": struct.pack("<d", value).hex()}
    return value


def _dec_val(value):
    if isinstance(value, dict):
        return struct.unpack("<d", bytes.fromhex(value["f"]))[0]
    return value


def _enc_vals(values) -> list:
    return [_enc_val(v) for v in values]


def _dec_vals(values) -> tuple:
    return tuple(_dec_val(v) for v in values)


# -- base memory image ---------------------------------------------------------


def _segment_offset(module: Module, expr) -> int:
    """Deterministic best-effort const-eval of a data-segment offset.

    Both the capturing and the restoring side run this same function, so
    the page delta is exact even where the best effort diverges from the
    instance's actual initial memory (e.g. imported-global offsets).
    """
    instr = expr[0]
    if instr.name in ("i32.const", "i64.const"):
        return int(instr.args[0])
    if instr.name == "global.get":
        index = instr.args[0]
        defined = index - module.num_imported_globals
        if 0 <= defined < len(module.globals):
            init = module.globals[defined].init[0]
            if init.name in ("i32.const", "i64.const"):
                return int(init.args[0])
    return 0


def base_memory_image(module: Module) -> bytearray:
    """The module's fresh linear memory: minimum pages + data segments."""
    if not module.memories:
        return bytearray()
    image = bytearray(module.memories[0].limits.minimum * PAGE_SIZE)
    for seg in module.data:
        offset = _segment_offset(module, seg.offset)
        if 0 <= offset and offset + len(seg.data) <= len(image):
            image[offset : offset + len(seg.data)] = seg.data
    return image


_ZERO_PAGE = bytes(PAGE_SIZE)


def _memory_state(instance: Instance):
    memory = instance.memory
    if memory is None:
        return None, (), ()
    base = bytes(base_memory_image(instance.module))
    data = memory._data
    pages = len(data) // PAGE_SIZE
    delta = []
    for i in range(pages):
        lo = i * PAGE_SIZE
        page = bytes(data[lo : lo + PAGE_SIZE])
        ref = base[lo : lo + PAGE_SIZE]
        if len(ref) < PAGE_SIZE:
            ref = ref + _ZERO_PAGE[len(ref) :]
        if page != ref:
            delta.append((i, page))
    return pages, tuple(delta), tuple(memory.grow_events)


# -- capture -------------------------------------------------------------------


def _stats_state(instance: Instance) -> dict:
    stats = instance.stats
    return {
        "visits": dict(stats.visits),
        "executed": stats.executed,
        "cycles": stats.cycles,
        "loads": stats.loads,
        "stores": stats.stores,
        "bytes_loaded": stats.bytes_loaded,
        "bytes_stored": stats.bytes_stored,
        "calls": stats.calls,
        "host_calls": stats.host_calls,
        "grow_history": [tuple(e) for e in stats.grow_history],
    }


def capture_instance(
    instance: Instance, frames=(), io: IOState | None = None
) -> Snapshot:
    """Snapshot an instance's full state (with ``frames=()``: a warm image)."""
    pages, delta, grow_events = _memory_state(instance)
    snapshot = Snapshot(
        version=FORMAT_VERSION,
        module_hash=sha256(encode_module(instance.module)),
        engine=instance.engine,
        stats=_stats_state(instance),
        globals=tuple(g.value for g in instance.globals),
        memory_pages=pages,
        memory_delta=delta,
        grow_events=grow_events,
        table=tuple(instance.table.elements) if instance.table is not None else None,
        frames=tuple(frames),
        io=io,
    )
    kind = "warm" if not frames else "suspend"
    SNAPSHOTS_TAKEN.inc(kind=kind)
    record_metric("acctee_snapshots_taken", 1, kind=kind)
    return snapshot


def snapshot_from_unwind(
    instance: Instance, unwind: CaptureUnwind, io: IOState | None = None
) -> Snapshot:
    """Finish a capture: unwound frames arrive innermost-first."""
    return capture_instance(instance, frames=tuple(reversed(unwind.frames)), io=io)


def with_io(snapshot: Snapshot, env, channel) -> Snapshot:
    """Attach a :class:`~repro.wasm.runtime.HostEnvironment`'s I/O position."""
    return replace(
        snapshot,
        io=IOState(
            read_pos=channel._read_pos,
            output=bytes(channel.output),
            bytes_in=env.account.bytes_in,
            bytes_out=env.account.bytes_out,
            calls=env.account.calls,
        ),
    )


# -- wire encoding -------------------------------------------------------------


def _frame_to_json(frame: CapturedFrame) -> dict:
    return {
        "func_index": frame.func_index,
        "pc": frame.pc,
        "stack": _enc_vals(frame.stack),
        "locals": _enc_vals(frame.locals),
        "control": [list(entry) for entry in frame.control],
        "kind": frame.kind,
    }


def _frame_from_json(payload: dict) -> CapturedFrame:
    return CapturedFrame(
        func_index=payload["func_index"],
        pc=payload["pc"],
        stack=_dec_vals(payload["stack"]),
        locals=_dec_vals(payload["locals"]),
        control=tuple(
            (op, start, end, height, arity)
            for op, start, end, height, arity in payload["control"]
        ),
        kind=payload["kind"],
    )


def encode_snapshot(snapshot: Snapshot, _observe: bool = True) -> bytes:
    payload = {
        "module_hash": snapshot.module_hash.hex(),
        "engine": snapshot.engine,
        "stats": {
            key: (
                {name: count for name, count in sorted(value.items())}
                if key == "visits"
                else _enc_val(value)
                if key == "cycles"
                else [list(e) for e in value]
                if key == "grow_history"
                else value
            )
            for key, value in snapshot.stats.items()
        },
        "globals": _enc_vals(snapshot.globals),
        "memory": (
            None
            if snapshot.memory_pages is None
            else {
                "pages": snapshot.memory_pages,
                "delta": [
                    [index, base64.b64encode(page).decode("ascii")]
                    for index, page in snapshot.memory_delta
                ],
                "grow_events": list(snapshot.grow_events),
            }
        ),
        "table": list(snapshot.table) if snapshot.table is not None else None,
        "frames": [_frame_to_json(f) for f in snapshot.frames],
        "io": (
            None
            if snapshot.io is None
            else {
                "read_pos": snapshot.io.read_pos,
                "output": base64.b64encode(snapshot.io.output).decode("ascii"),
                "bytes_in": snapshot.io.bytes_in,
                "bytes_out": snapshot.io.bytes_out,
                "calls": snapshot.io.calls,
            }
        ),
    }
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    blob = MAGIC + struct.pack("<I", snapshot.version) + body
    if _observe:
        SNAPSHOT_BYTES.observe(float(len(blob)))
        record_metric("acctee_snapshot_bytes", float(len(blob)), kind="histogram")
    return blob


def decode_snapshot(blob: bytes) -> Snapshot:
    if blob[:4] != MAGIC:
        raise SnapshotError("not a snapshot: bad magic")
    if len(blob) < 8:
        raise SnapshotError("not a snapshot: truncated header")
    (version,) = struct.unpack("<I", blob[4:8])
    if version != FORMAT_VERSION:
        raise SnapshotError(f"unsupported snapshot format version {version}")
    try:
        payload = json.loads(blob[8:].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise SnapshotError(f"corrupt snapshot body: {exc}") from None
    stats = dict(payload["stats"])
    stats["visits"] = dict(stats["visits"])
    stats["cycles"] = _dec_val(stats["cycles"])
    stats["grow_history"] = [tuple(e) for e in stats["grow_history"]]
    memory = payload["memory"]
    io = payload["io"]
    return Snapshot(
        version=version,
        module_hash=bytes.fromhex(payload["module_hash"]),
        engine=payload["engine"],
        stats=stats,
        globals=_dec_vals(payload["globals"]),
        memory_pages=None if memory is None else memory["pages"],
        memory_delta=(
            ()
            if memory is None
            else tuple(
                (index, base64.b64decode(page)) for index, page in memory["delta"]
            )
        ),
        grow_events=() if memory is None else tuple(memory["grow_events"]),
        table=None if payload["table"] is None else tuple(payload["table"]),
        frames=tuple(_frame_from_json(f) for f in payload["frames"]),
        io=(
            None
            if io is None
            else IOState(
                read_pos=io["read_pos"],
                output=base64.b64decode(io["output"]),
                bytes_in=io["bytes_in"],
                bytes_out=io["bytes_out"],
                calls=io["calls"],
            )
        ),
    )
