"""Restore snapshots into live instances and resume suspended frames.

``restore_instance`` builds a fresh :class:`~repro.wasm.interpreter.Instance`
for *any* engine and overwrites its state in place from a snapshot —
memory (base image + page delta), globals, table, and the exact meter
counters.  ``resume_instance`` then re-enters the suspended call stack:
frames are replayed innermost-first as direct capture-interpreter entries,
and each ancestor frame — suspended inside ``call``/``call_indirect`` —
receives its callee's results, charges the deferred ``calls`` counter
(the legacy loop charges it *after* the callee returns) and continues at
``pc + 1``.  A resumed run therefore finishes with stats byte-identical
to the uninterrupted one.
"""

from __future__ import annotations

from repro.obs.context import record_metric
from repro.obs.instruments import RESUMES_TOTAL
from repro.tcrypto.hashing import sha256
from repro.wasm.binary import encode_module
from repro.wasm.interpreter import (
    CaptureUnwind,
    ExecutionLimits,
    Instance,
    SnapshotCaptured,
    _ControlEntry,
    _signed,
)
from repro.wasm.memory import PAGE_SIZE
from repro.wasm.module import Module
from repro.wasm.snapshot.format import (
    Snapshot,
    SnapshotError,
    base_memory_image,
    snapshot_from_unwind,
)


def restore_instance(
    snapshot: Snapshot,
    module: Module,
    *,
    imports: dict | None = None,
    cost_model=None,
    limits: ExecutionLimits | None = None,
    engine: str | None = None,
) -> Instance:
    """Instantiate ``module`` under any engine and load ``snapshot`` into it.

    The module must be byte-identical to the one the snapshot was taken
    from (same instrumented encoding — the hash pins weight-table-relevant
    structure, not just source).
    """
    if sha256(encode_module(module)) != snapshot.module_hash:
        raise SnapshotError(
            "module hash mismatch: snapshot was taken from a different module"
        )
    instance = Instance(
        module, imports=imports, cost_model=cost_model, limits=limits, engine=engine
    )
    apply_state(instance, snapshot)
    return instance


def apply_state(instance: Instance, snapshot: Snapshot) -> None:
    """Overwrite a live instance's state from a snapshot, in place.

    In place matters: the engines bind the instance's memory/globals/stats
    objects at instantiation, so state must be written *into* those objects
    rather than replacing them.  Warm pools use this to reset a live
    instance to its pristine post-instantiation image per request.
    """
    memory = instance.memory
    if snapshot.memory_pages is not None:
        if memory is None:
            raise SnapshotError("snapshot has memory but the instance does not")
        base = base_memory_image(instance.module)
        buf = bytearray(snapshot.memory_pages * PAGE_SIZE)
        limit = min(len(base), len(buf))
        buf[:limit] = base[:limit]
        for index, page in snapshot.memory_delta:
            lo = index * PAGE_SIZE
            buf[lo : lo + PAGE_SIZE] = page
        memory._data[:] = buf
        memory.grow_events[:] = list(snapshot.grow_events)
    if len(snapshot.globals) != len(instance.globals):
        raise SnapshotError("snapshot global count does not match the instance")
    for g, value in zip(instance.globals, snapshot.globals):
        g.value = value
    if snapshot.table is not None:
        if instance.table is None:
            raise SnapshotError("snapshot has a table but the instance does not")
        instance.table.elements[:] = list(snapshot.table)

    stats = instance.stats
    state = snapshot.stats
    stats.visits.clear()
    stats.visits.update(state["visits"])
    stats.executed = state["executed"]
    stats.cycles = state["cycles"]
    stats.loads = state["loads"]
    stats.stores = state["stores"]
    stats.bytes_loaded = state["bytes_loaded"]
    stats.bytes_stored = state["bytes_stored"]
    stats.calls = state["calls"]
    stats.host_calls = state["host_calls"]
    stats.grow_history[:] = [tuple(e) for e in state["grow_history"]]


def resume_instance(instance: Instance, snapshot: Snapshot) -> list:
    """Re-enter a snapshot's suspended call stack; returns raw results.

    Frames resume innermost-first.  If the instance's limits are re-armed
    (``snapshot_at`` set), a fresh :class:`CaptureUnwind` may escape any
    frame — the still-suspended outer frames are appended to it so the
    re-capture covers the whole stack, and the unwind propagates to the
    caller (see :func:`resume_invoke`).
    """
    frames = snapshot.frames
    if not frames:
        raise SnapshotError("snapshot has no suspended frames to resume")
    RESUMES_TOTAL.inc()
    record_metric("acctee_resumes_total", 1)
    n_imported = instance.module.num_imported_funcs
    saved_depth = instance._call_depth
    results: list = []
    try:
        for depth in range(len(frames) - 1, -1, -1):
            frame = frames[depth]
            stack = list(frame.stack)
            locals_ = list(frame.locals)
            control = [_ControlEntry(*entry) for entry in frame.control]
            pc = frame.pc
            if frame.kind == "at_call":
                # the frame suspended inside call/call_indirect with args
                # already popped: push the callee's results and charge the
                # deferred post-return bookkeeping before continuing
                stack.extend(results)
                instance.stats.calls += 1
                pc += 1
            instance._call_depth = depth + 1
            try:
                results = instance._exec_function(
                    frame.func_index - n_imported,
                    [],
                    resume=(pc, stack, locals_, control),
                )
            except CaptureUnwind as unwind:
                for outer in reversed(frames[:depth]):
                    unwind.frames.append(outer)
                raise
    finally:
        instance._call_depth = saved_depth
    return results


def resume_invoke(instance: Instance, snapshot: Snapshot):
    """Resume and convert results exactly like ``Instance.invoke`` does.

    Raises :class:`SnapshotCaptured` (carrying the next snapshot) if the
    instance's limits are re-armed and another observation point is hit.
    """
    try:
        results = resume_instance(instance, snapshot)
    except CaptureUnwind as unwind:
        raise SnapshotCaptured(snapshot_from_unwind(instance, unwind)) from None
    functype = instance.module.func_type(snapshot.frames[0].func_index)
    if not functype.results:
        return None
    result = results[0]
    if functype.results[0].is_int:
        return _signed(result, functype.results[0].bits)
    return result
