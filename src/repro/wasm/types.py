"""WebAssembly type system: value types, function types, limits."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ValType(enum.Enum):
    """The four WebAssembly MVP value types."""

    I32 = "i32"
    I64 = "i64"
    F32 = "f32"
    F64 = "f64"

    @property
    def is_int(self) -> bool:
        return self in (ValType.I32, ValType.I64)

    @property
    def is_float(self) -> bool:
        return self in (ValType.F32, ValType.F64)

    @property
    def bits(self) -> int:
        return 32 if self in (ValType.I32, ValType.F32) else 64

    @property
    def byte_width(self) -> int:
        return self.bits // 8

    @classmethod
    def from_name(cls, name: str) -> "ValType":
        for member in cls:
            if member.value == name:
                return member
        raise ValueError(f"unknown value type {name!r}")

    # Binary-format type codes (negative SLEB128 values in the spec).
    @property
    def binary_code(self) -> int:
        return {
            ValType.I32: 0x7F,
            ValType.I64: 0x7E,
            ValType.F32: 0x7D,
            ValType.F64: 0x7C,
        }[self]

    @classmethod
    def from_binary_code(cls, code: int) -> "ValType":
        table = {0x7F: cls.I32, 0x7E: cls.I64, 0x7D: cls.F32, 0x7C: cls.F64}
        if code not in table:
            raise ValueError(f"unknown value type code 0x{code:02x}")
        return table[code]


@dataclass(frozen=True)
class FuncType:
    """A function type: parameter types and result types.

    The MVP allows at most one result; we keep a tuple for forward
    compatibility but the validator enforces the MVP restriction.
    """

    params: tuple[ValType, ...] = ()
    results: tuple[ValType, ...] = ()

    def __str__(self) -> str:
        ps = " ".join(p.value for p in self.params)
        rs = " ".join(r.value for r in self.results)
        return f"[{ps}] -> [{rs}]"


@dataclass(frozen=True)
class Limits:
    """Size limits for memories and tables, in units of pages or elements."""

    minimum: int
    maximum: int | None = None

    def validate(self, hard_cap: int) -> None:
        if self.minimum < 0:
            raise ValueError("limits minimum must be non-negative")
        if self.minimum > hard_cap:
            raise ValueError(f"limits minimum {self.minimum} exceeds cap {hard_cap}")
        if self.maximum is not None:
            if self.maximum < self.minimum:
                raise ValueError("limits maximum below minimum")
            if self.maximum > hard_cap:
                raise ValueError(f"limits maximum {self.maximum} exceeds cap {hard_cap}")


@dataclass(frozen=True)
class MemoryType:
    """A linear memory type (limits are in 64 KiB pages)."""

    limits: Limits


@dataclass(frozen=True)
class TableType:
    """A table type; the MVP only supports funcref tables."""

    limits: Limits
    elem_type: str = "funcref"


@dataclass(frozen=True)
class GlobalType:
    """A global variable type: value type plus mutability."""

    valtype: ValType
    mutable: bool = False
